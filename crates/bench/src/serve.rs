//! `oic serve` — a long-lived compile server over a JSON-lines protocol.
//!
//! The server reads one JSON request per stdin line and writes one JSON
//! response per stdout line, wrapped in a schema-stable `oi.serve.v1`
//! envelope. Compiles are fronted by the content-addressed artifact cache
//! ([`oi_core::cache`]): byte-identical source under an identical
//! configuration is served from memory without re-running the pipeline.
//!
//! Requests:
//!
//! ```text
//! {"id": 1, "op": "compile", "source": "fn main() { ... }"}
//! {"id": 2, "op": "run", "path": "tests/progs/rect.oi"}
//! {"id": 3, "op": "compile", "source": "...", "config": {"max_rounds": 64}}
//! {"id": 4, "op": "stats"}
//! {"id": 5, "op": "shutdown"}
//! ```
//!
//! `op` defaults to `"compile"`. Responses reuse the existing CLI payloads
//! (`oic.report.v1`-shaped for `compile`, `oic.run.v1`-shaped for `run`,
//! `oi.metrics.v1` for `stats`) inside the envelope:
//!
//! ```text
//! {"schema":"oi.serve.v1","id":1,"ok":true,"op":"compile",
//!  "cache":"miss","wall_us":1234,"payload":{...}}
//! ```
//!
//! Every service stage is instrumented through an [`oi_support::metrics`]
//! registry — requests/errors, in-flight gauge, cache hit/miss/eviction
//! counters and byte/entry gauges, per-stage latency histograms
//! (parse/analyze/optimize/execute/total) — served over the protocol as a
//! `stats` request and optionally dumped to `--metrics-out FILE` after
//! every request. Traces correlate with the metrics via a per-request
//! `request_id` field stamped on the `serve.*` spans.

use crate::harness::time_once;
use crate::overload::{
    Admission, BreakerConfig, Brownout, BrownoutConfig, CircuitBreaker, Transition,
};
use crate::sched::{
    Completion, JobFault, JobSpec, ProgramRef, SchedConfig, Scheduler, TenantQuota, Verdict,
};
use oi_core::cache::store::DiskStore;
use oi_core::cache::{config_fingerprint, Artifact, ArtifactCache, CacheKey};
use oi_core::ladder::{optimize_with_ladder, BrownoutLevel, LadderConfig};
use oi_support::cli::{Arg, ArgScanner};
use oi_support::metrics::Registry;
use oi_support::panic::contained;
use oi_support::trace::{self, kv, TraceMode, Tracer};
use oi_support::{Budget, Json};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io::{BufRead, Write};
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Serve-time configuration (flags of `oic serve`).
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// LRU byte budget for the artifact cache (`--cache-bytes`).
    pub cache_bytes: usize,
    /// Default per-request analysis round budget (`--max-rounds`).
    pub max_rounds: Option<u64>,
    /// Default per-request analysis deadline (`--deadline-ms`).
    pub deadline_ms: Option<u64>,
    /// Rewrite this file with the `oi.metrics.v1` document after every
    /// request (`--metrics-out`).
    pub metrics_out: Option<String>,
    /// Worker threads driving the request pump (`--jobs`).
    pub jobs: usize,
    /// Bounded request-queue depth; lines beyond it are shed with a
    /// typed `overloaded` rejection (`--queue`).
    pub queue: usize,
    /// Instructions per fuel slice for scheduled `run` requests
    /// (`--fuel-slice`).
    pub fuel_slice: u64,
    /// Maximum request line length in bytes; longer lines get a typed
    /// `request-too-large` rejection instead of unbounded buffering
    /// (`--max-line-bytes`).
    pub max_line_bytes: usize,
    /// Per-request instruction quota for `run` execution
    /// (`--max-instructions`; VM default when unset).
    pub max_instructions: Option<u64>,
    /// Per-request heap-words quota for `run` execution
    /// (`--max-heap-words`; VM default when unset).
    pub max_heap_words: Option<u64>,
    /// Per-request call-depth quota for `run` execution (`--max-depth`;
    /// VM default when unset).
    pub max_depth: Option<usize>,
    /// Concurrent in-flight `run` requests allowed per tenant
    /// (`--tenant-concurrent`).
    pub tenant_concurrent: usize,
    /// Wall-clock deadline for `run` execution, measured per request
    /// from admission (`--run-deadline-ms`).
    pub run_deadline_ms: Option<u64>,
    /// Honor `chaos` fault fields on requests. Never set from the CLI;
    /// only the chaos harness builds servers with injection enabled.
    pub allow_chaos_faults: bool,
    /// Directory of the persistent artifact tier (`--cache-dir`). When
    /// set, compiles are persisted write-behind and a restarted server
    /// warm-starts from verified on-disk artifacts.
    pub cache_dir: Option<String>,
    /// Byte budget of the persistent tier (`--disk-bytes`).
    pub disk_bytes: u64,
    /// Queue-wait p99 target steering the brownout controller
    /// (`--brownout-target-ms`). `None` disables adaptive brownout.
    pub brownout_target_ms: Option<u64>,
    /// Minimum time between brownout tier transitions
    /// (`--brownout-dwell-ms`) — the anti-flap dwell.
    pub brownout_dwell_ms: u64,
    /// Compile-phase wedge deadline (`--watchdog-ms`). `None` disables
    /// the worker watchdog.
    pub watchdog_ms: Option<u64>,
    /// Watchdog kills of one source fingerprint before its circuit
    /// breaker opens (`--watchdog-strikes`).
    pub watchdog_strikes: u32,
    /// How long an open (quarantined) fingerprint refuses compiles
    /// before one half-open probe is admitted
    /// (`--quarantine-cooldown-ms`).
    pub quarantine_cooldown_ms: u64,
    /// Chaos seam: per-artifact delay injected into the write-behind
    /// persister so its backlog builds. Never set from the CLI.
    pub chaos_persist_delay_ms: Option<u64>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            cache_bytes: 64 << 20,
            max_rounds: None,
            deadline_ms: None,
            metrics_out: None,
            jobs: 1,
            queue: 128,
            fuel_slice: 10_000,
            max_line_bytes: 4 << 20,
            max_instructions: None,
            max_heap_words: None,
            max_depth: None,
            tenant_concurrent: 64,
            run_deadline_ms: None,
            allow_chaos_faults: false,
            cache_dir: None,
            disk_bytes: 256 << 20,
            brownout_target_ms: None,
            brownout_dwell_ms: 250,
            watchdog_ms: None,
            watchdog_strikes: 3,
            quarantine_cooldown_ms: 1_000,
            chaos_persist_delay_ms: None,
        }
    }
}

/// The outcome of handling one request line.
#[derive(Clone, Debug)]
pub struct Handled {
    /// The JSON response to write back (one line).
    pub response: Json,
    /// `true` when the request asked the server to stop.
    pub shutdown: bool,
}

/// One unit of write-behind work: a keyed artifact bound for disk.
type PersistJob = (CacheKey, Arc<Artifact>);

/// The persistent tier attached to a server: the store plus the
/// write-behind persister keeping disk writes off the request path.
struct DiskTier {
    store: Arc<DiskStore>,
    /// Sender into the persister; `None` once flushed.
    tx: Mutex<Option<Sender<PersistJob>>>,
    /// The persister thread; joined by [`Server::flush_disk`].
    worker: Mutex<Option<std::thread::JoinHandle<()>>>,
    /// Set by [`Server::simulate_kill`]: suppresses the clean-shutdown
    /// journal compaction so the on-disk state stays exactly what an
    /// abrupt process death would leave behind.
    killed: AtomicBool,
    /// Artifacts handed to the persister and not yet written — the
    /// write-behind backlog (`serve.persist_backlog` gauge).
    pending: Arc<AtomicU64>,
    /// High-water mark of [`Self::pending`]
    /// (`serve.persist_backlog_peak`).
    peak: Arc<AtomicU64>,
}

/// One in-process compile server: artifact cache + metrics registry +
/// the base ladder configuration requests are compiled under.
pub struct Server {
    cache: ArtifactCache,
    disk: Option<DiskTier>,
    metrics: Registry,
    ladder: LadderConfig,
    config: ServeConfig,
    /// The adaptive brownout controller; `None` when
    /// [`ServeConfig::brownout_target_ms`] is unset.
    brownout: Option<Brownout>,
    /// Per-source-fingerprint circuit breaker fed by watchdog strikes.
    breaker: CircuitBreaker,
}

impl Server {
    /// A server with an empty cache and zeroed metrics. When
    /// [`ServeConfig::cache_dir`] is set, the persistent tier is opened
    /// through crash recovery first; an unopenable directory degrades to
    /// memory-only serving (never a refusal to start), and whatever
    /// recovery found is exported as `serve.recovery_*` metrics.
    pub fn new(config: ServeConfig) -> Server {
        let metrics = Registry::new();
        let disk = config.cache_dir.as_ref().and_then(|dir| {
            match DiskStore::open(std::path::Path::new(dir), config.disk_bytes) {
                Ok(store) => {
                    let store = Arc::new(store);
                    let report = store.recovery();
                    metrics.set_counter("serve.recovery_entries_kept", report.entries_kept);
                    metrics.set_counter("serve.recovery_quarantined", report.quarantined);
                    metrics.set_counter("serve.recovery_stale_records", report.stale_records);
                    metrics
                        .set_counter("serve.recovery_duplicate_records", report.duplicate_records);
                    metrics.set_counter("serve.recovery_orphans_adopted", report.orphans_adopted);
                    metrics.set_counter("serve.recovery_torn_temps", report.torn_temps);
                    metrics.set_counter(
                        "serve.recovery_journal_truncated",
                        u64::from(report.journal_truncated),
                    );
                    let (tx, rx) = mpsc::channel::<(CacheKey, Arc<Artifact>)>();
                    let persister = Arc::clone(&store);
                    let pending = Arc::new(AtomicU64::new(0));
                    let peak = Arc::new(AtomicU64::new(0));
                    let drain_pending = Arc::clone(&pending);
                    let delay = config.chaos_persist_delay_ms.map(Duration::from_millis);
                    let worker = std::thread::spawn(move || {
                        for (key, artifact) in rx {
                            // Chaos seam: a slow disk builds write-behind
                            // backlog without ever blocking a request.
                            if let Some(d) = delay {
                                std::thread::sleep(d);
                            }
                            // Failures are counted in the store's stats and
                            // mirrored; the service keeps serving from memory.
                            let _ = persister.persist(&key, &artifact);
                            drain_pending.fetch_sub(1, Ordering::SeqCst);
                        }
                    });
                    Some(DiskTier {
                        store,
                        tx: Mutex::new(Some(tx)),
                        worker: Mutex::new(Some(worker)),
                        killed: AtomicBool::new(false),
                        pending,
                        peak,
                    })
                }
                Err(e) => {
                    eprintln!("oic serve: cannot open --cache-dir {dir}: {e}; serving memory-only");
                    metrics.add("serve.disk_open_failures", 1);
                    None
                }
            }
        });
        let brownout = config.brownout_target_ms.map(|target_ms| {
            let mut bc = BrownoutConfig::for_target_ms(target_ms, config.queue);
            bc.dwell = Duration::from_millis(config.brownout_dwell_ms);
            Brownout::new(bc)
        });
        let breaker = CircuitBreaker::new(BreakerConfig {
            strikes: config.watchdog_strikes.max(1),
            cooldown: Duration::from_millis(config.quarantine_cooldown_ms),
        });
        metrics.gauge_set("serve.brownout_tier", 0);
        Server {
            cache: ArtifactCache::new(config.cache_bytes),
            disk,
            metrics,
            ladder: LadderConfig::default(),
            config,
            brownout,
            breaker,
        }
    }

    /// The current brownout level (`guarded-full` when adaptive brownout
    /// is disabled).
    pub fn brownout_level(&self) -> BrownoutLevel {
        self.brownout
            .as_ref()
            .map_or(BrownoutLevel::GuardedFull, Brownout::level)
    }

    /// Pins the brownout controller to `level` (harness hook; a no-op
    /// when brownout is disabled). `loadgen --retries` and the chaos
    /// matrix use it to exercise degraded paths deterministically.
    pub fn force_brownout(&self, level: BrownoutLevel) {
        if let Some(b) = &self.brownout {
            b.force(level);
            self.metrics
                .gauge_set("serve.brownout_tier", level.index() as i64);
        }
    }

    /// Feeds one dequeue observation `(queue depth, queue wait)` to the
    /// brownout controller and exports any resulting transition.
    fn brownout_note(&self, queue_depth: usize, wait_ns: u128) {
        let Some(b) = &self.brownout else { return };
        // Waits observed while degraded are the gate's "p99 during
        // brownout" signal — sampled before the transition decision, so
        // the sample that *triggers* a descend still counts as
        // guarded-full service.
        if b.level() != BrownoutLevel::GuardedFull {
            self.metrics
                .observe_ns("serve.brownout_queue_wait_ns", wait_ns);
        }
        match b.note(queue_depth, wait_ns) {
            Some(Transition::Descend(level)) => {
                self.metrics.add("serve.brownout_descend_total", 1);
                self.metrics
                    .gauge_set("serve.brownout_tier", level.index() as i64);
                trace::counter("serve.brownout_descends", 1);
            }
            Some(Transition::Recover(level)) => {
                self.metrics.add("serve.brownout_recover_total", 1);
                self.metrics
                    .gauge_set("serve.brownout_tier", level.index() as i64);
            }
            None => {}
        }
    }

    /// The server's metrics registry (loadgen reconciles against it).
    pub fn metrics(&self) -> &Registry {
        &self.metrics
    }

    /// The server's artifact cache.
    pub fn cache(&self) -> &ArtifactCache {
        &self.cache
    }

    /// The persistent tier, when one is attached.
    pub fn disk(&self) -> Option<&DiskStore> {
        self.disk.as_ref().map(|d| &*d.store)
    }

    /// Flushes the persistent tier: stops admission to the write-behind
    /// persister, drains its queue, and rewrites the journal compacted —
    /// the disk half of the graceful-shutdown drain. Idempotent; also run
    /// on drop so unit-style servers flush too.
    pub fn flush_disk(&self) {
        let Some(disk) = &self.disk else { return };
        if disk.killed.load(Ordering::SeqCst) {
            return;
        }
        let tx = disk
            .tx
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take();
        drop(tx); // closes the channel; the persister drains and exits
        let worker = disk
            .worker
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take();
        if let Some(worker) = worker {
            let _ = worker.join();
        }
        let _ = disk.store.compact();
        self.mirror_cache_stats();
    }

    /// Simulates an abrupt process death for crash-recovery harnesses
    /// (`oic bench restartload`): the write-behind persister is drained
    /// and stopped, but the journal is **not** compacted — the next open
    /// of the same directory must recover from the append-only state an
    /// unclean exit leaves behind. After this, [`Server::flush_disk`]
    /// (including the one run on drop) is a no-op on the tier.
    pub fn simulate_kill(&self) {
        let Some(disk) = &self.disk else { return };
        disk.killed.store(true, Ordering::SeqCst);
        let tx = disk
            .tx
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take();
        drop(tx);
        let worker = disk
            .worker
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take();
        if let Some(worker) = worker {
            let _ = worker.join();
        }
    }

    /// Hands an artifact to the write-behind persister. A full or closed
    /// channel silently drops the persist — the artifact stays served
    /// from memory and simply misses the disk tier later.
    fn persist_behind(&self, key: CacheKey, artifact: Arc<Artifact>) {
        if let Some(disk) = &self.disk {
            let tx = disk.tx.lock().unwrap_or_else(PoisonError::into_inner);
            if let Some(tx) = tx.as_ref() {
                if tx.send((key, artifact)).is_ok() {
                    let now = disk.pending.fetch_add(1, Ordering::SeqCst) + 1;
                    disk.peak.fetch_max(now, Ordering::SeqCst);
                }
            }
        }
    }

    /// Handles one request line and returns the response line. Never
    /// panics on malformed input — every failure mode is an `ok:false`
    /// response.
    pub fn handle_line(&self, line: &str) -> Handled {
        let (handled, wall) = time_once(|| self.dispatch(line));
        self.mirror_cache_stats();
        let mut handled = handled;
        if let Json::Obj(fields) = &mut handled.response {
            for (k, v) in fields.iter_mut() {
                if k == "wall_us" {
                    *v = Json::from((wall.median / 1_000).min(u128::from(u64::MAX)) as u64);
                }
            }
        }
        if let Some(path) = &self.config.metrics_out {
            let _ = std::fs::write(path, format!("{}\n", self.metrics.to_json()));
        }
        handled
    }

    fn dispatch(&self, line: &str) -> Handled {
        self.metrics.add("serve.requests", 1);
        self.metrics.gauge_add("serve.in_flight", 1);
        let handled = self.dispatch_inner(line);
        self.metrics.gauge_add("serve.in_flight", -1);
        if handled
            .response
            .get("ok")
            .and_then(Json::as_bool)
            .unwrap_or(false)
        {
            handled
        } else {
            self.metrics.add("serve.errors", 1);
            handled
        }
    }

    fn dispatch_inner(&self, line: &str) -> Handled {
        let request = match Json::parse(line) {
            Ok(r) => r,
            Err(e) => return self.error(Json::Null, &format!("malformed request: {e}")),
        };
        let id = request.get("id").cloned().unwrap_or(Json::Null);
        let op = request
            .get("op")
            .and_then(Json::as_str)
            .unwrap_or("compile")
            .to_string();
        let _span = trace::span_with(
            "serve.request",
            vec![kv("request_id", id_label(&id)), kv("op", op.as_str())],
        );
        match op.as_str() {
            "compile" | "run" => self.serve_compile(&request, id, &op),
            "stats" => Handled {
                response: self.envelope(id, &op, "none", self.metrics.to_json()),
                shutdown: false,
            },
            // Liveness probes: cheap, never queued behind compile work
            // once admitted, and they carry the overload-control state a
            // retrying client steers by.
            "health" | "ping" => Handled {
                response: self.envelope(
                    id,
                    &op,
                    "none",
                    Json::obj(vec![
                        ("status", "ok".into()),
                        ("brownout_tier", self.brownout_level().name().into()),
                        ("breaker_open", (self.breaker.open_count() as u64).into()),
                        ("in_flight", self.metrics.gauge("serve.in_flight").into()),
                    ]),
                ),
                shutdown: false,
            },
            "shutdown" => Handled {
                response: self.envelope(id, &op, "none", Json::Null),
                shutdown: true,
            },
            other => self.error(id, &format!("unknown op `{other}`")),
        }
    }

    /// Resolves a request to its compile artifact: cache hit or fresh
    /// compile (folding per-request budget overrides into the key).
    /// Shared by the synchronous path and the scheduled `run` path.
    ///
    /// The brownout level shapes the answer: degraded levels start the
    /// compile ladder lower (under a *distinct* cache key — the start
    /// tier is part of [`config_fingerprint`], so degraded artifacts
    /// never alias full-tier ones), and `cache-only` serves hits but
    /// sheds misses. A quarantined source fingerprint is refused before
    /// any compile work is spent on it.
    fn artifact_for(
        &self,
        request: &Json,
        id: &Json,
    ) -> Result<(std::sync::Arc<Artifact>, &'static str), ServeRefusal> {
        let source = request_source(request).map_err(ServeRefusal::Error)?;
        // Per-request budget overrides fold into the cache key: an
        // artifact compiled under a tighter budget may be degraded, so it
        // must not alias an unbudgeted compile of the same bytes.
        let max_rounds = request
            .get("config")
            .and_then(|c| c.get("max_rounds"))
            .and_then(Json::as_i64)
            .map(|n| n.max(0) as u64)
            .or(self.config.max_rounds);
        let deadline_ms = request
            .get("config")
            .and_then(|c| c.get("deadline_ms"))
            .and_then(Json::as_i64)
            .map(|n| n.max(0) as u64)
            .or(self.config.deadline_ms);
        let level = self.brownout_level();
        // Any start tier at or above the brownout level is acceptable —
        // a cached guarded-full artifact is never worse than what a
        // degraded tier would compile — so probe keys best-first. At
        // guarded-full this is exactly one probe (the historical
        // behavior).
        let keys: Vec<CacheKey> = (0..=level.index().min(2))
            .filter_map(|i| BrownoutLevel::from_index(i).start_tier())
            .map(|start| {
                let mut ladder = self.ladder;
                ladder.start = start;
                CacheKey::whole_program(
                    &source,
                    config_fingerprint(&ladder, max_rounds, deadline_ms),
                )
            })
            .collect();
        for key in &keys {
            if let Some(hit) = self.cache.get(key) {
                return Ok((hit, "hit"));
            }
        }
        // Between the memory miss and a cold compile sits the
        // persistent tier: a verified disk artifact is promoted
        // into memory and served as `disk`.
        if let Some(disk) = &self.disk {
            for key in &keys {
                if let Some(artifact) = disk.store.load(key) {
                    return Ok((self.cache.insert(*key, artifact), "disk"));
                }
            }
        }
        let Some(start) = level.start_tier() else {
            // cache-only brownout: the service survives on what it has.
            self.metrics.add("serve.shed_total", 1);
            self.metrics.add("serve.brownout_shed_total", 1);
            return Err(ServeRefusal::Typed {
                kind: "shedding",
                message: "brownout cache-only: compile shed, retry later".to_string(),
            });
        };
        let fp = source_fingerprint(&source);
        let admission = self.breaker.admit(fp);
        if let Admission::Refuse { retry_after_ms } = admission {
            self.metrics.add("serve.quarantined_total", 1);
            return Err(ServeRefusal::Typed {
                kind: "quarantined",
                message: format!(
                    "source quarantined after repeated watchdog kills; probe in {retry_after_ms}ms"
                ),
            });
        }
        // Chaos seam: a compile-phase fixpoint that ignores its budget.
        // The sleep sits inside the worker's `compile` heartbeat stage,
        // so the watchdog sees exactly what a real wedge looks like; the
        // error afterwards models the artifact never materializing.
        if self.config.allow_chaos_faults {
            if let Some(ms) = request
                .get("chaos")
                .and_then(|c| c.get("wedge_compile_ms"))
                .and_then(Json::as_i64)
            {
                std::thread::sleep(Duration::from_millis(ms.max(0) as u64));
                return Err(ServeRefusal::Error(
                    "chaos: compile wedged past its budget".to_string(),
                ));
            }
        }
        let mut ladder = self.ladder;
        ladder.start = start;
        let built = self
            .compile_fresh(&source, id, max_rounds, deadline_ms, &ladder)
            .map_err(ServeRefusal::Error);
        // Any compile that *returned* (success or clean failure) did not
        // wedge: a half-open probe closes its circuit. A probe the
        // watchdog killed mid-compile was already re-opened by its
        // strike, which `success` leaves untouched.
        if admission == Admission::Probe {
            self.breaker.success(fp);
        }
        let built = built?;
        let key = CacheKey::whole_program(
            &source,
            config_fingerprint(&ladder, max_rounds, deadline_ms),
        );
        let shared = self.cache.insert(key, built);
        self.persist_behind(key, Arc::clone(&shared));
        if level != BrownoutLevel::GuardedFull {
            self.metrics.add("serve.brownout_degraded_compiles", 1);
        }
        Ok((shared, "miss"))
    }

    fn serve_compile(&self, request: &Json, id: Json, op: &str) -> Handled {
        let (artifact, cache_state) = match self.artifact_for(request, &id) {
            Ok(pair) => pair,
            Err(ServeRefusal::Error(e)) => return self.error(id, &e),
            Err(ServeRefusal::Typed { kind, message }) => {
                return self.error_typed(id, kind, &message)
            }
        };

        let payload = if op == "run" {
            let (result, execute) = {
                let _s = trace::span_with("serve.execute", vec![kv("request_id", id_label(&id))]);
                time_once(|| oi_vm::run(&artifact.outcome.optimized.program, &Default::default()))
            };
            self.metrics.observe_ns("serve.execute_ns", execute.median);
            match result {
                Ok(r) => run_payload(&r, &artifact.outcome),
                Err(e) => return self.error(id, &format!("runtime error: {e}")),
            }
        } else {
            Json::obj(vec![
                ("schema", "oic.report.v1".into()),
                ("tier", artifact.outcome.tier_name().into()),
                ("report", artifact.outcome.optimized.report.to_json()),
            ])
        };
        Handled {
            response: self.envelope(id, op, cache_state, payload),
            shutdown: false,
        }
    }

    /// A cold compile: parse + ladder, with per-stage latency recorded.
    /// Stage histograms only see cold compiles — a hit does no parse or
    /// analyze work, and zero-padding them would bury the real latencies.
    fn compile_fresh(
        &self,
        source: &str,
        id: &Json,
        max_rounds: Option<u64>,
        deadline_ms: Option<u64>,
        ladder: &LadderConfig,
    ) -> Result<Artifact, String> {
        let (parsed, parse) = {
            let _s = trace::span_with("serve.parse", vec![kv("request_id", id_label(id))]);
            time_once(|| oi_ir::lower::compile(source))
        };
        self.metrics.observe_ns("serve.parse_ns", parse.median);
        let program = parsed.map_err(|e| format!("compile error: {}", e.render(source)))?;

        let mut budget = Budget::unlimited();
        if let Some(rounds) = max_rounds {
            budget = budget.with_rounds(rounds);
        }
        if let Some(ms) = deadline_ms {
            budget = budget.with_deadline(Duration::from_millis(ms));
        }
        // The analyze share of the ladder comes from the tracer's phase
        // aggregation (the pipeline's own `pipeline.analyze` spans), so
        // the histogram agrees with `--json` phase tables to the µs.
        let analyze_before = analyze_total_us();
        let (outcome, optimize) = {
            let _s = trace::span_with("serve.optimize", vec![kv("request_id", id_label(id))]);
            time_once(|| optimize_with_ladder(&program, ladder, &budget))
        };
        self.metrics
            .observe_ns("serve.optimize_ns", optimize.median);
        self.metrics.observe_ns(
            "serve.analyze_ns",
            (analyze_total_us() - analyze_before) * 1_000,
        );
        self.metrics
            .add(&format!("serve.tier.{}", outcome.tier_name()), 1);
        if outcome.optimized.report.degraded {
            self.metrics.add("serve.degraded", 1);
        }
        Ok(Artifact::new(outcome))
    }

    fn envelope(&self, id: Json, op: &str, cache: &str, payload: Json) -> Json {
        Json::obj(vec![
            ("schema", "oi.serve.v1".into()),
            ("id", id),
            ("ok", true.into()),
            ("op", op.into()),
            ("cache", cache.into()),
            // Provenance: the service's brownout level when this
            // response was built — clients see degraded service without
            // digging through the payload.
            ("brownout_tier", self.brownout_level().name().into()),
            ("wall_us", 0u64.into()), // patched by handle_line
            ("payload", payload),
        ])
    }

    fn error(&self, id: Json, message: &str) -> Handled {
        Handled {
            response: Json::obj(vec![
                ("schema", "oi.serve.v1".into()),
                ("id", id),
                ("ok", false.into()),
                ("error", message.into()),
            ]),
            shutdown: false,
        }
    }

    /// The `retry_after_ms` hint stamped on backpressure responses: the
    /// retry contract (DESIGN §17). Deeper brownout doubles the hint per
    /// rung so retries thin out exactly when the service needs air.
    fn retry_hint_ms(&self, kind: &str) -> Option<u64> {
        let base: u64 = match kind {
            "overloaded" | "tenant-over-concurrency" => 25,
            "shedding" => 50,
            "quarantined" => 250,
            _ => return None,
        };
        Some(base << self.brownout_level().index().min(3))
    }

    /// An `ok:false` response carrying a machine-readable `error_kind`
    /// (`overloaded`, `shedding`, `request-too-large`, `quota-exceeded`,
    /// `tenant-over-concurrency`, `panic`, `watchdog-killed`,
    /// `quarantined`) alongside the human message. Backpressure kinds
    /// additionally carry a typed `retry_after_ms` hint.
    fn error_typed(&self, id: Json, kind: &str, message: &str) -> Handled {
        let mut fields = vec![
            ("schema", Json::from("oi.serve.v1")),
            ("id", id),
            ("ok", false.into()),
            ("error_kind", kind.into()),
            ("error", message.into()),
        ];
        if let Some(ms) = self.retry_hint_ms(kind) {
            fields.push(("retry_after_ms", ms.into()));
        }
        Handled {
            response: Json::obj(fields),
            shutdown: false,
        }
    }

    /// Mirrors the cache's own counters into the registry so one
    /// `oi.metrics.v1` document carries the whole service state.
    fn mirror_cache_stats(&self) {
        let stats = self.cache.stats();
        self.metrics.set_counter("cache.hits", stats.hits);
        self.metrics.set_counter("cache.misses", stats.misses);
        self.metrics.set_counter("cache.evictions", stats.evictions);
        self.metrics
            .set_counter("cache.insertions", stats.insertions);
        self.metrics.gauge_set("cache.bytes", stats.bytes as i64);
        self.metrics
            .gauge_set("cache.entries", stats.entries as i64);
        self.metrics
            .gauge_set("cache.max_bytes", stats.max_bytes as i64);
        if let Some(disk) = &self.disk {
            let d = disk.store.stats();
            self.metrics.set_counter("disk.load_hits", d.load_hits);
            self.metrics.set_counter("disk.load_misses", d.load_misses);
            self.metrics.set_counter("disk.persists", d.persists);
            self.metrics
                .set_counter("disk.persist_failures", d.persist_failures);
            self.metrics.set_counter("disk.evictions", d.evictions);
            self.metrics
                .set_counter("serve.corrupt_quarantined_total", d.corrupt_quarantined);
            self.metrics.gauge_set("disk.bytes", d.bytes as i64);
            self.metrics.gauge_set("disk.entries", d.entries as i64);
            self.metrics.gauge_set("disk.max_bytes", d.max_bytes as i64);
            self.metrics.gauge_set(
                "serve.persist_backlog",
                disk.pending.load(Ordering::SeqCst) as i64,
            );
            self.metrics.set_counter(
                "serve.persist_backlog_peak",
                disk.peak.load(Ordering::SeqCst),
            );
        }
        self.metrics
            .gauge_set("serve.breaker_open", self.breaker.open_count() as i64);
    }

    /// Records the end-to-end service latency of one already-handled
    /// request (split by cache outcome). Kept separate from
    /// [`Server::handle_line`] so the total includes response
    /// serialization when the caller wants it to.
    pub fn observe_total(&self, cache_state: &str, ns: u128) {
        self.metrics.observe_ns("serve.total_ns", ns);
        match cache_state {
            "hit" => self.metrics.observe_ns("serve.hit_ns", ns),
            "miss" => self.metrics.observe_ns("serve.miss_ns", ns),
            "disk" => self.metrics.observe_ns("serve.disk_ns", ns),
            _ => {}
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        // Unit-style servers (tests, one-shot embedders) flush the
        // persistent tier too; `flush_disk` is idempotent, so servers
        // already drained by `run_serve` do nothing here.
        self.flush_disk();
    }
}

/// The `pipeline.analyze` phase total (µs) aggregated by the installed
/// tracer, or zero when no tracer is installed.
fn analyze_total_us() -> u128 {
    trace::current().map_or(0, |t| {
        t.phase_profile()
            .iter()
            .find(|(name, _)| name == "pipeline.analyze")
            .map_or(0, |(_, st)| u128::from(st.total_us))
    })
}

/// Why [`Server::artifact_for`] refused to produce an artifact.
enum ServeRefusal {
    /// A plain failure (`ok:false` with `error` only).
    Error(String),
    /// A typed refusal (`ok:false` with `error_kind` and, for
    /// backpressure kinds, `retry_after_ms`).
    Typed { kind: &'static str, message: String },
}

/// The circuit-breaker key of a source text: both fingerprint lanes
/// folded to one word (the breaker needs identity, not collision-proof
/// addressing — the cache keeps the full fingerprint).
fn source_fingerprint(source: &str) -> u64 {
    let f = oi_support::hash::fingerprint(source.as_bytes());
    f.0 ^ f.1
}

/// Extracts the request's source text: inline `source` wins, else `path`
/// is read from disk.
fn request_source(request: &Json) -> Result<String, String> {
    if let Some(source) = request.get("source").and_then(Json::as_str) {
        return Ok(source.to_string());
    }
    match request.get("path").and_then(Json::as_str) {
        Some(path) => std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}")),
        None => Err("request needs `source` or `path`".to_string()),
    }
}

/// A human-readable request id for trace span fields (string ids stay
/// bare, everything else renders as compact JSON).
fn id_label(id: &Json) -> String {
    match id.as_str() {
        Some(s) => s.to_string(),
        None => id.to_string(),
    }
}

/// The `oic.run.v1`-shaped payload of a served `run` request.
fn run_payload(result: &oi_vm::RunResult, outcome: &oi_core::ladder::LadderOutcome) -> Json {
    Json::obj(vec![
        ("schema", "oic.run.v1".into()),
        ("pipeline", "inline".into()),
        ("output", result.output.clone().into()),
        ("metrics", result.metrics.to_json()),
        (
            "allocation_census",
            Json::Arr(
                result
                    .allocation_census
                    .iter()
                    .map(|(class, n)| {
                        Json::obj(vec![
                            ("class", class.clone().into()),
                            ("count", (*n).into()),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("heap_census", result.heap_census.to_json()),
        ("report", outcome.optimized.report.to_json()),
    ])
}

/// One request line admitted to the bounded queue.
struct QueuedReq {
    seq: u64,
    line: String,
    at: Instant,
}

/// Queue state guarded by one lock so admission, pops, and the worker
/// exit check all observe a consistent picture.
struct PumpQueue {
    q: VecDeque<QueuedReq>,
    /// Requests popped and currently being processed by a worker.
    busy: usize,
}

/// Shared coordination state of the request pump. `Arc`-held because the
/// reader thread is detached (it may stay blocked on a client that sends
/// `shutdown` but never closes stdin).
struct Pump {
    queue: Mutex<PumpQueue>,
    cv: Condvar,
    draining: AtomicBool,
    reader_done: AtomicBool,
    input_error: AtomicBool,
    cap: usize,
    max_line_bytes: usize,
}

impl Pump {
    fn new(cap: usize, max_line_bytes: usize) -> Pump {
        Pump {
            queue: Mutex::new(PumpQueue {
                q: VecDeque::new(),
                busy: 0,
            }),
            cv: Condvar::new(),
            draining: AtomicBool::new(false),
            reader_done: AtomicBool::new(false),
            input_error: AtomicBool::new(false),
            cap: cap.max(1),
            max_line_bytes,
        }
    }

    fn lockq(&self) -> std::sync::MutexGuard<'_, PumpQueue> {
        self.queue.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A response (or reader-side rejection) on its way to the writer.
enum Emit {
    /// A finished response for request `seq`.
    Response { seq: u64, response: Json },
    /// A reader-side rejection; the writer builds the response and
    /// counts the metrics (the reader has no access to the server).
    Shed {
        seq: u64,
        kind: &'static str,
        message: String,
    },
    /// End of stream: all producers have finished.
    Done,
}

/// Context for a `run` request whose execution is in the scheduler.
struct PendingRun {
    seq: u64,
    id: Json,
    cache_state: &'static str,
    artifact: Arc<Artifact>,
    tenant: String,
    received: Instant,
}

/// What a worker is doing right now, stamped for the watchdog. Only the
/// compile phase is killable: VM execution is already fuel-sliced and
/// deadline-boxed by the scheduler, but a wedged compile holds a worker
/// hostage with no quota watching it.
struct ActiveStage {
    stage: &'static str,
    seq: u64,
    id: Json,
    /// Source fingerprint for the circuit breaker (0 = unknown source).
    fp: u64,
    started: Instant,
    /// Single-answer gate for this request: whoever swaps it to `true`
    /// first (worker or watchdog) owns the response.
    answered: Arc<AtomicBool>,
}

/// Supervision record for one pump worker.
#[derive(Default)]
struct WorkerSlot {
    /// The stage the worker is in, `None` while idle or in non-killable
    /// work. Guarded by a mutex so kill and stage-clear are atomic.
    active: Mutex<Option<ActiveStage>>,
    /// Set by the watchdog when it answers this worker's request on its
    /// behalf: the worker must exit after its current request (its
    /// replacement is already running), and must not answer again.
    killed: AtomicBool,
}

impl WorkerSlot {
    fn lock_active(&self) -> std::sync::MutexGuard<'_, Option<ActiveStage>> {
        self.active.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// The outcome of starting a `run` request.
enum RunStart {
    /// Submitted to the scheduler; the completion forwarder answers.
    Submitted,
    /// An immediate response (refusal or compile failure) to send now.
    Respond(Handled),
    /// The watchdog already answered this request; nothing left to send.
    Suppressed,
}

/// The concurrent request pump: bounded admission, fuel-sliced fair
/// execution of `run` requests via [`Scheduler`], ordered responses, and
/// graceful drain. See DESIGN §15 for the protocol.
struct ServeLoop<'a> {
    server: &'a Server,
    sched: Scheduler,
    pending: Mutex<HashMap<u64, PendingRun>>,
    pump: Arc<Pump>,
    /// One supervision slot per live worker (the watchdog's scan list;
    /// grows when replacements are spawned, dead slots stay marked).
    slots: Mutex<Vec<Arc<WorkerSlot>>>,
}

impl<'a> ServeLoop<'a> {
    /// Marks the pump as draining: admission stops, queued-unstarted
    /// requests are flushed with `shedding` responses, and in-flight work
    /// (including scheduled `run` jobs) finishes normally.
    fn start_drain(&self) {
        self.pump.draining.store(true, Ordering::SeqCst);
        self.pump.cv.notify_all();
    }

    /// Worker body: prefer admitting queued requests (FIFO start order),
    /// otherwise advance one fuel slice of scheduled work, otherwise
    /// idle. Exits when no request can ever arrive again and all work is
    /// done; the first worker out seals the scheduler so the completion
    /// forwarder observes end-of-stream.
    fn worker(&self, tx: &Sender<Emit>, slot: &WorkerSlot) {
        loop {
            // A watchdog-killed worker retires as soon as it regains
            // control: its replacement already owns its share of the
            // pool, and retiring here keeps the worker count stable.
            if slot.killed.load(Ordering::SeqCst) {
                // No seal: the replacement (or another live worker)
                // observes the real end of work and seals then.
                return;
            }
            let popped = {
                let mut q = self.pump.lockq();
                match q.q.pop_front() {
                    Some(req) => {
                        q.busy += 1;
                        Some(req)
                    }
                    None => None,
                }
            };
            if let Some(req) = popped {
                self.process_request(req, tx, slot);
                self.pump.lockq().busy -= 1;
                self.pump.cv.notify_all();
                continue;
            }
            if self.sched.try_run_slice() {
                continue;
            }
            let q = self.pump.lockq();
            let no_more_input = self.pump.reader_done.load(Ordering::SeqCst)
                || self.pump.draining.load(Ordering::SeqCst);
            if q.q.is_empty() && q.busy == 0 && no_more_input && self.sched.live() == 0 {
                break;
            }
            // Re-check after a short nap: scheduled jobs may become
            // runnable again (they re-queue without signaling this cv).
            let _ = self.pump.cv.wait_timeout(q, Duration::from_millis(1));
        }
        self.sched.seal();
    }

    fn send(&self, tx: &Sender<Emit>, seq: u64, response: Json) {
        let _ = tx.send(Emit::Response { seq, response });
    }

    fn process_request(&self, req: QueuedReq, tx: &Sender<Emit>, slot: &WorkerSlot) {
        let m = self.server.metrics();
        let wait_ns = req.at.elapsed().as_nanos();
        m.observe_ns("serve.queue_wait_ns", wait_ns);
        // One brownout observation per dequeue: the depth left behind and
        // the wait this request just paid.
        self.server
            .brownout_note(self.pump.lockq().q.len(), wait_ns);
        let parsed = Json::parse(&req.line);
        let id = parsed
            .as_ref()
            .ok()
            .and_then(|r| r.get("id").cloned())
            .unwrap_or(Json::Null);
        if self.pump.draining.load(Ordering::SeqCst) {
            m.add("serve.shed_total", 1);
            let resp = self
                .server
                .error_typed(id, "shedding", "server is draining");
            self.send(tx, req.seq, resp.response);
            return;
        }
        let op = parsed
            .as_ref()
            .ok()
            .and_then(|r| r.get("op"))
            .and_then(Json::as_str)
            .unwrap_or("compile");
        let is_run = op == "run";
        // Stamp the compile stage for ops that can wedge in the compiler
        // so the watchdog can answer on our behalf and replace us. The
        // `answered` flag gates every response for this seq: whoever
        // swaps it first owns the answer.
        let answered = Arc::new(AtomicBool::new(false));
        if matches!(op, "run" | "compile") && self.server.config.watchdog_ms.is_some() {
            let fp = parsed
                .as_ref()
                .ok()
                .and_then(|r| request_source(r).ok())
                .map(|s| source_fingerprint(&s))
                .unwrap_or(0);
            *slot.lock_active() = Some(ActiveStage {
                stage: "compile",
                seq: req.seq,
                id: id.clone(),
                fp,
                started: Instant::now(),
                answered: Arc::clone(&answered),
            });
        }
        if !is_run {
            // Synchronous ops (compile, stats, shutdown, malformed input)
            // reuse the single-threaded path wholesale.
            let line = &req.line;
            let outcome = contained(|| {
                let (handled, wall) = time_once(|| self.server.handle_line(line));
                let cache_state = handled
                    .response
                    .get("cache")
                    .and_then(Json::as_str)
                    .unwrap_or("none")
                    .to_string();
                self.server.observe_total(&cache_state, wall.median);
                handled
            });
            *slot.lock_active() = None;
            match outcome {
                Ok(handled) => {
                    if handled.shutdown {
                        self.start_drain();
                    }
                    if !answered.swap(true, Ordering::SeqCst) {
                        self.send(tx, req.seq, handled.response);
                    }
                }
                Err(msg) => {
                    m.add("serve.errors", 1);
                    if !answered.swap(true, Ordering::SeqCst) {
                        let resp = self.server.error_typed(
                            id,
                            "panic",
                            &format!("contained panic: {msg}"),
                        );
                        self.send(tx, req.seq, resp.response);
                    }
                }
            }
            return;
        }
        let Ok(request) = parsed else {
            // `is_run` can only be true when the line parsed, but a panic
            // here would take a worker down with it — answer instead.
            *slot.lock_active() = None;
            m.add("serve.errors", 1);
            if !answered.swap(true, Ordering::SeqCst) {
                let resp = self
                    .server
                    .error_typed(id, "bad-request", "malformed run request");
                self.send(tx, req.seq, resp.response);
            }
            return;
        };
        match contained(|| self.begin_run(&request, &id, req.seq, slot, &answered)) {
            // Submitted: the completion forwarder responds. Suppressed:
            // the watchdog already did.
            Ok(RunStart::Submitted) | Ok(RunStart::Suppressed) => {}
            Ok(RunStart::Respond(handled)) => self.send(tx, req.seq, handled.response),
            Err(msg) => {
                *slot.lock_active() = None;
                m.add("serve.errors", 1);
                if !answered.swap(true, Ordering::SeqCst) {
                    let resp =
                        self.server
                            .error_typed(id, "panic", &format!("contained panic: {msg}"));
                    self.send(tx, req.seq, resp.response);
                }
            }
        }
    }

    /// Effective quota for a `run` request: server-level limits, with a
    /// per-request `config.run_deadline_ms` override for the deadline.
    fn run_quota(&self, request: &Json) -> TenantQuota {
        let c = &self.server.config;
        let d = TenantQuota::default();
        let deadline_ms = request
            .get("config")
            .and_then(|c| c.get("run_deadline_ms"))
            .and_then(Json::as_i64)
            .map(|n| n.max(0) as u64)
            .or(c.run_deadline_ms);
        TenantQuota {
            max_instructions: c.max_instructions.unwrap_or(d.max_instructions),
            max_heap_words: c.max_heap_words.unwrap_or(d.max_heap_words),
            max_depth: c.max_depth.unwrap_or(d.max_depth),
            max_concurrent: c.tenant_concurrent,
            deadline: deadline_ms.map(Duration::from_millis),
        }
    }

    /// Compiles (or cache-hits) a `run` request and submits its execution
    /// to the scheduler. Returns an immediate error response for compile
    /// failures and typed admission rejections, [`RunStart::Submitted`]
    /// once the scheduler owns the job, and [`RunStart::Suppressed`] when
    /// the watchdog answered the request while its compile was wedged.
    fn begin_run(
        &self,
        request: &Json,
        id: &Json,
        seq: u64,
        slot: &WorkerSlot,
        answered: &Arc<AtomicBool>,
    ) -> RunStart {
        let m = self.server.metrics();
        m.add("serve.requests", 1);
        m.gauge_add("serve.in_flight", 1);
        // Refusals race the watchdog: the loser's response is dropped,
        // but the accounting (one error, one in-flight exit) is ours
        // either way — the watchdog only counts its kill.
        let refuse = |handled: Handled| {
            *slot.lock_active() = None;
            m.add("serve.errors", 1);
            m.gauge_add("serve.in_flight", -1);
            if answered.swap(true, Ordering::SeqCst) {
                RunStart::Suppressed
            } else {
                RunStart::Respond(handled)
            }
        };
        let tenant = request
            .get("tenant")
            .and_then(Json::as_str)
            .unwrap_or("anon")
            .to_string();
        let received = Instant::now();
        let (artifact, cache_state) = match self.server.artifact_for(request, id) {
            Ok(pair) => pair,
            Err(ServeRefusal::Error(e)) => return refuse(self.server.error(id.clone(), &e)),
            Err(ServeRefusal::Typed { kind, message }) => {
                return refuse(self.server.error_typed(id.clone(), kind, &message))
            }
        };
        self.server.mirror_cache_stats();
        // Compile done: leave the watchdog's killable window (stage-clear
        // and kill are atomic under the slot lock), then claim the
        // answer. Losing the claim means the watchdog answered while the
        // compile was wedged — the artifact stays cached for future
        // requests, but this run must not execute.
        *slot.lock_active() = None;
        if answered.swap(true, Ordering::SeqCst) {
            m.add("serve.errors", 1);
            m.gauge_add("serve.in_flight", -1);
            return RunStart::Suppressed;
        }
        let fault = if self.server.config.allow_chaos_faults {
            request
                .get("chaos")
                .and_then(|c| c.get("panic_at_slice"))
                .and_then(Json::as_i64)
                .map(|n| JobFault::PanicAtSlice(n.max(0) as u64))
        } else {
            None
        };
        let spec = JobSpec {
            tenant: tenant.clone(),
            program: ProgramRef::Artifact(artifact.clone()),
            quota: self.run_quota(request),
            fault,
        };
        // Hold the pending lock across submit so the completion
        // forwarder cannot observe the job finishing before its context
        // is registered.
        let mut pending = self.pending.lock().unwrap_or_else(PoisonError::into_inner);
        match self.sched.submit(spec) {
            Ok(job_seq) => {
                pending.insert(
                    job_seq,
                    PendingRun {
                        seq,
                        id: id.clone(),
                        cache_state,
                        artifact,
                        tenant,
                        received,
                    },
                );
                RunStart::Submitted
            }
            Err(e) => {
                drop(pending);
                m.add("serve.shed_total", 1);
                let msg = match &e {
                    crate::sched::SubmitError::Overloaded { live } => {
                        format!("scheduler queue is full ({live} jobs live)")
                    }
                    crate::sched::SubmitError::TenantBusy { active } => format!(
                        "tenant `{tenant}` is at its concurrency quota ({active} in flight)"
                    ),
                    crate::sched::SubmitError::Draining => "server is draining".to_string(),
                };
                // The answer is already claimed above — respond directly
                // (not through `refuse`, which would treat the earlier
                // claim as a watchdog kill and drop this response).
                m.add("serve.errors", 1);
                m.gauge_add("serve.in_flight", -1);
                RunStart::Respond(self.server.error_typed(id.clone(), e.name(), &msg))
            }
        }
    }

    fn lock_slots(&self) -> std::sync::MutexGuard<'_, Vec<Arc<WorkerSlot>>> {
        self.slots.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Supervisor body: scans worker slots for compiles wedged past the
    /// watchdog budget; answers the victim `watchdog-killed`, strikes
    /// its source fingerprint on the circuit breaker, and spawns a
    /// replacement worker so no pool slot is permanently lost. Only a
    /// *bounded* wedge frees the underlying thread (the chaos faults are
    /// bounded by construction); a truly unbounded wedge keeps its
    /// thread until process exit — but its requests get answered and its
    /// pool share is replaced either way.
    fn watchdog_loop<'scope>(
        &'scope self,
        scope: &'scope std::thread::Scope<'scope, '_>,
        tx: &Sender<Emit>,
    ) {
        let Some(ms) = self.server.config.watchdog_ms else {
            return;
        };
        let budget = Duration::from_millis(ms.max(1));
        let tick = budget
            .min(Duration::from_millis(5))
            .max(Duration::from_millis(1));
        loop {
            {
                let q = self.pump.lockq();
                let no_more_input = self.pump.reader_done.load(Ordering::SeqCst)
                    || self.pump.draining.load(Ordering::SeqCst);
                if q.q.is_empty() && q.busy == 0 && no_more_input && self.sched.live() == 0 {
                    return;
                }
            }
            self.kill_wedged(scope, tx, budget);
            std::thread::sleep(tick);
        }
    }

    /// One watchdog scan: kill every worker wedged in a compile past
    /// `budget` and replace it.
    fn kill_wedged<'scope>(
        &'scope self,
        scope: &'scope std::thread::Scope<'scope, '_>,
        tx: &Sender<Emit>,
        budget: Duration,
    ) {
        let slots: Vec<Arc<WorkerSlot>> = self.lock_slots().clone();
        for slot in slots {
            if slot.killed.load(Ordering::SeqCst) {
                continue;
            }
            let victim = {
                let mut active = slot.lock_active();
                // Taking the stage under the slot lock closes the
                // worker's killable window atomically with the kill
                // decision: the worker clears the stage under the same
                // lock before claiming its answer.
                match active.as_ref() {
                    Some(st) if st.stage == "compile" && st.started.elapsed() >= budget => {
                        active.take()
                    }
                    _ => None,
                }
            };
            let Some(st) = victim else { continue };
            if st.answered.swap(true, Ordering::SeqCst) {
                continue; // the worker answered at the last instant
            }
            slot.killed.store(true, Ordering::SeqCst);
            let m = self.server.metrics();
            m.add("serve.watchdog_kills_total", 1);
            let resp = self.server.error_typed(
                st.id,
                "watchdog-killed",
                &format!(
                    "compile wedged past its {} ms watchdog budget; worker replaced",
                    budget.as_millis()
                ),
            );
            let _ = tx.send(Emit::Response {
                seq: st.seq,
                response: resp.response,
            });
            if st.fp != 0 {
                if self.server.breaker.strike(st.fp) {
                    m.add("serve.breaker_opened_total", 1);
                }
                m.gauge_set(
                    "serve.breaker_open",
                    self.server.breaker.open_count() as i64,
                );
            }
            // The wedged thread still holds its busy token; a fresh
            // worker takes over its share of the pool.
            m.add("serve.worker_replacements_total", 1);
            let fresh = Arc::new(WorkerSlot::default());
            self.lock_slots().push(Arc::clone(&fresh));
            let wtx = tx.clone();
            scope.spawn(move || self.worker(&wtx, &fresh));
        }
    }

    /// Converts scheduler completions into ordered responses with
    /// per-tenant accounting. Runs until the scheduler is sealed.
    fn forward_completions(&self, rx: Receiver<Completion>, tx: &Sender<Emit>) {
        for c in rx {
            let ctx = self
                .pending
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .remove(&c.seq);
            let Some(ctx) = ctx else {
                self.server.metrics().add("serve.orphan_completions", 1);
                continue;
            };
            let m = self.server.metrics();
            let (mut response, ok) = match (c.verdict, c.result) {
                (Verdict::Done, Some(result)) => {
                    let payload = run_payload(&result, &ctx.artifact.outcome);
                    (
                        self.server
                            .envelope(ctx.id, "run", ctx.cache_state, payload),
                        true,
                    )
                }
                (Verdict::Done, None) => (
                    self.server
                        .error(ctx.id, "internal: completed run lost its result")
                        .response,
                    false,
                ),
                (Verdict::Quota(kind), _) => {
                    m.add("serve.quota_kills_total", 1);
                    (
                        self.server
                            .error_typed(
                                ctx.id,
                                "quota-exceeded",
                                &format!(
                                    "tenant `{}` exceeded its {} quota",
                                    ctx.tenant,
                                    kind.name()
                                ),
                            )
                            .response,
                        false,
                    )
                }
                (Verdict::RuntimeError(e), _) => (
                    self.server
                        .error(ctx.id, &format!("runtime error: {e}"))
                        .response,
                    false,
                ),
                (Verdict::Panicked(msg), _) => (
                    self.server
                        .error_typed(
                            ctx.id,
                            "panic",
                            &format!("contained panic during execution: {msg}"),
                        )
                        .response,
                    false,
                ),
                (Verdict::Shed, _) => {
                    m.add("serve.shed_total", 1);
                    (
                        self.server
                            .error_typed(ctx.id, "shedding", "cancelled by shutdown drain")
                            .response,
                        false,
                    )
                }
            };
            let wall_ns = ctx.received.elapsed().as_nanos();
            patch_wall(
                &mut response,
                (wall_ns / 1_000).min(u128::from(u64::MAX)) as u64,
            );
            m.observe_ns("serve.execute_ns", c.run_time.as_nanos());
            if !ok {
                m.add("serve.errors", 1);
            }
            m.gauge_add("serve.in_flight", -1);
            self.server.observe_total(ctx.cache_state, wall_ns);
            self.server.mirror_cache_stats();
            if let Some(path) = &self.server.config.metrics_out {
                let _ = std::fs::write(path, format!("{}\n", m.to_json()));
            }
            let _ = tx.send(Emit::Response {
                seq: ctx.seq,
                response,
            });
        }
    }

    /// Emits responses in request order (a reorder buffer over the
    /// out-of-order completion stream). On a client hangup, keeps
    /// consuming so the pump can drain, but cancels scheduled work.
    fn writer_loop<W: Write>(&self, rx: Receiver<Emit>, output: &mut W) {
        let mut next = 0u64;
        let mut hold: BTreeMap<u64, Json> = BTreeMap::new();
        let mut hungup = false;
        for emit in rx {
            let (seq, response) = match emit {
                Emit::Done => break,
                Emit::Response { seq, response } => (seq, response),
                Emit::Shed { seq, kind, message } => {
                    let m = self.server.metrics();
                    if kind == "request-too-large" {
                        m.add("serve.requests", 1);
                        m.add("serve.errors", 1);
                    } else {
                        m.add("serve.shed_total", 1);
                    }
                    (
                        seq,
                        self.server.error_typed(Json::Null, kind, &message).response,
                    )
                }
            };
            hold.insert(seq, response);
            while let Some(resp) = hold.remove(&next) {
                next += 1;
                if hungup {
                    continue;
                }
                if writeln!(output, "{resp}")
                    .and_then(|()| output.flush())
                    .is_err()
                {
                    // Client hung up: no one is left to serve. Cancel
                    // queued work and let the pump drain.
                    hungup = true;
                    self.start_drain();
                    self.sched.begin_drain();
                }
            }
        }
        // Best-effort flush of any out-of-order stragglers.
        if !hungup {
            for (_, resp) in hold {
                let _ = writeln!(output, "{resp}").and_then(|()| output.flush());
            }
        }
    }
}

/// Reads request lines with a hard length bound and feeds the pump.
/// Detached from the serve scopes: a client that sends `shutdown` without
/// closing stdin leaves this thread blocked in `read`, and the server
/// must still exit cleanly.
fn reader_loop<R: BufRead>(mut input: R, pump: Arc<Pump>, tx: Sender<Emit>) {
    let mut seq = 0u64;
    loop {
        if pump.draining.load(Ordering::SeqCst) {
            break;
        }
        match read_bounded_line(&mut input, pump.max_line_bytes) {
            Err(e) => {
                eprintln!("oic serve: stdin error: {e}");
                pump.input_error.store(true, Ordering::SeqCst);
                break;
            }
            Ok(None) => break,
            Ok(Some(BoundedLine::TooLong)) => {
                let _ = tx.send(Emit::Shed {
                    seq,
                    kind: "request-too-large",
                    message: format!(
                        "request line exceeds --max-line-bytes ({} bytes)",
                        pump.max_line_bytes
                    ),
                });
                seq += 1;
            }
            Ok(Some(BoundedLine::Full(line))) => {
                if line.trim().is_empty() {
                    continue;
                }
                let mut q = pump.lockq();
                if pump.draining.load(Ordering::SeqCst) {
                    drop(q);
                    let _ = tx.send(Emit::Shed {
                        seq,
                        kind: "shedding",
                        message: "server is draining".to_string(),
                    });
                } else if q.q.len() >= pump.cap {
                    drop(q);
                    let _ = tx.send(Emit::Shed {
                        seq,
                        kind: "overloaded",
                        message: format!("request queue is full ({} queued)", pump.cap),
                    });
                } else {
                    q.q.push_back(QueuedReq {
                        seq,
                        line,
                        at: Instant::now(),
                    });
                    drop(q);
                    pump.cv.notify_one();
                }
                seq += 1;
            }
        }
    }
    pump.reader_done.store(true, Ordering::SeqCst);
    pump.cv.notify_all();
}

/// One bounded line of input.
enum BoundedLine {
    /// A complete line (newline stripped), within the bound.
    Full(String),
    /// The line exceeded the bound; its bytes were discarded, the stream
    /// is positioned after its newline.
    TooLong,
}

/// Reads one `\n`-terminated line without ever buffering more than `max`
/// bytes: an over-long line is discarded as it streams past and reported
/// as [`BoundedLine::TooLong`]. `Ok(None)` is end of input.
fn read_bounded_line<R: BufRead>(
    input: &mut R,
    max: usize,
) -> std::io::Result<Option<BoundedLine>> {
    let mut buf: Vec<u8> = Vec::new();
    let mut too_long = false;
    loop {
        let chunk = input.fill_buf()?;
        if chunk.is_empty() {
            return Ok(match (buf.is_empty(), too_long) {
                (true, false) => None,
                (_, true) => Some(BoundedLine::TooLong),
                _ => Some(BoundedLine::Full(finish_line(buf))),
            });
        }
        match chunk.iter().position(|&b| b == b'\n') {
            Some(i) => {
                if !too_long {
                    buf.extend_from_slice(&chunk[..i]);
                    if buf.len() > max {
                        too_long = true;
                    }
                }
                input.consume(i + 1);
                return Ok(Some(if too_long {
                    BoundedLine::TooLong
                } else {
                    BoundedLine::Full(finish_line(buf))
                }));
            }
            None => {
                let len = chunk.len();
                if !too_long {
                    buf.extend_from_slice(chunk);
                    if buf.len() > max {
                        too_long = true;
                        buf = Vec::new();
                    }
                }
                input.consume(len);
            }
        }
    }
}

fn finish_line(mut bytes: Vec<u8>) -> String {
    if bytes.last() == Some(&b'\r') {
        bytes.pop();
    }
    String::from_utf8_lossy(&bytes).into_owned()
}

/// Overwrites the `wall_us` field of a response, when present.
fn patch_wall(response: &mut Json, wall_us: u64) {
    if let Json::Obj(fields) = response {
        for (k, v) in fields.iter_mut() {
            if k == "wall_us" {
                *v = Json::from(wall_us);
            }
        }
    }
}

/// Runs the full serve pipeline over `input`/`output`: bounded admission,
/// `--jobs` pump workers interleaving request starts with fuel slices of
/// scheduled `run` executions, ordered responses, graceful drain on
/// `shutdown`/EOF/hangup. Returns the process exit code.
pub fn run_serve<R, W>(server: &Server, input: R, output: &mut W) -> u8
where
    R: BufRead + Send + 'static,
    W: Write + Send,
{
    let cfg = &server.config;
    let pump = Arc::new(Pump::new(cfg.queue, cfg.max_line_bytes));
    let (emit_tx, emit_rx) = mpsc::channel::<Emit>();
    let (comp_tx, comp_rx) = mpsc::channel::<Completion>();
    let serve_loop = ServeLoop {
        server,
        sched: Scheduler::new(
            SchedConfig {
                fuel_slice: cfg.fuel_slice.max(1),
                max_queue: cfg.queue.max(1),
            },
            comp_tx,
        ),
        pending: Mutex::new(HashMap::new()),
        pump: Arc::clone(&pump),
        slots: Mutex::new(Vec::new()),
    };
    let reader_tx = emit_tx.clone();
    let reader_pump = Arc::clone(&pump);
    std::thread::spawn(move || reader_loop(input, reader_pump, reader_tx));
    std::thread::scope(|outer| {
        let serve_loop = &serve_loop;
        let writer = outer.spawn(move || serve_loop.writer_loop(emit_rx, output));
        std::thread::scope(|inner| {
            for _ in 0..cfg.jobs.max(1) {
                let tx = emit_tx.clone();
                let slot = Arc::new(WorkerSlot::default());
                serve_loop.lock_slots().push(Arc::clone(&slot));
                inner.spawn(move || serve_loop.worker(&tx, &slot));
            }
            if cfg.watchdog_ms.is_some() {
                let wtx = emit_tx.clone();
                inner.spawn(move || serve_loop.watchdog_loop(inner, &wtx));
            }
            let ftx = emit_tx.clone();
            inner.spawn(move || serve_loop.forward_completions(comp_rx, &ftx));
        });
        // All response producers have finished; release the writer.
        let _ = emit_tx.send(Emit::Done);
        let _ = writer;
    });
    // Workers and writer are done: drain the write-behind persister and
    // compact the journal — the disk half of the graceful shutdown.
    server.flush_disk();
    u8::from(pump.input_error.load(Ordering::SeqCst))
}

const USAGE: &str = "usage: oic serve [--cache-bytes N] [--cache-dir DIR] [--disk-bytes N] \
     [--max-rounds N] [--deadline-ms N] \
     [--metrics-out FILE] [--jobs N] [--queue N] [--fuel-slice N] [--max-line-bytes N] \
     [--max-instructions N] [--max-heap-words N] [--max-depth N] [--tenant-concurrent N] \
     [--run-deadline-ms N] [--brownout-target-ms N] [--brownout-dwell-ms N] \
     [--watchdog-ms N] [--watchdog-strikes N] [--quarantine-cooldown-ms N] [--trace[=MODE]]\n\
     \n\
     Long-lived compile server: one JSON request per stdin line, one JSON\n\
     response per stdout line (`oi.serve.v1`). Ops: compile (default), run,\n\
     stats, shutdown. Compiles are cached content-addressed under an LRU\n\
     byte budget (--cache-bytes, default 64 MiB). With --cache-dir, artifacts\n\
     also persist to a crash-consistent disk tier (checksummed `oi.artifact.v1`\n\
     envelopes under --disk-bytes, default 256 MiB): a restarted server\n\
     recovers the store (quarantining anything corrupt, never serving it)\n\
     and answers repeats as `cache:\"disk\"` instead of recompiling.\n\
     Requests flow through a\n\
     bounded queue (--queue, shed with ok:false `overloaded` when full) and\n\
     `run` execution is fuel-sliced (--fuel-slice) and fairly scheduled\n\
     across tenants (request field `tenant`), each boxed by per-request\n\
     quotas (--max-instructions / --max-heap-words / --max-depth /\n\
     --tenant-concurrent / --run-deadline-ms).\n\
     \n\
     Overload control: --brownout-target-ms enables the adaptive brownout\n\
     ladder (guarded-full -> reduced-precision -> inlining-off -> cache-only;\n\
     hysteresis dwell --brownout-dwell-ms, default 250). --watchdog-ms arms\n\
     the worker watchdog: compiles wedged past the budget are answered\n\
     ok:false `watchdog-killed`, the worker is replaced, and the offending\n\
     source fingerprint is quarantined after --watchdog-strikes kills\n\
     (default 3) for --quarantine-cooldown-ms (default 1000), then probed\n\
     half-open. Backpressure refusals carry a typed `retry_after_ms` hint.";

fn usage_error(msg: &str) -> u8 {
    eprintln!("oic serve: {msg}\n\n{USAGE}");
    2
}

/// Entry point for `oic serve`: parses flags, then pumps the JSON-lines
/// protocol until `shutdown` or EOF. Returns the process exit code.
pub fn cli_main(args: &[String]) -> u8 {
    let mut config = ServeConfig::default();
    let mut trace_flag: Option<TraceMode> = None;
    let mut scanner = ArgScanner::new(args.to_vec());
    while let Some(arg) = scanner.next() {
        let arg = match arg {
            Ok(a) => a,
            Err(e) => return usage_error(&e),
        };
        match arg {
            Arg::Flag { name, value: None } => match name.as_str() {
                "cache-bytes" => match flag_u64(&mut scanner, "--cache-bytes") {
                    Ok(n) => config.cache_bytes = n as usize,
                    Err(e) => return usage_error(&e),
                },
                "cache-dir" => match scanner.value_for("--cache-dir") {
                    Ok(dir) if !dir.is_empty() => config.cache_dir = Some(dir),
                    _ => return usage_error("`--cache-dir` needs a directory path"),
                },
                "disk-bytes" => match flag_u64(&mut scanner, "--disk-bytes") {
                    Ok(n) => config.disk_bytes = n,
                    Err(e) => return usage_error(&e),
                },
                "max-rounds" => match flag_u64(&mut scanner, "--max-rounds") {
                    Ok(n) => config.max_rounds = Some(n),
                    Err(e) => return usage_error(&e),
                },
                "deadline-ms" => match flag_u64(&mut scanner, "--deadline-ms") {
                    Ok(n) => config.deadline_ms = Some(n),
                    Err(e) => return usage_error(&e),
                },
                "metrics-out" => match scanner.value_for("--metrics-out") {
                    Ok(path) if !path.is_empty() => config.metrics_out = Some(path),
                    _ => return usage_error("`--metrics-out` needs a file path"),
                },
                "jobs" => match flag_u64(&mut scanner, "--jobs") {
                    Ok(n) => config.jobs = n as usize,
                    Err(e) => return usage_error(&e),
                },
                "queue" => match flag_u64(&mut scanner, "--queue") {
                    Ok(n) => config.queue = n as usize,
                    Err(e) => return usage_error(&e),
                },
                "fuel-slice" => match flag_u64(&mut scanner, "--fuel-slice") {
                    Ok(n) => config.fuel_slice = n,
                    Err(e) => return usage_error(&e),
                },
                "max-line-bytes" => match flag_u64(&mut scanner, "--max-line-bytes") {
                    Ok(n) => config.max_line_bytes = n as usize,
                    Err(e) => return usage_error(&e),
                },
                "max-instructions" => match flag_u64(&mut scanner, "--max-instructions") {
                    Ok(n) => config.max_instructions = Some(n),
                    Err(e) => return usage_error(&e),
                },
                "max-heap-words" => match flag_u64(&mut scanner, "--max-heap-words") {
                    Ok(n) => config.max_heap_words = Some(n),
                    Err(e) => return usage_error(&e),
                },
                "max-depth" => match flag_u64(&mut scanner, "--max-depth") {
                    Ok(n) => config.max_depth = Some(n as usize),
                    Err(e) => return usage_error(&e),
                },
                "tenant-concurrent" => match flag_u64(&mut scanner, "--tenant-concurrent") {
                    Ok(n) => config.tenant_concurrent = n as usize,
                    Err(e) => return usage_error(&e),
                },
                "run-deadline-ms" => match flag_u64(&mut scanner, "--run-deadline-ms") {
                    Ok(n) => config.run_deadline_ms = Some(n),
                    Err(e) => return usage_error(&e),
                },
                "brownout-target-ms" => match flag_u64(&mut scanner, "--brownout-target-ms") {
                    Ok(n) => config.brownout_target_ms = Some(n),
                    Err(e) => return usage_error(&e),
                },
                "brownout-dwell-ms" => match flag_u64(&mut scanner, "--brownout-dwell-ms") {
                    Ok(n) => config.brownout_dwell_ms = n,
                    Err(e) => return usage_error(&e),
                },
                "watchdog-ms" => match flag_u64(&mut scanner, "--watchdog-ms") {
                    Ok(n) => config.watchdog_ms = Some(n),
                    Err(e) => return usage_error(&e),
                },
                "watchdog-strikes" => match flag_u64(&mut scanner, "--watchdog-strikes") {
                    Ok(n) => config.watchdog_strikes = n.min(u64::from(u32::MAX)) as u32,
                    Err(e) => return usage_error(&e),
                },
                "quarantine-cooldown-ms" => {
                    match flag_u64(&mut scanner, "--quarantine-cooldown-ms") {
                        Ok(n) => config.quarantine_cooldown_ms = n,
                        Err(e) => return usage_error(&e),
                    }
                }
                "trace" => trace_flag = Some(TraceMode::Text),
                _ => return usage_error(&format!("unknown flag `--{name}`")),
            },
            Arg::Flag {
                name,
                value: Some(mode),
            } if name == "trace" => match TraceMode::parse(&mode) {
                Some(m) => trace_flag = Some(m),
                None => {
                    return usage_error(&format!(
                        "unknown trace mode `{mode}` (expected text, json, or off)"
                    ))
                }
            },
            Arg::Flag {
                name,
                value: Some(value),
            } => return usage_error(&format!("unknown flag `--{name}={value}`")),
            Arg::Positional(p) => {
                return usage_error(&format!("unexpected positional argument `{p}`"))
            }
        }
    }

    let mode = trace_flag.unwrap_or_else(TraceMode::from_env);
    let tracer = Rc::new(Tracer::for_mode(mode));
    let _guard = trace::install(tracer);

    let server = Server::new(config);
    // Stdin/Stdout (not their locks) are Send, which the pump's reader
    // and writer threads require.
    let input = std::io::BufReader::new(std::io::stdin());
    let mut out = std::io::stdout();
    run_serve(&server, input, &mut out)
}

/// Parses the positive-integer value of `flag`.
fn flag_u64(scanner: &mut ArgScanner, flag: &str) -> Result<u64, String> {
    let v = scanner.value_for(flag).unwrap_or_default();
    match v.parse::<u64>() {
        Ok(n) if n > 0 => Ok(n),
        _ => Err(format!("`{flag}` needs a positive integer, got `{v}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oi_support::trace::{EventKind, MemorySink};

    const SOURCE: &str = "
        global KEEP;
        class Point { field x; field y;
          method init(a, b) { self.x = a; self.y = b; }
        }
        class Rect { field ll; field ur;
          method init(a, b) { self.ll = new Point(a, a + 1); self.ur = new Point(b, b + 3); }
          method span() { return self.ur.x - self.ll.x + self.ur.y - self.ll.y; }
        }
        fn main() {
          var r = new Rect(1, 10);
          KEEP = r;
          print KEEP.span();
        }";

    fn request(id: u64, op: &str, source: Option<&str>) -> String {
        let mut fields = vec![("id", Json::from(id)), ("op", op.into())];
        if let Some(s) = source {
            fields.push(("source", s.into()));
        }
        Json::obj(fields).to_string()
    }

    #[test]
    fn repeated_compile_hits_the_cache() {
        let server = Server::new(ServeConfig::default());
        let first = server.handle_line(&request(1, "compile", Some(SOURCE)));
        let second = server.handle_line(&request(2, "compile", Some(SOURCE)));
        for (handled, expected) in [(&first, "miss"), (&second, "hit")] {
            let r = &handled.response;
            assert_eq!(r.get("schema").and_then(Json::as_str), Some("oi.serve.v1"));
            assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true));
            assert_eq!(r.get("cache").and_then(Json::as_str), Some(expected));
            assert!(!handled.shutdown);
            let payload = r.get("payload").expect("payload");
            assert_eq!(
                payload.get("schema").and_then(Json::as_str),
                Some("oic.report.v1")
            );
            assert_eq!(
                payload.get("tier").and_then(Json::as_str),
                Some("guarded-full")
            );
        }
        assert_eq!(first.response.get("id").and_then(Json::as_i64), Some(1));
        assert_eq!(server.cache().stats().hits, 1);
    }

    #[test]
    fn run_op_executes_and_reports() {
        let server = Server::new(ServeConfig::default());
        let handled = server.handle_line(&request(7, "run", Some(SOURCE)));
        let payload = handled.response.get("payload").expect("payload");
        assert_eq!(
            payload.get("schema").and_then(Json::as_str),
            Some("oic.run.v1")
        );
        assert_eq!(payload.get("output").and_then(Json::as_str), Some("20\n"));
        assert!(payload.get("metrics").is_some());
        assert!(payload.get("report").is_some());
        // A second run hits the artifact cache but still executes.
        let again = server.handle_line(&request(8, "run", Some(SOURCE)));
        assert_eq!(
            again.response.get("cache").and_then(Json::as_str),
            Some("hit")
        );
        assert_eq!(
            again
                .response
                .get("payload")
                .and_then(|p| p.get("output"))
                .and_then(Json::as_str),
            Some("20\n")
        );
    }

    #[test]
    fn stats_op_returns_reconciled_metrics() {
        let server = Server::new(ServeConfig::default());
        server.handle_line(&request(1, "compile", Some(SOURCE)));
        server.handle_line(&request(2, "compile", Some(SOURCE)));
        let handled = server.handle_line(&request(3, "stats", None));
        let payload = handled.response.get("payload").expect("payload");
        assert_eq!(
            payload.get("schema").and_then(Json::as_str),
            Some("oi.metrics.v1")
        );
        let counter = |name: &str| {
            payload
                .get("counters")
                .and_then(|c| c.get(name))
                .and_then(Json::as_i64)
        };
        assert_eq!(counter("serve.requests"), Some(3));
        assert_eq!(counter("cache.hits"), Some(1));
        assert_eq!(counter("cache.misses"), Some(1));
        assert_eq!(counter("serve.tier.guarded-full"), Some(1));
        assert_eq!(counter("serve.errors").unwrap_or(0), 0);
        assert_eq!(server.metrics().gauge("serve.in_flight"), 0);
    }

    #[test]
    fn failure_modes_are_ok_false_responses() {
        let server = Server::new(ServeConfig::default());
        let bad_json = server.handle_line("{not json");
        assert_eq!(
            bad_json.response.get("ok").and_then(Json::as_bool),
            Some(false)
        );
        let no_source = server.handle_line(&request(1, "compile", None));
        assert!(no_source
            .response
            .get("error")
            .and_then(Json::as_str)
            .unwrap()
            .contains("source"));
        let bad_op = server.handle_line(&request(2, "launder", None));
        assert!(bad_op
            .response
            .get("error")
            .and_then(Json::as_str)
            .unwrap()
            .contains("unknown op"));
        let bad_program = server.handle_line(&request(3, "compile", Some("fn main( {")));
        assert_eq!(
            bad_program.response.get("ok").and_then(Json::as_bool),
            Some(false)
        );
        assert_eq!(server.metrics().counter("serve.errors"), 4);
        assert_eq!(server.metrics().counter("serve.requests"), 4);
        assert_eq!(server.metrics().gauge("serve.in_flight"), 0);
    }

    #[test]
    fn shutdown_sets_the_flag() {
        let server = Server::new(ServeConfig::default());
        let handled = server.handle_line(&request(9, "shutdown", None));
        assert!(handled.shutdown);
        assert_eq!(
            handled.response.get("ok").and_then(Json::as_bool),
            Some(true)
        );
    }

    #[test]
    fn per_request_budget_config_changes_the_cache_key() {
        let server = Server::new(ServeConfig::default());
        server.handle_line(&request(1, "compile", Some(SOURCE)));
        let budgeted = format!(
            "{}",
            Json::obj(vec![
                ("id", 2u64.into()),
                ("op", "compile".into()),
                ("source", SOURCE.into()),
                ("config", Json::obj(vec![("max_rounds", 64u64.into())])),
            ])
        );
        let handled = server.handle_line(&budgeted);
        assert_eq!(
            handled.response.get("cache").and_then(Json::as_str),
            Some("miss"),
            "a budget override must not alias the unbudgeted artifact"
        );
    }

    #[test]
    fn request_id_is_stamped_on_served_spans() {
        let sink = Rc::new(MemorySink::default());
        let tracer = Rc::new(Tracer::new(vec![sink.clone()]));
        let _guard = trace::install(tracer);
        let server = Server::new(ServeConfig::default());
        server.handle_line(&request(42, "compile", Some(SOURCE)));
        let events = sink.snapshot();
        let span_with_id = |name: &str| {
            events.iter().any(|e| {
                e.kind == EventKind::SpanStart
                    && e.name == name
                    && e.fields
                        .iter()
                        .any(|(k, v)| k == "request_id" && v.as_str() == Some("42"))
            })
        };
        assert!(span_with_id("serve.request"), "request span carries the id");
        assert!(span_with_id("serve.parse"), "parse span carries the id");
        assert!(
            span_with_id("serve.optimize"),
            "optimize span carries the id"
        );
    }

    #[test]
    fn metrics_out_dumps_after_every_request() {
        let dir = std::env::temp_dir().join("oi-serve-test-metrics");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("metrics.json");
        let server = Server::new(ServeConfig {
            metrics_out: Some(path.to_string_lossy().into_owned()),
            ..ServeConfig::default()
        });
        server.handle_line(&request(1, "compile", Some(SOURCE)));
        let dumped = std::fs::read_to_string(&path).expect("metrics dump exists");
        let doc = Json::parse(dumped.trim()).expect("dump parses");
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some("oi.metrics.v1")
        );
        let _ = std::fs::remove_file(&path);
    }

    /// A finite but quota-busting loop (never pass a non-terminating
    /// program through serve: the ladder's firewall runs it empirically).
    const LONG_SOURCE: &str = "
        fn main() {
          var i = 0;
          var acc = 0;
          while (i < 50000) { acc = acc + i; i = i + 1; }
          print acc;
        }";

    fn run_request(id: u64, source: &str, tenant: &str) -> String {
        Json::obj(vec![
            ("id", Json::from(id)),
            ("op", "run".into()),
            ("source", source.into()),
            ("tenant", tenant.into()),
        ])
        .to_string()
    }

    /// Drives a full `run_serve` session over an in-memory transcript and
    /// returns the parsed response lines, in emission order.
    fn pump_session(server: &Server, requests: &[String]) -> Vec<Json> {
        let input = std::io::Cursor::new(requests.join("\n").into_bytes());
        let mut out: Vec<u8> = Vec::new();
        let code = run_serve(server, input, &mut out);
        assert_eq!(code, 0, "serve exit code");
        String::from_utf8(out)
            .expect("utf8 output")
            .lines()
            .map(|l| Json::parse(l).expect("response json"))
            .collect()
    }

    fn output_of(resp: &Json) -> Option<&str> {
        resp.get("payload")
            .and_then(|p| p.get("output"))
            .and_then(Json::as_str)
    }

    #[test]
    fn concurrent_pump_preserves_protocol_order_and_results() {
        let server = Server::new(ServeConfig {
            jobs: 2,
            ..ServeConfig::default()
        });
        let responses = pump_session(
            &server,
            &[
                request(1, "compile", Some(SOURCE)),
                request(2, "run", Some(SOURCE)),
                request(3, "run", Some(SOURCE)),
                request(4, "stats", None),
            ],
        );
        assert_eq!(responses.len(), 4);
        for (i, resp) in responses.iter().enumerate() {
            assert_eq!(
                resp.get("id").and_then(Json::as_i64),
                Some(i as i64 + 1),
                "responses must come back in request order: {resp}"
            );
            assert_eq!(
                resp.get("ok").and_then(Json::as_bool),
                Some(true),
                "unexpected failure: {resp}"
            );
        }
        assert_eq!(output_of(&responses[1]), Some("20\n"));
        assert_eq!(output_of(&responses[2]), Some("20\n"));
        assert_eq!(server.metrics().gauge("serve.in_flight"), 0);
        assert_eq!(server.metrics().counter("serve.shed_total"), 0);
        assert!(server.metrics().quantile_ns("serve.queue_wait_ns", 50.0) > 0);
    }

    #[test]
    fn request_too_large_is_typed_and_survivable() {
        let server = Server::new(ServeConfig {
            max_line_bytes: 1024,
            ..ServeConfig::default()
        });
        let huge = format!("{{\"id\": 1, \"junk\": \"{}\"}}", "x".repeat(4096));
        let responses = pump_session(&server, &[huge, request(2, "compile", Some(SOURCE))]);
        assert_eq!(responses.len(), 2);
        assert_eq!(responses[0].get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(
            responses[0].get("error_kind").and_then(Json::as_str),
            Some("request-too-large")
        );
        assert_eq!(
            responses[1].get("ok").and_then(Json::as_bool),
            Some(true),
            "server must survive an oversized line: {}",
            responses[1]
        );
        assert_eq!(server.metrics().counter("serve.errors"), 1);
    }

    #[test]
    fn run_quota_kill_names_tenant_and_spares_neighbors() {
        let server = Server::new(ServeConfig {
            max_instructions: Some(1_000),
            ..ServeConfig::default()
        });
        let responses = pump_session(
            &server,
            &[
                run_request(1, LONG_SOURCE, "mallory"),
                run_request(2, "fn main() { print 1 + 1; }", "alice"),
            ],
        );
        assert_eq!(responses.len(), 2);
        let killed = &responses[0];
        assert_eq!(killed.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(
            killed.get("error_kind").and_then(Json::as_str),
            Some("quota-exceeded")
        );
        let msg = killed.get("error").and_then(Json::as_str).unwrap();
        assert!(
            msg.contains("mallory") && msg.contains("instructions"),
            "quota kill must name the guilty tenant and quota: {msg}"
        );
        assert_eq!(
            output_of(&responses[1]),
            Some("2\n"),
            "neighbor must be unaffected: {}",
            responses[1]
        );
        assert_eq!(server.metrics().counter("serve.quota_kills_total"), 1);
        assert_eq!(server.metrics().gauge("serve.in_flight"), 0);
    }

    #[test]
    fn overload_sheds_with_typed_backpressure() {
        let server = Server::new(ServeConfig {
            jobs: 1,
            queue: 2,
            ..ServeConfig::default()
        });
        let requests: Vec<String> = (0..9)
            .map(|i| run_request(i + 1, SOURCE, "burst"))
            .collect();
        let responses = pump_session(&server, &requests);
        assert_eq!(responses.len(), 9);
        let mut served = 0u64;
        let mut shed = 0u64;
        for resp in &responses {
            if resp.get("ok").and_then(Json::as_bool) == Some(true) {
                assert_eq!(output_of(resp), Some("20\n"));
                served += 1;
            } else {
                assert_eq!(
                    resp.get("error_kind").and_then(Json::as_str),
                    Some("overloaded"),
                    "sheds must be typed: {resp}"
                );
                shed += 1;
            }
        }
        assert!(served >= 1, "some requests must be served");
        assert!(shed >= 1, "a 9-deep burst into a 2-deep queue must shed");
        assert_eq!(server.metrics().counter("serve.shed_total"), shed);
        assert_eq!(server.metrics().gauge("serve.in_flight"), 0);
    }

    #[test]
    fn drain_on_shutdown_finishes_in_flight_runs() {
        let server = Server::new(ServeConfig {
            jobs: 1,
            fuel_slice: 100,
            ..ServeConfig::default()
        });
        let responses = pump_session(
            &server,
            &[
                run_request(1, SOURCE, "steady"),
                request(2, "shutdown", None),
            ],
        );
        assert_eq!(responses.len(), 2);
        assert_eq!(
            responses[0].get("ok").and_then(Json::as_bool),
            Some(true),
            "an admitted run must finish during drain: {}",
            responses[0]
        );
        assert_eq!(output_of(&responses[0]), Some("20\n"));
        assert_eq!(responses[1].get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(server.metrics().counter("serve.shed_total"), 0);
        assert_eq!(server.metrics().gauge("serve.in_flight"), 0);
    }

    fn disk_config(dir: &std::path::Path) -> ServeConfig {
        ServeConfig {
            cache_dir: Some(dir.to_string_lossy().into_owned()),
            ..ServeConfig::default()
        }
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("oi-serve-disk-{}-{tag}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn restart_serves_from_the_disk_tier() {
        let dir = temp_dir("restart");
        {
            let server = Server::new(disk_config(&dir));
            let first = server.handle_line(&request(1, "compile", Some(SOURCE)));
            assert_eq!(
                first.response.get("cache").and_then(Json::as_str),
                Some("miss")
            );
            server.flush_disk();
        }
        // A "restarted" server: fresh memory cache, same directory.
        let server = Server::new(disk_config(&dir));
        assert_eq!(server.metrics().counter("serve.recovery_entries_kept"), 1);
        let warm = server.handle_line(&request(2, "compile", Some(SOURCE)));
        assert_eq!(
            warm.response.get("cache").and_then(Json::as_str),
            Some("disk"),
            "a restart must warm-start from disk: {}",
            warm.response
        );
        // Promotion: the next repeat is a plain memory hit.
        let hot = server.handle_line(&request(3, "compile", Some(SOURCE)));
        assert_eq!(
            hot.response.get("cache").and_then(Json::as_str),
            Some("hit")
        );
        assert_eq!(server.metrics().counter("disk.load_hits"), 1);
        assert!(server.metrics().counter("disk.persists") <= 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_disk_entry_is_quarantined_and_recompiled() {
        use oi_core::IoFault;
        let dir = temp_dir("corrupt");
        {
            let server = Server::new(disk_config(&dir));
            server.handle_line(&request(1, "compile", Some(SOURCE)));
        } // Drop flushes the persister and compacts.
        let server = Server::new(disk_config(&dir));
        // Corrupt the entry *after* recovery verified it: the load path
        // itself must catch it.
        DiskStore::inject_io_fault(&dir, IoFault::BitFlipBody).unwrap();
        let handled = server.handle_line(&request(2, "compile", Some(SOURCE)));
        assert_eq!(
            handled.response.get("cache").and_then(Json::as_str),
            Some("miss"),
            "a corrupt entry must be recompiled, never served: {}",
            handled.response
        );
        assert_eq!(
            handled.response.get("ok").and_then(Json::as_bool),
            Some(true)
        );
        assert_eq!(
            server.metrics().counter("serve.corrupt_quarantined_total"),
            1
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unclean_kill_mid_session_still_recovers() {
        let dir = temp_dir("kill");
        {
            let server = Server::new(disk_config(&dir));
            server.handle_line(&request(1, "compile", Some(SOURCE)));
            // Simulate a kill: flush the persister so the artifact is on
            // disk, but skip compaction by leaking the tier's compact step
            // — here, the closest faithful stand-in is injecting a torn
            // journal tail after a clean flush.
            server.flush_disk();
        }
        use oi_core::IoFault;
        DiskStore::inject_io_fault(&dir, IoFault::TruncatedJournalTail).unwrap();
        let server = Server::new(disk_config(&dir));
        // Recovery truncated the tail and re-adopted the orphan entry.
        assert_eq!(
            server.metrics().counter("serve.recovery_journal_truncated"),
            1
        );
        let warm = server.handle_line(&request(2, "compile", Some(SOURCE)));
        assert_eq!(
            warm.response.get("cache").and_then(Json::as_str),
            Some("disk")
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unopenable_cache_dir_degrades_to_memory_only() {
        // A file where the directory should be: open fails, the server
        // must still serve.
        let dir = temp_dir("degrade");
        std::fs::create_dir_all(&dir).unwrap();
        let blocker = dir.join("not-a-dir");
        std::fs::write(&blocker, b"x").unwrap();
        let server = Server::new(disk_config(&blocker));
        assert_eq!(server.metrics().counter("serve.disk_open_failures"), 1);
        let handled = server.handle_line(&request(1, "compile", Some(SOURCE)));
        assert_eq!(
            handled.response.get("ok").and_then(Json::as_bool),
            Some(true)
        );
        assert_eq!(
            handled.response.get("cache").and_then(Json::as_str),
            Some("miss")
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn pump_session_with_disk_tier_flushes_on_drain() {
        let dir = temp_dir("pump");
        {
            let server = Server::new(disk_config(&dir));
            let responses = pump_session(
                &server,
                &[
                    request(1, "compile", Some(SOURCE)),
                    request(2, "shutdown", None),
                ],
            );
            assert_eq!(responses.len(), 2);
            assert_eq!(responses[0].get("ok").and_then(Json::as_bool), Some(true));
        }
        let server = Server::new(disk_config(&dir));
        assert!(
            !server.disk().unwrap().recovery().found_damage(),
            "drain must leave a clean store: {:?}",
            server.disk().unwrap().recovery()
        );
        assert_eq!(server.metrics().counter("serve.recovery_entries_kept"), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A compile request carrying the bounded wedge chaos fault.
    fn wedge_request(id: u64, source: &str, wedge_ms: u64) -> String {
        Json::obj(vec![
            ("id", Json::from(id)),
            ("op", "compile".into()),
            ("source", source.into()),
            (
                "chaos",
                Json::obj(vec![("wedge_compile_ms", wedge_ms.into())]),
            ),
        ])
        .to_string()
    }

    #[test]
    fn health_op_reports_overload_state() {
        let server = Server::new(ServeConfig::default());
        let handled = server.handle_line(&request(1, "health", None));
        let r = &handled.response;
        assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(
            r.get("brownout_tier").and_then(Json::as_str),
            Some("guarded-full")
        );
        let p = r.get("payload").expect("payload");
        assert_eq!(p.get("status").and_then(Json::as_str), Some("ok"));
        assert_eq!(
            p.get("brownout_tier").and_then(Json::as_str),
            Some("guarded-full")
        );
        assert_eq!(p.get("breaker_open").and_then(Json::as_i64), Some(0));
        assert_eq!(p.get("in_flight").and_then(Json::as_i64), Some(1));
    }

    #[test]
    fn cache_only_brownout_serves_hits_and_sheds_misses() {
        let server = Server::new(ServeConfig {
            brownout_target_ms: Some(1_000),
            ..ServeConfig::default()
        });
        // Warm the cache at full service, then force the deepest rung.
        let warm = server.handle_line(&request(1, "compile", Some(SOURCE)));
        assert_eq!(warm.response.get("ok").and_then(Json::as_bool), Some(true));
        server.force_brownout(BrownoutLevel::CacheOnly);
        let hit = server.handle_line(&request(2, "compile", Some(SOURCE)));
        assert_eq!(
            hit.response.get("cache").and_then(Json::as_str),
            Some("hit"),
            "cache-only still serves hits: {}",
            hit.response
        );
        assert_eq!(
            hit.response.get("brownout_tier").and_then(Json::as_str),
            Some("cache-only")
        );
        let cold = server.handle_line(&request(3, "compile", Some("fn main() { print 1; }")));
        let r = &cold.response;
        assert_eq!(r.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(r.get("error_kind").and_then(Json::as_str), Some("shedding"));
        // shedding base 50ms, doubled per rung: 50 << 3 at cache-only.
        assert_eq!(r.get("retry_after_ms").and_then(Json::as_i64), Some(400));
        assert_eq!(server.metrics().counter("serve.brownout_shed_total"), 1);
        // Recovery restores compiles.
        server.force_brownout(BrownoutLevel::GuardedFull);
        let again = server.handle_line(&request(4, "compile", Some("fn main() { print 1; }")));
        assert_eq!(again.response.get("ok").and_then(Json::as_bool), Some(true));
    }

    #[test]
    fn degraded_brownout_compiles_under_a_distinct_cache_key() {
        let server = Server::new(ServeConfig {
            brownout_target_ms: Some(1_000),
            ..ServeConfig::default()
        });
        server.force_brownout(BrownoutLevel::InliningOff);
        let degraded = server.handle_line(&request(1, "compile", Some(SOURCE)));
        assert_eq!(
            degraded
                .response
                .get("payload")
                .and_then(|p| p.get("tier"))
                .and_then(Json::as_str),
            Some("inlining-off"),
            "brownout must start the ladder lower: {}",
            degraded.response
        );
        assert_eq!(
            server.metrics().counter("serve.brownout_degraded_compiles"),
            1
        );
        // Back at full service the same source recompiles at full tier —
        // the degraded artifact must not alias the full-tier key. The
        // degraded artifact remains a valid hit *while degraded*.
        server.force_brownout(BrownoutLevel::GuardedFull);
        let full = server.handle_line(&request(2, "compile", Some(SOURCE)));
        assert_eq!(
            full.response
                .get("payload")
                .and_then(|p| p.get("tier"))
                .and_then(Json::as_str),
            Some("guarded-full")
        );
        assert_eq!(
            full.response.get("cache").and_then(Json::as_str),
            Some("miss"),
            "degraded artifact must not serve full-tier requests"
        );
        // Degraded levels prefer the best available artifact: the
        // guarded-full artifact now outranks the inlining-off one.
        server.force_brownout(BrownoutLevel::InliningOff);
        let best = server.handle_line(&request(3, "compile", Some(SOURCE)));
        assert_eq!(
            best.response.get("cache").and_then(Json::as_str),
            Some("hit")
        );
        assert_eq!(
            best.response
                .get("payload")
                .and_then(|p| p.get("tier"))
                .and_then(Json::as_str),
            Some("guarded-full")
        );
    }

    #[test]
    fn watchdog_kills_wedged_compile_and_replaces_the_worker() {
        let server = Server::new(ServeConfig {
            jobs: 2,
            allow_chaos_faults: true,
            watchdog_ms: Some(25),
            watchdog_strikes: 10, // no quarantine in this test
            ..ServeConfig::default()
        });
        let responses = pump_session(
            &server,
            &[
                wedge_request(1, SOURCE, 300),
                request(2, "compile", Some(SOURCE)),
            ],
        );
        assert_eq!(responses.len(), 2);
        let killed = &responses[0];
        assert_eq!(killed.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(
            killed.get("error_kind").and_then(Json::as_str),
            Some("watchdog-killed"),
            "wedged compile must be answered by the watchdog: {killed}"
        );
        // The neighbor rode the replacement (or the second worker) to a
        // normal answer.
        assert_eq!(responses[1].get("ok").and_then(Json::as_bool), Some(true));
        let m = server.metrics();
        assert_eq!(m.counter("serve.watchdog_kills_total"), 1);
        assert_eq!(
            m.counter("serve.worker_replacements_total"),
            m.counter("serve.watchdog_kills_total"),
            "every kill must replace its worker slot"
        );
        assert_eq!(m.gauge("serve.in_flight"), 0);
    }

    #[test]
    fn repeated_wedges_quarantine_the_fingerprint_until_a_clean_probe() {
        let server = Server::new(ServeConfig {
            jobs: 1,
            allow_chaos_faults: true,
            watchdog_ms: Some(25),
            watchdog_strikes: 2,
            quarantine_cooldown_ms: 60_000,
            ..ServeConfig::default()
        });
        let responses = pump_session(
            &server,
            &[
                wedge_request(1, SOURCE, 300),
                wedge_request(2, SOURCE, 300),
                // Same source, no chaos: the fingerprint is quarantined,
                // so this is refused *before* any compile work.
                request(3, "compile", Some(SOURCE)),
                // A different source is unaffected.
                request(4, "compile", Some("fn main() { print 7; }")),
            ],
        );
        assert_eq!(responses.len(), 4);
        for killed in &responses[..2] {
            assert_eq!(
                killed.get("error_kind").and_then(Json::as_str),
                Some("watchdog-killed"),
                "unexpected: {killed}"
            );
        }
        let quarantined = &responses[2];
        assert_eq!(
            quarantined.get("error_kind").and_then(Json::as_str),
            Some("quarantined"),
            "K strikes must stop recompiling the fingerprint: {quarantined}"
        );
        assert!(
            quarantined
                .get("retry_after_ms")
                .and_then(Json::as_i64)
                .unwrap_or(0)
                >= 1,
            "quarantine carries a typed retry hint: {quarantined}"
        );
        assert_eq!(responses[3].get("ok").and_then(Json::as_bool), Some(true));
        let m = server.metrics();
        assert_eq!(m.counter("serve.watchdog_kills_total"), 2);
        assert_eq!(m.counter("serve.worker_replacements_total"), 2);
        assert_eq!(m.counter("serve.breaker_opened_total"), 1);
        assert_eq!(m.counter("serve.quarantined_total"), 1);
        assert_eq!(m.gauge("serve.breaker_open"), 1);
        assert_eq!(m.gauge("serve.in_flight"), 0);
    }

    #[test]
    fn quarantine_cooldown_admits_a_clean_probe_that_closes_the_circuit() {
        let server = Server::new(ServeConfig {
            jobs: 1,
            allow_chaos_faults: true,
            watchdog_ms: Some(20),
            watchdog_strikes: 1,
            quarantine_cooldown_ms: 50,
            ..ServeConfig::default()
        });
        let responses = pump_session(&server, &[wedge_request(1, SOURCE, 200)]);
        assert_eq!(
            responses[0].get("error_kind").and_then(Json::as_str),
            Some("watchdog-killed")
        );
        assert_eq!(server.metrics().gauge("serve.breaker_open"), 1);
        std::thread::sleep(Duration::from_millis(60));
        // Cooldown elapsed: one probe is admitted; it compiles cleanly
        // (no chaos field) and closes the circuit.
        let probe = server.handle_line(&request(2, "compile", Some(SOURCE)));
        assert_eq!(
            probe.response.get("ok").and_then(Json::as_bool),
            Some(true),
            "clean probe must be admitted: {}",
            probe.response
        );
        assert_eq!(server.metrics().gauge("serve.breaker_open"), 0);
        let again = server.handle_line(&request(3, "compile", Some(SOURCE)));
        assert_eq!(
            again.response.get("cache").and_then(Json::as_str),
            Some("hit")
        );
    }
}
