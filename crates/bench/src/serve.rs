//! `oic serve` — a long-lived compile server over a JSON-lines protocol.
//!
//! The server reads one JSON request per stdin line and writes one JSON
//! response per stdout line, wrapped in a schema-stable `oi.serve.v1`
//! envelope. Compiles are fronted by the content-addressed artifact cache
//! ([`oi_core::cache`]): byte-identical source under an identical
//! configuration is served from memory without re-running the pipeline.
//!
//! Requests:
//!
//! ```text
//! {"id": 1, "op": "compile", "source": "fn main() { ... }"}
//! {"id": 2, "op": "run", "path": "tests/progs/rect.oi"}
//! {"id": 3, "op": "compile", "source": "...", "config": {"max_rounds": 64}}
//! {"id": 4, "op": "stats"}
//! {"id": 5, "op": "shutdown"}
//! ```
//!
//! `op` defaults to `"compile"`. Responses reuse the existing CLI payloads
//! (`oic.report.v1`-shaped for `compile`, `oic.run.v1`-shaped for `run`,
//! `oi.metrics.v1` for `stats`) inside the envelope:
//!
//! ```text
//! {"schema":"oi.serve.v1","id":1,"ok":true,"op":"compile",
//!  "cache":"miss","wall_us":1234,"payload":{...}}
//! ```
//!
//! Every service stage is instrumented through an [`oi_support::metrics`]
//! registry — requests/errors, in-flight gauge, cache hit/miss/eviction
//! counters and byte/entry gauges, per-stage latency histograms
//! (parse/analyze/optimize/execute/total) — served over the protocol as a
//! `stats` request and optionally dumped to `--metrics-out FILE` after
//! every request. Traces correlate with the metrics via a per-request
//! `request_id` field stamped on the `serve.*` spans.

use crate::harness::time_once;
use oi_core::cache::{config_fingerprint, Artifact, ArtifactCache, CacheKey};
use oi_core::ladder::{optimize_with_ladder, LadderConfig};
use oi_support::cli::{Arg, ArgScanner};
use oi_support::metrics::Registry;
use oi_support::trace::{self, kv, TraceMode, Tracer};
use oi_support::{Budget, Json};
use std::io::{BufRead, Write};
use std::rc::Rc;
use std::time::Duration;

/// Serve-time configuration (flags of `oic serve`).
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// LRU byte budget for the artifact cache (`--cache-bytes`).
    pub cache_bytes: usize,
    /// Default per-request analysis round budget (`--max-rounds`).
    pub max_rounds: Option<u64>,
    /// Default per-request analysis deadline (`--deadline-ms`).
    pub deadline_ms: Option<u64>,
    /// Rewrite this file with the `oi.metrics.v1` document after every
    /// request (`--metrics-out`).
    pub metrics_out: Option<String>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            cache_bytes: 64 << 20,
            max_rounds: None,
            deadline_ms: None,
            metrics_out: None,
        }
    }
}

/// The outcome of handling one request line.
#[derive(Clone, Debug)]
pub struct Handled {
    /// The JSON response to write back (one line).
    pub response: Json,
    /// `true` when the request asked the server to stop.
    pub shutdown: bool,
}

/// One in-process compile server: artifact cache + metrics registry +
/// the base ladder configuration requests are compiled under.
pub struct Server {
    cache: ArtifactCache,
    metrics: Registry,
    ladder: LadderConfig,
    config: ServeConfig,
}

impl Server {
    /// A server with an empty cache and zeroed metrics.
    pub fn new(config: ServeConfig) -> Server {
        Server {
            cache: ArtifactCache::new(config.cache_bytes),
            metrics: Registry::new(),
            ladder: LadderConfig::default(),
            config,
        }
    }

    /// The server's metrics registry (loadgen reconciles against it).
    pub fn metrics(&self) -> &Registry {
        &self.metrics
    }

    /// The server's artifact cache.
    pub fn cache(&self) -> &ArtifactCache {
        &self.cache
    }

    /// Handles one request line and returns the response line. Never
    /// panics on malformed input — every failure mode is an `ok:false`
    /// response.
    pub fn handle_line(&self, line: &str) -> Handled {
        let (handled, wall) = time_once(|| self.dispatch(line));
        self.mirror_cache_stats();
        let mut handled = handled;
        if let Json::Obj(fields) = &mut handled.response {
            for (k, v) in fields.iter_mut() {
                if k == "wall_us" {
                    *v = Json::from((wall.median / 1_000).min(u128::from(u64::MAX)) as u64);
                }
            }
        }
        if let Some(path) = &self.config.metrics_out {
            let _ = std::fs::write(path, format!("{}\n", self.metrics.to_json()));
        }
        handled
    }

    fn dispatch(&self, line: &str) -> Handled {
        self.metrics.add("serve.requests", 1);
        self.metrics.gauge_add("serve.in_flight", 1);
        let handled = self.dispatch_inner(line);
        self.metrics.gauge_add("serve.in_flight", -1);
        if handled
            .response
            .get("ok")
            .and_then(Json::as_bool)
            .unwrap_or(false)
        {
            handled
        } else {
            self.metrics.add("serve.errors", 1);
            handled
        }
    }

    fn dispatch_inner(&self, line: &str) -> Handled {
        let request = match Json::parse(line) {
            Ok(r) => r,
            Err(e) => return self.error(Json::Null, &format!("malformed request: {e}")),
        };
        let id = request.get("id").cloned().unwrap_or(Json::Null);
        let op = request
            .get("op")
            .and_then(Json::as_str)
            .unwrap_or("compile")
            .to_string();
        let _span = trace::span_with(
            "serve.request",
            vec![kv("request_id", id_label(&id)), kv("op", op.as_str())],
        );
        match op.as_str() {
            "compile" | "run" => self.serve_compile(&request, id, &op),
            "stats" => Handled {
                response: self.envelope(id, &op, "none", self.metrics.to_json()),
                shutdown: false,
            },
            "shutdown" => Handled {
                response: self.envelope(id, &op, "none", Json::Null),
                shutdown: true,
            },
            other => self.error(id, &format!("unknown op `{other}`")),
        }
    }

    fn serve_compile(&self, request: &Json, id: Json, op: &str) -> Handled {
        let source = match request_source(request) {
            Ok(s) => s,
            Err(e) => return self.error(id, &e),
        };
        // Per-request budget overrides fold into the cache key: an
        // artifact compiled under a tighter budget may be degraded, so it
        // must not alias an unbudgeted compile of the same bytes.
        let max_rounds = request
            .get("config")
            .and_then(|c| c.get("max_rounds"))
            .and_then(Json::as_i64)
            .map(|n| n.max(0) as u64)
            .or(self.config.max_rounds);
        let deadline_ms = request
            .get("config")
            .and_then(|c| c.get("deadline_ms"))
            .and_then(Json::as_i64)
            .map(|n| n.max(0) as u64)
            .or(self.config.deadline_ms);
        let key = CacheKey::whole_program(
            &source,
            config_fingerprint(&self.ladder, max_rounds, deadline_ms),
        );

        let (artifact, cache_state) = match self.cache.get(&key) {
            Some(hit) => (hit, "hit"),
            None => match self.compile_fresh(&source, &id, max_rounds, deadline_ms) {
                Ok(built) => (self.cache.insert(key, built), "miss"),
                Err(e) => return self.error(id, &e),
            },
        };

        let payload = if op == "run" {
            let (result, execute) = {
                let _s = trace::span_with("serve.execute", vec![kv("request_id", id_label(&id))]);
                time_once(|| oi_vm::run(&artifact.outcome.optimized.program, &Default::default()))
            };
            self.metrics.observe_ns("serve.execute_ns", execute.median);
            match result {
                Ok(r) => run_payload(&r, &artifact.outcome),
                Err(e) => return self.error(id, &format!("runtime error: {e}")),
            }
        } else {
            Json::obj(vec![
                ("schema", "oic.report.v1".into()),
                ("tier", artifact.outcome.tier_name().into()),
                ("report", artifact.outcome.optimized.report.to_json()),
            ])
        };
        Handled {
            response: self.envelope(id, op, cache_state, payload),
            shutdown: false,
        }
    }

    /// A cold compile: parse + ladder, with per-stage latency recorded.
    /// Stage histograms only see cold compiles — a hit does no parse or
    /// analyze work, and zero-padding them would bury the real latencies.
    fn compile_fresh(
        &self,
        source: &str,
        id: &Json,
        max_rounds: Option<u64>,
        deadline_ms: Option<u64>,
    ) -> Result<Artifact, String> {
        let (parsed, parse) = {
            let _s = trace::span_with("serve.parse", vec![kv("request_id", id_label(id))]);
            time_once(|| oi_ir::lower::compile(source))
        };
        self.metrics.observe_ns("serve.parse_ns", parse.median);
        let program = parsed.map_err(|e| format!("compile error: {}", e.render(source)))?;

        let mut budget = Budget::unlimited();
        if let Some(rounds) = max_rounds {
            budget = budget.with_rounds(rounds);
        }
        if let Some(ms) = deadline_ms {
            budget = budget.with_deadline(Duration::from_millis(ms));
        }
        // The analyze share of the ladder comes from the tracer's phase
        // aggregation (the pipeline's own `pipeline.analyze` spans), so
        // the histogram agrees with `--json` phase tables to the µs.
        let analyze_before = analyze_total_us();
        let (outcome, optimize) = {
            let _s = trace::span_with("serve.optimize", vec![kv("request_id", id_label(id))]);
            time_once(|| optimize_with_ladder(&program, &self.ladder, &budget))
        };
        self.metrics
            .observe_ns("serve.optimize_ns", optimize.median);
        self.metrics.observe_ns(
            "serve.analyze_ns",
            (analyze_total_us() - analyze_before) * 1_000,
        );
        self.metrics
            .add(&format!("serve.tier.{}", outcome.tier_name()), 1);
        if outcome.optimized.report.degraded {
            self.metrics.add("serve.degraded", 1);
        }
        Ok(Artifact::new(outcome))
    }

    fn envelope(&self, id: Json, op: &str, cache: &str, payload: Json) -> Json {
        Json::obj(vec![
            ("schema", "oi.serve.v1".into()),
            ("id", id),
            ("ok", true.into()),
            ("op", op.into()),
            ("cache", cache.into()),
            ("wall_us", 0u64.into()), // patched by handle_line
            ("payload", payload),
        ])
    }

    fn error(&self, id: Json, message: &str) -> Handled {
        Handled {
            response: Json::obj(vec![
                ("schema", "oi.serve.v1".into()),
                ("id", id),
                ("ok", false.into()),
                ("error", message.into()),
            ]),
            shutdown: false,
        }
    }

    /// Mirrors the cache's own counters into the registry so one
    /// `oi.metrics.v1` document carries the whole service state.
    fn mirror_cache_stats(&self) {
        let stats = self.cache.stats();
        self.metrics.set_counter("cache.hits", stats.hits);
        self.metrics.set_counter("cache.misses", stats.misses);
        self.metrics.set_counter("cache.evictions", stats.evictions);
        self.metrics
            .set_counter("cache.insertions", stats.insertions);
        self.metrics.gauge_set("cache.bytes", stats.bytes as i64);
        self.metrics
            .gauge_set("cache.entries", stats.entries as i64);
        self.metrics
            .gauge_set("cache.max_bytes", stats.max_bytes as i64);
    }

    /// Records the end-to-end service latency of one already-handled
    /// request (split by cache outcome). Kept separate from
    /// [`Server::handle_line`] so the total includes response
    /// serialization when the caller wants it to.
    pub fn observe_total(&self, cache_state: &str, ns: u128) {
        self.metrics.observe_ns("serve.total_ns", ns);
        match cache_state {
            "hit" => self.metrics.observe_ns("serve.hit_ns", ns),
            "miss" => self.metrics.observe_ns("serve.miss_ns", ns),
            _ => {}
        }
    }
}

/// The `pipeline.analyze` phase total (µs) aggregated by the installed
/// tracer, or zero when no tracer is installed.
fn analyze_total_us() -> u128 {
    trace::current().map_or(0, |t| {
        t.phase_profile()
            .iter()
            .find(|(name, _)| name == "pipeline.analyze")
            .map_or(0, |(_, st)| u128::from(st.total_us))
    })
}

/// Extracts the request's source text: inline `source` wins, else `path`
/// is read from disk.
fn request_source(request: &Json) -> Result<String, String> {
    if let Some(source) = request.get("source").and_then(Json::as_str) {
        return Ok(source.to_string());
    }
    match request.get("path").and_then(Json::as_str) {
        Some(path) => std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}")),
        None => Err("request needs `source` or `path`".to_string()),
    }
}

/// A human-readable request id for trace span fields (string ids stay
/// bare, everything else renders as compact JSON).
fn id_label(id: &Json) -> String {
    match id.as_str() {
        Some(s) => s.to_string(),
        None => id.to_string(),
    }
}

/// The `oic.run.v1`-shaped payload of a served `run` request.
fn run_payload(result: &oi_vm::RunResult, outcome: &oi_core::ladder::LadderOutcome) -> Json {
    Json::obj(vec![
        ("schema", "oic.run.v1".into()),
        ("pipeline", "inline".into()),
        ("output", result.output.clone().into()),
        ("metrics", result.metrics.to_json()),
        (
            "allocation_census",
            Json::Arr(
                result
                    .allocation_census
                    .iter()
                    .map(|(class, n)| {
                        Json::obj(vec![
                            ("class", class.clone().into()),
                            ("count", (*n).into()),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("heap_census", result.heap_census.to_json()),
        ("report", outcome.optimized.report.to_json()),
    ])
}

const USAGE: &str = "usage: oic serve [--cache-bytes N] [--max-rounds N] [--deadline-ms N] \
     [--metrics-out FILE] [--trace[=MODE]]\n\
     \n\
     Long-lived compile server: one JSON request per stdin line, one JSON\n\
     response per stdout line (`oi.serve.v1`). Ops: compile (default), run,\n\
     stats, shutdown. Compiles are cached content-addressed under an LRU\n\
     byte budget (--cache-bytes, default 64 MiB).";

fn usage_error(msg: &str) -> u8 {
    eprintln!("oic serve: {msg}\n\n{USAGE}");
    2
}

/// Entry point for `oic serve`: parses flags, then pumps the JSON-lines
/// protocol until `shutdown` or EOF. Returns the process exit code.
pub fn cli_main(args: &[String]) -> u8 {
    let mut config = ServeConfig::default();
    let mut trace_flag: Option<TraceMode> = None;
    let mut scanner = ArgScanner::new(args.to_vec());
    while let Some(arg) = scanner.next() {
        let arg = match arg {
            Ok(a) => a,
            Err(e) => return usage_error(&e),
        };
        match arg {
            Arg::Flag { name, value: None } => match name.as_str() {
                "cache-bytes" => match flag_u64(&mut scanner, "--cache-bytes") {
                    Ok(n) => config.cache_bytes = n as usize,
                    Err(e) => return usage_error(&e),
                },
                "max-rounds" => match flag_u64(&mut scanner, "--max-rounds") {
                    Ok(n) => config.max_rounds = Some(n),
                    Err(e) => return usage_error(&e),
                },
                "deadline-ms" => match flag_u64(&mut scanner, "--deadline-ms") {
                    Ok(n) => config.deadline_ms = Some(n),
                    Err(e) => return usage_error(&e),
                },
                "metrics-out" => match scanner.value_for("--metrics-out") {
                    Ok(path) if !path.is_empty() => config.metrics_out = Some(path),
                    _ => return usage_error("`--metrics-out` needs a file path"),
                },
                "trace" => trace_flag = Some(TraceMode::Text),
                _ => return usage_error(&format!("unknown flag `--{name}`")),
            },
            Arg::Flag {
                name,
                value: Some(mode),
            } if name == "trace" => match TraceMode::parse(&mode) {
                Some(m) => trace_flag = Some(m),
                None => {
                    return usage_error(&format!(
                        "unknown trace mode `{mode}` (expected text, json, or off)"
                    ))
                }
            },
            Arg::Flag {
                name,
                value: Some(value),
            } => return usage_error(&format!("unknown flag `--{name}={value}`")),
            Arg::Positional(p) => {
                return usage_error(&format!("unexpected positional argument `{p}`"))
            }
        }
    }

    let mode = trace_flag.unwrap_or_else(TraceMode::from_env);
    let tracer = Rc::new(Tracer::for_mode(mode));
    let _guard = trace::install(tracer);

    let server = Server::new(config);
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(e) => {
                eprintln!("oic serve: stdin error: {e}");
                return 1;
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        let (handled, wall) = time_once(|| server.handle_line(&line));
        let cache_state = handled
            .response
            .get("cache")
            .and_then(Json::as_str)
            .unwrap_or("none")
            .to_string();
        server.observe_total(&cache_state, wall.median);
        if writeln!(out, "{}", handled.response)
            .and_then(|()| out.flush())
            .is_err()
        {
            // Client hung up; there is no one left to serve.
            return 0;
        }
        if handled.shutdown {
            break;
        }
    }
    0
}

/// Parses the positive-integer value of `flag`.
fn flag_u64(scanner: &mut ArgScanner, flag: &str) -> Result<u64, String> {
    let v = scanner.value_for(flag).unwrap_or_default();
    match v.parse::<u64>() {
        Ok(n) if n > 0 => Ok(n),
        _ => Err(format!("`{flag}` needs a positive integer, got `{v}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oi_support::trace::{EventKind, MemorySink};

    const SOURCE: &str = "
        global KEEP;
        class Point { field x; field y;
          method init(a, b) { self.x = a; self.y = b; }
        }
        class Rect { field ll; field ur;
          method init(a, b) { self.ll = new Point(a, a + 1); self.ur = new Point(b, b + 3); }
          method span() { return self.ur.x - self.ll.x + self.ur.y - self.ll.y; }
        }
        fn main() {
          var r = new Rect(1, 10);
          KEEP = r;
          print KEEP.span();
        }";

    fn request(id: u64, op: &str, source: Option<&str>) -> String {
        let mut fields = vec![("id", Json::from(id)), ("op", op.into())];
        if let Some(s) = source {
            fields.push(("source", s.into()));
        }
        Json::obj(fields).to_string()
    }

    #[test]
    fn repeated_compile_hits_the_cache() {
        let server = Server::new(ServeConfig::default());
        let first = server.handle_line(&request(1, "compile", Some(SOURCE)));
        let second = server.handle_line(&request(2, "compile", Some(SOURCE)));
        for (handled, expected) in [(&first, "miss"), (&second, "hit")] {
            let r = &handled.response;
            assert_eq!(r.get("schema").and_then(Json::as_str), Some("oi.serve.v1"));
            assert_eq!(r.get("ok").and_then(Json::as_bool), Some(true));
            assert_eq!(r.get("cache").and_then(Json::as_str), Some(expected));
            assert!(!handled.shutdown);
            let payload = r.get("payload").expect("payload");
            assert_eq!(
                payload.get("schema").and_then(Json::as_str),
                Some("oic.report.v1")
            );
            assert_eq!(
                payload.get("tier").and_then(Json::as_str),
                Some("guarded-full")
            );
        }
        assert_eq!(first.response.get("id").and_then(Json::as_i64), Some(1));
        assert_eq!(server.cache().stats().hits, 1);
    }

    #[test]
    fn run_op_executes_and_reports() {
        let server = Server::new(ServeConfig::default());
        let handled = server.handle_line(&request(7, "run", Some(SOURCE)));
        let payload = handled.response.get("payload").expect("payload");
        assert_eq!(
            payload.get("schema").and_then(Json::as_str),
            Some("oic.run.v1")
        );
        assert_eq!(payload.get("output").and_then(Json::as_str), Some("20\n"));
        assert!(payload.get("metrics").is_some());
        assert!(payload.get("report").is_some());
        // A second run hits the artifact cache but still executes.
        let again = server.handle_line(&request(8, "run", Some(SOURCE)));
        assert_eq!(
            again.response.get("cache").and_then(Json::as_str),
            Some("hit")
        );
        assert_eq!(
            again
                .response
                .get("payload")
                .and_then(|p| p.get("output"))
                .and_then(Json::as_str),
            Some("20\n")
        );
    }

    #[test]
    fn stats_op_returns_reconciled_metrics() {
        let server = Server::new(ServeConfig::default());
        server.handle_line(&request(1, "compile", Some(SOURCE)));
        server.handle_line(&request(2, "compile", Some(SOURCE)));
        let handled = server.handle_line(&request(3, "stats", None));
        let payload = handled.response.get("payload").expect("payload");
        assert_eq!(
            payload.get("schema").and_then(Json::as_str),
            Some("oi.metrics.v1")
        );
        let counter = |name: &str| {
            payload
                .get("counters")
                .and_then(|c| c.get(name))
                .and_then(Json::as_i64)
        };
        assert_eq!(counter("serve.requests"), Some(3));
        assert_eq!(counter("cache.hits"), Some(1));
        assert_eq!(counter("cache.misses"), Some(1));
        assert_eq!(counter("serve.tier.guarded-full"), Some(1));
        assert_eq!(counter("serve.errors").unwrap_or(0), 0);
        assert_eq!(server.metrics().gauge("serve.in_flight"), 0);
    }

    #[test]
    fn failure_modes_are_ok_false_responses() {
        let server = Server::new(ServeConfig::default());
        let bad_json = server.handle_line("{not json");
        assert_eq!(
            bad_json.response.get("ok").and_then(Json::as_bool),
            Some(false)
        );
        let no_source = server.handle_line(&request(1, "compile", None));
        assert!(no_source
            .response
            .get("error")
            .and_then(Json::as_str)
            .unwrap()
            .contains("source"));
        let bad_op = server.handle_line(&request(2, "launder", None));
        assert!(bad_op
            .response
            .get("error")
            .and_then(Json::as_str)
            .unwrap()
            .contains("unknown op"));
        let bad_program = server.handle_line(&request(3, "compile", Some("fn main( {")));
        assert_eq!(
            bad_program.response.get("ok").and_then(Json::as_bool),
            Some(false)
        );
        assert_eq!(server.metrics().counter("serve.errors"), 4);
        assert_eq!(server.metrics().counter("serve.requests"), 4);
        assert_eq!(server.metrics().gauge("serve.in_flight"), 0);
    }

    #[test]
    fn shutdown_sets_the_flag() {
        let server = Server::new(ServeConfig::default());
        let handled = server.handle_line(&request(9, "shutdown", None));
        assert!(handled.shutdown);
        assert_eq!(
            handled.response.get("ok").and_then(Json::as_bool),
            Some(true)
        );
    }

    #[test]
    fn per_request_budget_config_changes_the_cache_key() {
        let server = Server::new(ServeConfig::default());
        server.handle_line(&request(1, "compile", Some(SOURCE)));
        let budgeted = format!(
            "{}",
            Json::obj(vec![
                ("id", 2u64.into()),
                ("op", "compile".into()),
                ("source", SOURCE.into()),
                ("config", Json::obj(vec![("max_rounds", 64u64.into())])),
            ])
        );
        let handled = server.handle_line(&budgeted);
        assert_eq!(
            handled.response.get("cache").and_then(Json::as_str),
            Some("miss"),
            "a budget override must not alias the unbudgeted artifact"
        );
    }

    #[test]
    fn request_id_is_stamped_on_served_spans() {
        let sink = Rc::new(MemorySink::default());
        let tracer = Rc::new(Tracer::new(vec![sink.clone()]));
        let _guard = trace::install(tracer);
        let server = Server::new(ServeConfig::default());
        server.handle_line(&request(42, "compile", Some(SOURCE)));
        let events = sink.snapshot();
        let span_with_id = |name: &str| {
            events.iter().any(|e| {
                e.kind == EventKind::SpanStart
                    && e.name == name
                    && e.fields
                        .iter()
                        .any(|(k, v)| k == "request_id" && v.as_str() == Some("42"))
            })
        };
        assert!(span_with_id("serve.request"), "request span carries the id");
        assert!(span_with_id("serve.parse"), "parse span carries the id");
        assert!(
            span_with_id("serve.optimize"),
            "optimize span carries the id"
        );
    }

    #[test]
    fn metrics_out_dumps_after_every_request() {
        let dir = std::env::temp_dir().join("oi-serve-test-metrics");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("metrics.json");
        let server = Server::new(ServeConfig {
            metrics_out: Some(path.to_string_lossy().into_owned()),
            ..ServeConfig::default()
        });
        server.handle_line(&request(1, "compile", Some(SOURCE)));
        let dumped = std::fs::read_to_string(&path).expect("metrics dump exists");
        let doc = Json::parse(dumped.trim()).expect("dump parses");
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some("oi.metrics.v1")
        );
        let _ = std::fs::remove_file(&path);
    }
}
