//! `oic bench tenantload` — the multi-tenant metering gate.
//!
//! The harness submits a seeded, Zipf-skewed burst of thousands of small
//! programs across hundreds of tenants to a [`crate::sched::Scheduler`]
//! and drives it with a pool of workers. A configurable head of the Zipf
//! distribution is *rigged*: those tenants run a large program under a
//! deliberately tight instruction quota, so every one of their jobs must
//! die with a typed quota kill. The report is a schema-stable
//! `oi.tenantload.v1` document embedding the scheduler's own
//! `oi.tenant.v1` metering report, and it carries its own verdict (`ok`)
//! so ci.sh can gate on it:
//!
//! - **no panics** and no runtime errors anywhere in the run,
//! - **no cross-tenant kills**: every quota kill lands on a rigged
//!   tenant, every well-behaved tenant finishes all of its jobs,
//! - **exact fuel reconciliation**: the scheduler's per-slice fuel tally
//!   matches the VM's own instruction counters for every tenant,
//! - **no sheds or rejections**: the burst is sized to the scheduler's
//!   admission bounds, so nothing may be dropped,
//! - **throughput floor**: completed work per wall second stays above
//!   `--min-throughput`,
//! - **fairness (max-starvation) bound**: every tenant's first
//!   completion lands within `own_jobs * slice_bound * tenants + slack`
//!   global slice ticks — a loose upper bound for heavy tenants but a
//!   tight one for light tenants, which is exactly where hog-induced
//!   starvation would show.
//!
//! Everything is deterministic modulo worker interleaving: the tenant
//! draw is seeded, programs are lowered once and shared via
//! [`ProgramRef`], and the fairness clock is the scheduler's global
//! slice counter, not wall time.

use crate::sched::{JobSpec, ProgramRef, SchedConfig, Scheduler, TenantQuota, TenantSummary};
use oi_ir::Program;
use oi_support::cli::{Arg, ArgScanner};
use oi_support::rng::XorShift64;
use oi_support::Json;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Instant;

use crate::loadgen::ZipfSampler;

/// Tenantload knobs (flags of `oic bench tenantload`).
#[derive(Clone, Debug)]
pub struct TenantloadConfig {
    /// Jobs to submit.
    pub requests: u64,
    /// Distinct tenants the Zipf draw spreads jobs over.
    pub tenants: u64,
    /// Rigged quota-busting tenants at the head of the Zipf draw.
    pub hogs: u64,
    /// Worker threads driving the scheduler.
    pub workers: usize,
    /// Instructions per fuel slice.
    pub fuel_slice: u64,
    /// PRNG seed for the tenant draw.
    pub seed: u64,
    /// Zipf skew exponent over tenant ranks.
    pub zipf_s: f64,
    /// Throughput gate floor, in finished jobs per wall second.
    pub min_throughput: f64,
}

impl Default for TenantloadConfig {
    fn default() -> Self {
        TenantloadConfig {
            requests: 10_000,
            tenants: 200,
            hogs: 4,
            workers: 4,
            fuel_slice: 1_000,
            seed: 1,
            zipf_s: 1.0,
            min_throughput: 50.0,
        }
    }
}

/// Iteration counts of the well-behaved program templates: small enough
/// that a 10k-job burst finishes in seconds, varied enough that tenants
/// need different slice counts.
const TEMPLATES: usize = 16;

fn template_iters(i: usize) -> u64 {
    120 + (i as u64 * 37) % 280
}

/// Instructions a rigged job may spend before its quota kills it. Less
/// than one fuel slice, so every hog job dies on its first slice and the
/// rigged head stays cheap no matter how many jobs land on it.
const HOG_INSTRUCTION_QUOTA: u64 = 500;

fn loop_source(iters: u64) -> String {
    format!(
        "fn main() {{ var i = 0; var acc = 0; while (i < {iters}) \
         {{ acc = acc + i; i = i + 1; }} print acc; }}"
    )
}

/// Lowers one bounded-loop program. The ladder is deliberately skipped:
/// its firewall runs programs empirically, and this gate measures the
/// scheduler, not the optimizer.
fn lowered(iters: u64) -> Arc<Program> {
    Arc::new(oi_ir::lower::compile(&loop_source(iters)).expect("template compiles"))
}

/// Per-tenant gate outcome embedded in the report.
#[derive(Clone, Debug)]
struct TenantVerdict {
    summary: TenantSummary,
    hog: bool,
    first_done_bound: u64,
}

impl TenantVerdict {
    /// A rigged tenant passes when every job died with a typed
    /// instruction-quota kill; a well-behaved tenant passes when every
    /// job completed untouched by any quota.
    fn clean(&self) -> bool {
        let s = &self.summary;
        let typed_ok = if self.hog {
            s.completed == 0
                && s.quota_kills.instructions == s.submitted
                && s.quota_kills.total() == s.submitted
        } else {
            s.completed == s.submitted && s.quota_kills.total() == 0
        };
        typed_ok && s.panicked == 0 && s.runtime_errors == 0 && s.shed == 0 && s.reconciled()
    }

    fn starved(&self) -> bool {
        match self.summary.first_done_tick {
            Some(t) => t > self.first_done_bound,
            None => self.summary.submitted > 0,
        }
    }
}

/// The gate's outcome — everything `oi.tenantload.v1` carries.
#[derive(Clone, Debug)]
pub struct TenantloadReport {
    /// The configuration driven.
    pub config: TenantloadConfig,
    /// Jobs accepted by the scheduler (must equal `requests`).
    pub submitted: u64,
    /// Typed admission rejections (gate requires zero).
    pub rejected: u64,
    /// Jobs that ran to completion.
    pub completed: u64,
    /// Typed quota kills, all of which must land on rigged tenants.
    pub quota_kills: u64,
    /// Quota kills that landed on a well-behaved tenant (gate: zero).
    pub cross_tenant_kills: u64,
    /// Contained panics anywhere in the run (gate: zero).
    pub panics: u64,
    /// Guest runtime errors (gate: zero — templates are well-formed).
    pub runtime_errors: u64,
    /// Jobs shed by a drain (gate: zero — nothing drains here).
    pub shed: u64,
    /// Whether every tenant's fuel tally matches its VM counters.
    pub reconciled: bool,
    /// Tenants whose first completion exceeded the starvation bound.
    pub starved_tenants: u64,
    /// Worst observed `first_done_tick / bound` ratio across tenants.
    pub max_starvation: f64,
    /// Execution wall time (submission excluded), milliseconds.
    pub elapsed_ms: u64,
    /// Finished jobs (completed + killed) per wall second.
    pub throughput: f64,
    /// The scheduler's embedded `oi.tenant.v1` report.
    pub tenant_report: Json,
    /// The gate verdict (see module docs).
    pub ok: bool,
}

impl TenantloadReport {
    /// The report as a schema-stable `oi.tenantload.v1` document.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("schema", "oi.tenantload.v1".into()),
            ("requests", self.config.requests.into()),
            ("tenants", self.config.tenants.into()),
            ("hogs", self.config.hogs.into()),
            ("workers", (self.config.workers as u64).into()),
            ("fuel_slice", self.config.fuel_slice.into()),
            ("seed", self.config.seed.into()),
            ("zipf_s", self.config.zipf_s.into()),
            ("min_throughput", self.config.min_throughput.into()),
            ("submitted", self.submitted.into()),
            ("rejected", self.rejected.into()),
            ("completed", self.completed.into()),
            ("quota_kills", self.quota_kills.into()),
            ("cross_tenant_kills", self.cross_tenant_kills.into()),
            ("panics", self.panics.into()),
            ("runtime_errors", self.runtime_errors.into()),
            ("shed", self.shed.into()),
            ("reconciled", self.reconciled.into()),
            ("starved_tenants", self.starved_tenants.into()),
            ("max_starvation", self.max_starvation.into()),
            ("elapsed_ms", self.elapsed_ms.into()),
            ("throughput", self.throughput.into()),
            ("tenant_report", self.tenant_report.clone()),
            ("ok", self.ok.into()),
        ])
    }
}

/// Drives the configured burst against a fresh scheduler and returns the
/// full report.
pub fn run_tenantload(config: &TenantloadConfig) -> TenantloadReport {
    let templates: Vec<Arc<Program>> = (0..TEMPLATES).map(|i| lowered(template_iters(i))).collect();
    let hog_program = lowered(50_000);
    let sampler = ZipfSampler::new(config.tenants.max(1), config.zipf_s);
    let mut rng = XorShift64::new(config.seed);

    // Completion delivery is best-effort and everything the gate needs
    // is in the scheduler's own accounting; drop the receiver.
    let (tx, rx) = mpsc::channel();
    drop(rx);
    let sched = Scheduler::new(
        SchedConfig {
            fuel_slice: config.fuel_slice.max(1),
            max_queue: config.requests.max(1) as usize,
        },
        tx,
    );

    let normal_quota = TenantQuota {
        max_concurrent: config.requests.max(1) as usize,
        ..TenantQuota::default()
    };
    let hog_quota = TenantQuota {
        max_instructions: HOG_INSTRUCTION_QUOTA,
        ..normal_quota.clone()
    };

    let mut rejected = 0u64;
    let mut hog_jobs = 0u64;
    for i in 0..config.requests {
        let rank = sampler.sample(&mut rng);
        let hog = rank < config.hogs;
        let spec = JobSpec {
            tenant: format!("t{rank:05}"),
            program: ProgramRef::Bare(if hog {
                hog_jobs += 1;
                Arc::clone(&hog_program)
            } else {
                Arc::clone(&templates[(i as usize) % TEMPLATES])
            }),
            quota: if hog {
                hog_quota.clone()
            } else {
                normal_quota.clone()
            },
            fault: None,
        };
        if sched.submit(spec).is_err() {
            rejected += 1;
        }
    }

    // Everything is queued before the first slice runs, so the global
    // slice counter is a clean fairness clock: every tenant is in the
    // rotation from tick zero.
    sched.close();
    let started = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..config.workers.max(1) {
            scope.spawn(|| sched.worker_loop());
        }
    });
    let elapsed = started.elapsed();

    // Upper bound on the fuel slices one template job can need: the
    // largest template, a generous instructions-per-iteration allowance,
    // plus setup/teardown slices.
    let max_iters = (0..TEMPLATES).map(template_iters).max().unwrap_or(0);
    let slice_bound = (max_iters * 16) / config.fuel_slice.max(1) + 4;
    let slack = config.tenants * 4 + 512;

    let verdicts: Vec<TenantVerdict> = sched
        .tenant_summaries()
        .into_iter()
        .map(|summary| {
            let hog = summary
                .tenant
                .strip_prefix('t')
                .and_then(|r| r.parse::<u64>().ok())
                .is_some_and(|rank| rank < config.hogs);
            let bound = summary.submitted.max(1) * slice_bound * config.tenants.max(1) + slack;
            TenantVerdict {
                summary,
                hog,
                first_done_bound: bound,
            }
        })
        .collect();

    let sum =
        |f: &dyn Fn(&TenantSummary) -> u64| -> u64 { verdicts.iter().map(|v| f(&v.summary)).sum() };
    let submitted = sum(&|s| s.submitted);
    let completed = sum(&|s| s.completed);
    let quota_kills = sum(&|s| s.quota_kills.total());
    let panics = sum(&|s| s.panicked);
    let runtime_errors = sum(&|s| s.runtime_errors);
    let shed = sum(&|s| s.shed);
    let cross_tenant_kills = verdicts
        .iter()
        .filter(|v| !v.hog)
        .map(|v| v.summary.quota_kills.total())
        .sum::<u64>();
    let reconciled = verdicts.iter().all(|v| v.summary.reconciled());
    let starved_tenants = verdicts.iter().filter(|v| v.starved()).count() as u64;
    let max_starvation = verdicts
        .iter()
        .filter_map(|v| {
            v.summary
                .first_done_tick
                .map(|t| t as f64 / v.first_done_bound as f64)
        })
        .fold(0.0, f64::max);
    let finished = completed + quota_kills;
    let secs = elapsed.as_secs_f64().max(1e-9);
    let throughput = finished as f64 / secs;

    let clean = verdicts.iter().all(TenantVerdict::clean);
    let ok = rejected == 0
        && submitted == config.requests
        && panics == 0
        && runtime_errors == 0
        && shed == 0
        && cross_tenant_kills == 0
        && clean
        && reconciled
        && starved_tenants == 0
        && hog_jobs == quota_kills
        && throughput >= config.min_throughput;

    TenantloadReport {
        config: config.clone(),
        submitted,
        rejected,
        completed,
        quota_kills,
        cross_tenant_kills,
        panics,
        runtime_errors,
        shed,
        reconciled,
        starved_tenants,
        max_starvation,
        elapsed_ms: elapsed.as_millis().min(u128::from(u64::MAX)) as u64,
        throughput,
        tenant_report: sched.report_json(),
        ok,
    }
}

/// Runs `oic bench tenantload` on pre-split arguments and returns the
/// process exit code.
pub fn cli_main(args: &[String]) -> u8 {
    let mut config = TenantloadConfig::default();
    let mut json = false;
    let mut out: Option<String> = None;
    let mut scanner = ArgScanner::new(args.to_vec());
    while let Some(arg) = scanner.next() {
        let arg = match arg {
            Ok(a) => a,
            Err(e) => return usage_error(&e),
        };
        match arg {
            Arg::Flag { name, value: None } => match name.as_str() {
                "json" => json = true,
                "requests" => match flag_u64(&mut scanner, "--requests") {
                    Ok(n) => config.requests = n,
                    Err(e) => return usage_error(&e),
                },
                "tenants" => match flag_u64(&mut scanner, "--tenants") {
                    Ok(n) => config.tenants = n,
                    Err(e) => return usage_error(&e),
                },
                "hogs" => match flag_u64(&mut scanner, "--hogs") {
                    Ok(n) => config.hogs = n,
                    Err(e) => return usage_error(&e),
                },
                "workers" => match flag_u64(&mut scanner, "--workers") {
                    Ok(n) => config.workers = n as usize,
                    Err(e) => return usage_error(&e),
                },
                "fuel-slice" => match flag_u64(&mut scanner, "--fuel-slice") {
                    Ok(n) => config.fuel_slice = n,
                    Err(e) => return usage_error(&e),
                },
                "seed" => match flag_u64(&mut scanner, "--seed") {
                    Ok(n) => config.seed = n,
                    Err(e) => return usage_error(&e),
                },
                "zipf-s" => {
                    let v = scanner.value_for("--zipf-s").unwrap_or_default();
                    match v.parse::<f64>() {
                        Ok(s) if s.is_finite() && s >= 0.0 => config.zipf_s = s,
                        _ => {
                            return usage_error(&format!(
                                "`--zipf-s` needs a non-negative number, got `{v}`"
                            ))
                        }
                    }
                }
                "min-throughput" => {
                    let v = scanner.value_for("--min-throughput").unwrap_or_default();
                    match v.parse::<f64>() {
                        Ok(t) if t.is_finite() && t >= 0.0 => config.min_throughput = t,
                        _ => {
                            return usage_error(&format!(
                                "`--min-throughput` needs a non-negative number, got `{v}`"
                            ))
                        }
                    }
                }
                "out" => match scanner.value_for("--out") {
                    Ok(path) if !path.is_empty() => out = Some(path),
                    _ => return usage_error("`--out` needs a file path"),
                },
                _ => return usage_error(&format!("unknown flag `--{name}`")),
            },
            Arg::Flag {
                name,
                value: Some(value),
            } => return usage_error(&format!("unknown flag `--{name}={value}`")),
            Arg::Positional(p) => {
                return usage_error(&format!("unexpected positional argument `{p}`"))
            }
        }
    }
    if config.hogs >= config.tenants {
        return usage_error("`--hogs` must be below `--tenants`");
    }

    let report = run_tenantload(&config);
    let doc = report.to_json();
    if let Some(path) = &out {
        if let Err(e) = std::fs::write(path, format!("{doc}\n")) {
            eprintln!("oic bench tenantload: cannot write {path}: {e}");
            return 1;
        }
    }
    if json {
        println!("{doc}");
    } else {
        println!(
            "tenantload: {} jobs over {} tenants ({} rigged, seed {}, zipf {}): \
             {} completed / {} quota-killed / {} panics / {} rejected",
            report.config.requests,
            report.config.tenants,
            report.config.hogs,
            report.config.seed,
            report.config.zipf_s,
            report.completed,
            report.quota_kills,
            report.panics,
            report.rejected,
        );
        println!(
            "  {} ms, {:.0} jobs/s (floor {:.0}); reconciled: {}; \
             cross-tenant kills: {}; starved tenants: {} (worst {:.3} of bound)",
            report.elapsed_ms,
            report.throughput,
            report.config.min_throughput,
            report.reconciled,
            report.cross_tenant_kills,
            report.starved_tenants,
            report.max_starvation,
        );
        println!("  gate: {}", if report.ok { "ok" } else { "FAILED" });
    }
    if report.ok {
        0
    } else {
        eprintln!("oic bench tenantload: gate failed (see report)");
        1
    }
}

fn usage_error(msg: &str) -> u8 {
    eprintln!("{msg}");
    2
}

/// Parses the positive-integer value of `flag`.
fn flag_u64(scanner: &mut ArgScanner, flag: &str) -> Result<u64, String> {
    let v = scanner.value_for(flag).unwrap_or_default();
    match v.parse::<u64>() {
        Ok(n) if n > 0 => Ok(n),
        _ => Err(format!("`{flag}` needs a positive integer, got `{v}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> TenantloadConfig {
        TenantloadConfig {
            requests: 300,
            tenants: 20,
            hogs: 3,
            workers: 4,
            min_throughput: 1.0,
            ..TenantloadConfig::default()
        }
    }

    #[test]
    fn gate_passes_on_a_small_skewed_burst() {
        let report = run_tenantload(&small());
        assert!(report.ok, "gate failed: {}", report.to_json());
        assert_eq!(report.submitted, 300);
        assert_eq!(report.rejected, 0);
        assert_eq!(report.panics, 0);
        assert_eq!(report.cross_tenant_kills, 0);
        assert_eq!(report.starved_tenants, 0);
        assert!(
            report.quota_kills > 0,
            "the rigged Zipf head must actually draw jobs"
        );
        assert_eq!(report.completed + report.quota_kills, 300);
        assert!(report.reconciled);
    }

    #[test]
    fn report_is_schema_stable_and_embeds_tenant_report() {
        let report = run_tenantload(&TenantloadConfig {
            requests: 60,
            tenants: 8,
            hogs: 1,
            workers: 2,
            min_throughput: 1.0,
            ..TenantloadConfig::default()
        });
        let doc = report.to_json();
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some("oi.tenantload.v1")
        );
        assert_eq!(
            doc.get("tenant_report")
                .and_then(|t| t.get("schema"))
                .and_then(Json::as_str),
            Some("oi.tenant.v1")
        );
        assert_eq!(
            doc.get("tenant_report")
                .and_then(|t| t.get("reconciled"))
                .and_then(Json::as_bool),
            Some(true)
        );
        assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(report.ok));
    }

    #[test]
    fn identical_seeds_draw_identical_tenant_mixes() {
        let a = run_tenantload(&small());
        let b = run_tenantload(&small());
        assert_eq!(a.submitted, b.submitted);
        assert_eq!(a.quota_kills, b.quota_kills);
        assert_eq!(a.completed, b.completed);
    }
}
