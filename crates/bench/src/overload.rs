//! Overload-control primitives for the compile service: the brownout
//! feedback controller, the per-fingerprint circuit breaker backing the
//! worker watchdog, and the client-side retry policy.
//!
//! The serve loop (`crate::serve`) owns the wiring — queue-wait sampling,
//! metrics export, watchdog supervision — while this module owns the three
//! *decisions*:
//!
//! - [`Brownout`]: when to step the [`BrownoutLevel`] ladder down (service
//!   is drowning) or back up (it recovered), with hysteresis so the tier
//!   never flaps;
//! - [`CircuitBreaker`]: whether a source fingerprint that has repeatedly
//!   wedged a compile worker may be compiled again (closed → open after K
//!   strikes → half-open probe → closed);
//! - [`RetryPolicy`]: how long a well-behaved client waits before
//!   resubmitting a shed request (jittered exponential backoff, capped by
//!   a total retry budget, never earlier than the server's
//!   `retry_after_ms` hint).
//!
//! Everything here is deterministic given its inputs (the retry jitter
//! draws from a caller-seeded [`XorShift64`]), so the chaos matrix and the
//! `brownoutload` gate can replay scenarios exactly.

use oi_core::ladder::BrownoutLevel;
use oi_support::metrics::Window;
use oi_support::rng::XorShift64;
use std::collections::HashMap;
use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Tuning for the [`Brownout`] feedback loop.
#[derive(Clone, Copy, Debug)]
pub struct BrownoutConfig {
    /// The queue-wait p99 the service steers toward (`--brownout-target-ms`).
    pub target_ns: u128,
    /// Minimum time between tier transitions, in either direction. The
    /// dwell is the anti-flap guarantee: however noisy the signal, the
    /// tier changes at most once per dwell.
    pub dwell: Duration,
    /// Samples required in the window before its p99 is trusted.
    pub min_samples: usize,
    /// Sliding-window capacity (recent queue-wait samples).
    pub window: usize,
    /// The serve queue bound; depth near the bound is an *early* descend
    /// trigger (the queue fills faster than waits accumulate).
    pub queue_cap: usize,
}

impl BrownoutConfig {
    /// Defaults for a `target_ms` target: 250ms dwell, 16-sample minimum,
    /// 256-sample window.
    pub fn for_target_ms(target_ms: u64, queue_cap: usize) -> BrownoutConfig {
        BrownoutConfig {
            target_ns: u128::from(target_ms) * 1_000_000,
            dwell: Duration::from_millis(250),
            min_samples: 16,
            window: 256,
            queue_cap: queue_cap.max(1),
        }
    }
}

/// A tier change decided by [`Brownout::note`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Transition {
    /// Stepped one rung deeper (service shedding precision for drain rate).
    Descend(BrownoutLevel),
    /// Stepped one rung shallower (pressure subsided).
    Recover(BrownoutLevel),
}

struct BrownoutState {
    level: BrownoutLevel,
    window: Window,
    last_change: Option<Instant>,
}

/// The brownout feedback controller.
///
/// Feed it one `(queue_depth, queue_wait_ns)` observation per dequeued
/// request; it answers with a [`Transition`] when the tier should change.
///
/// The feedback law (DESIGN §17):
///
/// - **descend** when the windowed queue-wait p99 exceeds the target, or —
///   earlier — when the queue is over ¾ full (depth leads latency);
/// - **recover** when the windowed p99 is under *half* the target **and**
///   the queue is under ¼ full (distinct thresholds: the recover bar is
///   strictly harder than the descend bar, so the controller cannot
///   oscillate on a signal sitting at the boundary);
/// - either way, at most one step per dwell window, and the sample window
///   resets on every transition so the new tier is judged on its own
///   latency, not its predecessor's backlog.
pub struct Brownout {
    config: BrownoutConfig,
    state: Mutex<BrownoutState>,
}

impl Brownout {
    /// A controller starting at `guarded-full`.
    pub fn new(config: BrownoutConfig) -> Brownout {
        Brownout {
            config,
            state: Mutex::new(BrownoutState {
                level: BrownoutLevel::GuardedFull,
                window: Window::new(config.window),
                last_change: None,
            }),
        }
    }

    fn locked(&self) -> std::sync::MutexGuard<'_, BrownoutState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The current brownout level.
    pub fn level(&self) -> BrownoutLevel {
        self.locked().level
    }

    /// Pins the controller to `level` (harness hook: `loadgen` and the
    /// chaos matrix use it to exercise degraded paths deterministically).
    pub fn force(&self, level: BrownoutLevel) {
        let mut s = self.locked();
        s.level = level;
        s.window.clear();
        s.last_change = Some(Instant::now());
    }

    /// Records one dequeue observation and applies the feedback law.
    pub fn note(&self, queue_depth: usize, wait_ns: u128) -> Option<Transition> {
        let mut s = self.locked();
        s.window.record(wait_ns);
        if let Some(at) = s.last_change {
            if at.elapsed() < self.config.dwell {
                return None;
            }
        }
        let p99 = s.window.quantile_ns(99.0);
        let enough = s.window.len() >= self.config.min_samples;
        let queue_pressure = queue_depth.saturating_mul(4) >= self.config.queue_cap * 3;
        let wait_pressure = enough && p99 > self.config.target_ns;
        if queue_pressure || wait_pressure {
            let next = s.level.descend()?;
            s.level = next;
            s.window.clear();
            s.last_change = Some(Instant::now());
            return Some(Transition::Descend(next));
        }
        let calm_wait = enough && p99.saturating_mul(2) < self.config.target_ns;
        let calm_queue = queue_depth.saturating_mul(4) <= self.config.queue_cap;
        if calm_wait && calm_queue {
            let next = s.level.recover()?;
            s.level = next;
            s.window.clear();
            s.last_change = Some(Instant::now());
            return Some(Transition::Recover(next));
        }
        None
    }
}

/// Tuning for the per-fingerprint [`CircuitBreaker`].
#[derive(Clone, Copy, Debug)]
pub struct BreakerConfig {
    /// Watchdog kills of one fingerprint before its circuit opens.
    pub strikes: u32,
    /// How long an open circuit refuses compiles before admitting one
    /// half-open probe.
    pub cooldown: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            strikes: 3,
            cooldown: Duration::from_millis(1_000),
        }
    }
}

enum FpState {
    /// Counting strikes; compiles admitted.
    Closed { strikes: u32 },
    /// Quarantined; compiles refused until the cooldown elapses.
    Open { since: Instant },
    /// One probe compile is in flight; everyone else is refused.
    HalfOpen,
}

/// What the breaker says about compiling a fingerprint right now.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Admission {
    /// Circuit closed: compile normally.
    Allow,
    /// Cooldown elapsed: this caller is the half-open probe. Report the
    /// outcome via [`CircuitBreaker::success`] or [`CircuitBreaker::strike`].
    Probe,
    /// Quarantined: refuse without compiling; retry after the hint.
    Refuse {
        /// Milliseconds until a probe becomes possible.
        retry_after_ms: u64,
    },
}

/// A circuit breaker keyed by source fingerprint.
///
/// A fingerprint whose compile the watchdog has killed `strikes` times is
/// quarantined: further compile requests are refused *without* spending a
/// worker on them. After `cooldown`, exactly one probe is admitted; a
/// clean probe closes the circuit (strikes forgiven), a killed probe
/// re-opens it for another full cooldown.
pub struct CircuitBreaker {
    config: BreakerConfig,
    states: Mutex<HashMap<u64, FpState>>,
}

impl CircuitBreaker {
    /// An all-closed breaker.
    pub fn new(config: BreakerConfig) -> CircuitBreaker {
        CircuitBreaker {
            config,
            states: Mutex::new(HashMap::new()),
        }
    }

    fn locked(&self) -> std::sync::MutexGuard<'_, HashMap<u64, FpState>> {
        self.states.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// May `fp` be compiled right now?
    pub fn admit(&self, fp: u64) -> Admission {
        let mut states = self.locked();
        match states.get(&fp) {
            None | Some(FpState::Closed { .. }) => Admission::Allow,
            Some(FpState::HalfOpen) => Admission::Refuse {
                retry_after_ms: duration_ms(self.config.cooldown).max(1),
            },
            Some(FpState::Open { since }) => {
                let elapsed = since.elapsed();
                if elapsed >= self.config.cooldown {
                    states.insert(fp, FpState::HalfOpen);
                    Admission::Probe
                } else {
                    let remaining = self.config.cooldown - elapsed;
                    Admission::Refuse {
                        retry_after_ms: duration_ms(remaining).max(1),
                    }
                }
            }
        }
    }

    /// Records a watchdog kill of `fp`. Returns `true` when this strike
    /// opened (or re-opened) the circuit.
    pub fn strike(&self, fp: u64) -> bool {
        let mut states = self.locked();
        let opened = match states.get(&fp) {
            None => {
                if self.config.strikes <= 1 {
                    true
                } else {
                    states.insert(fp, FpState::Closed { strikes: 1 });
                    false
                }
            }
            Some(FpState::Closed { strikes }) => {
                let strikes = strikes + 1;
                if strikes >= self.config.strikes {
                    true
                } else {
                    states.insert(fp, FpState::Closed { strikes });
                    false
                }
            }
            // A killed half-open probe re-opens immediately; an already
            // open circuit just restarts its cooldown.
            Some(FpState::HalfOpen) | Some(FpState::Open { .. }) => true,
        };
        if opened {
            states.insert(
                fp,
                FpState::Open {
                    since: Instant::now(),
                },
            );
        }
        opened
    }

    /// Records a clean half-open probe of `fp`, closing the circuit.
    /// Only a probe can close: a success racing a concurrent watchdog
    /// strike (a wedged compile that finally returned) must not erase
    /// the freshly opened state, and pending `Closed` strikes only
    /// expire through the open/half-open cycle.
    pub fn success(&self, fp: u64) {
        let mut states = self.locked();
        if matches!(states.get(&fp), Some(FpState::HalfOpen)) {
            states.remove(&fp);
        }
    }

    /// Fingerprints currently open or probing (the `serve.breaker_open`
    /// gauge).
    pub fn open_count(&self) -> usize {
        self.locked()
            .values()
            .filter(|s| !matches!(s, FpState::Closed { .. }))
            .count()
    }
}

fn duration_ms(d: Duration) -> u64 {
    u64::try_from(d.as_millis()).unwrap_or(u64::MAX)
}

/// Client-side retry tuning (shared by `oic client`, `loadgen --retries`,
/// and `bench brownoutload`).
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Total attempts allowed per request, first try included.
    pub max_attempts: u32,
    /// First backoff step in milliseconds.
    pub base_ms: u64,
    /// Per-step backoff ceiling in milliseconds.
    pub cap_ms: u64,
    /// Total milliseconds a request may spend waiting across all retries.
    pub budget_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 5,
            base_ms: 10,
            cap_ms: 500,
            budget_ms: 5_000,
        }
    }
}

impl RetryPolicy {
    /// A policy allowing `retries` retries after the first attempt.
    pub fn with_retries(retries: u32) -> RetryPolicy {
        RetryPolicy {
            max_attempts: retries.saturating_add(1),
            ..RetryPolicy::default()
        }
    }

    /// The wait before the next attempt, or `None` to give up.
    ///
    /// `attempts_made` counts attempts already answered (≥1);
    /// `server_hint_ms` is the response's `retry_after_ms`; `spent_ms` is
    /// backoff already accumulated for this request. The wait is the
    /// exponential step `base·2^(attempts-1)` (capped), floored at the
    /// server hint, with full jitter in `[d/2, d]` so a shed burst does
    /// not re-arrive as a synchronized thundering herd.
    pub fn backoff_ms(
        &self,
        attempts_made: u32,
        server_hint_ms: Option<u64>,
        spent_ms: u64,
        rng: &mut XorShift64,
    ) -> Option<u64> {
        if attempts_made >= self.max_attempts {
            return None;
        }
        let exp = attempts_made.saturating_sub(1).min(20);
        let step = self
            .base_ms
            .checked_shl(exp)
            .unwrap_or(u64::MAX)
            .min(self.cap_ms);
        let floor = server_hint_ms.unwrap_or(0);
        let d = step.max(floor).max(1);
        let span = usize::try_from(d / 2 + 1).unwrap_or(usize::MAX);
        let jittered = d / 2 + rng.below(span) as u64;
        if spent_ms.saturating_add(jittered) > self.budget_ms {
            return None;
        }
        Some(jittered)
    }
}

/// Per-request retry bookkeeping driven by a [`RetryPolicy`].
pub struct RetrySession {
    policy: RetryPolicy,
    rng: XorShift64,
}

impl RetrySession {
    /// A seeded session (seed drives the jitter only).
    pub fn new(policy: RetryPolicy, seed: u64) -> RetrySession {
        RetrySession {
            policy,
            rng: XorShift64::new(seed),
        }
    }

    /// The policy in force.
    pub fn policy(&self) -> &RetryPolicy {
        &self.policy
    }

    /// See [`RetryPolicy::backoff_ms`].
    pub fn backoff_ms(
        &mut self,
        attempts_made: u32,
        server_hint_ms: Option<u64>,
        spent_ms: u64,
    ) -> Option<u64> {
        self.policy
            .backoff_ms(attempts_made, server_hint_ms, spent_ms, &mut self.rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(target_ms: u64) -> BrownoutConfig {
        BrownoutConfig {
            target_ns: u128::from(target_ms) * 1_000_000,
            dwell: Duration::ZERO,
            min_samples: 4,
            window: 16,
            queue_cap: 16,
        }
    }

    const MS: u128 = 1_000_000;

    #[test]
    fn brownout_descends_on_slow_waits_and_recovers_on_fast_ones() {
        let b = Brownout::new(config(10));
        assert_eq!(b.level(), BrownoutLevel::GuardedFull);
        // Four slow samples (p99 = 50ms > 10ms target) force a descend.
        let mut seen = None;
        for _ in 0..4 {
            seen = b.note(0, 50 * MS).or(seen);
        }
        assert_eq!(
            seen,
            Some(Transition::Descend(BrownoutLevel::ReducedPrecision))
        );
        // The window was cleared: one fast sample is not yet enough.
        assert_eq!(b.note(0, MS / 10), None);
        // Enough fast samples (p99 < target/2) with a calm queue recover.
        let mut seen = None;
        for _ in 0..4 {
            seen = b.note(0, MS / 10).or(seen);
        }
        assert_eq!(seen, Some(Transition::Recover(BrownoutLevel::GuardedFull)));
        assert_eq!(b.level(), BrownoutLevel::GuardedFull);
    }

    #[test]
    fn queue_depth_descends_before_waits_accumulate() {
        let b = Brownout::new(config(10));
        // Depth ≥ ¾·cap triggers on the very first observation, long
        // before min_samples of slow waits could.
        assert_eq!(
            b.note(12, MS),
            Some(Transition::Descend(BrownoutLevel::ReducedPrecision))
        );
    }

    #[test]
    fn brownout_saturates_at_cache_only_and_guarded_full() {
        let b = Brownout::new(config(10));
        for _ in 0..16 {
            b.note(16, 50 * MS);
        }
        assert_eq!(b.level(), BrownoutLevel::CacheOnly);
        // Deeper than cache-only does not exist; no transition reported.
        assert_eq!(b.note(16, 50 * MS), None);
        for _ in 0..32 {
            b.note(0, MS / 100);
        }
        assert_eq!(b.level(), BrownoutLevel::GuardedFull);
        assert_eq!(b.note(0, MS / 100), None);
    }

    #[test]
    fn hysteresis_band_holds_the_tier_steady() {
        // A p99 between target/2 and target satisfies neither threshold:
        // no flapping on a boundary signal.
        let b = Brownout::new(config(10));
        b.force(BrownoutLevel::InliningOff);
        for _ in 0..32 {
            assert_eq!(b.note(1, 7 * MS), None);
        }
        assert_eq!(b.level(), BrownoutLevel::InliningOff);
    }

    #[test]
    fn dwell_limits_transition_rate() {
        let mut c = config(10);
        c.dwell = Duration::from_millis(40);
        let b = Brownout::new(c);
        let mut transitions = 0;
        let start = Instant::now();
        while start.elapsed() < Duration::from_millis(100) {
            if b.note(16, 50 * MS).is_some() {
                transitions += 1;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        // 100ms / 40ms dwell admits at most ~3 transitions (and the
        // ladder only has 3 rungs to descend anyway).
        assert!(
            (1..=3).contains(&transitions),
            "transitions = {transitions}"
        );
    }

    #[test]
    fn breaker_opens_after_k_strikes_and_probes_half_open() {
        let br = CircuitBreaker::new(BreakerConfig {
            strikes: 3,
            cooldown: Duration::from_millis(30),
        });
        let fp = 42;
        assert_eq!(br.admit(fp), Admission::Allow);
        assert!(!br.strike(fp));
        assert!(!br.strike(fp));
        assert_eq!(br.admit(fp), Admission::Allow, "two strikes stay closed");
        assert!(br.strike(fp), "third strike opens");
        assert_eq!(br.open_count(), 1);
        match br.admit(fp) {
            Admission::Refuse { retry_after_ms } => assert!(retry_after_ms >= 1),
            other => panic!("expected refusal, got {other:?}"),
        }
        std::thread::sleep(Duration::from_millis(35));
        assert_eq!(br.admit(fp), Admission::Probe, "cooldown admits one probe");
        // While the probe is in flight everyone else is refused.
        assert!(matches!(br.admit(fp), Admission::Refuse { .. }));
        br.success(fp);
        assert_eq!(br.admit(fp), Admission::Allow, "clean probe closes");
        assert_eq!(br.open_count(), 0);
    }

    #[test]
    fn late_success_cannot_erase_an_open_circuit() {
        let br = CircuitBreaker::new(BreakerConfig {
            strikes: 1,
            cooldown: Duration::from_millis(50),
        });
        let fp = 11;
        assert!(br.strike(fp), "first kill opens");
        // The wedged compile that earned the strike eventually returns
        // cleanly; that success is stale and must not close the circuit.
        br.success(fp);
        assert!(matches!(br.admit(fp), Admission::Refuse { .. }));
        assert_eq!(br.open_count(), 1);
    }

    #[test]
    fn killed_probe_reopens_the_circuit() {
        let br = CircuitBreaker::new(BreakerConfig {
            strikes: 1,
            cooldown: Duration::from_millis(20),
        });
        let fp = 7;
        assert!(br.strike(fp), "strikes=1 opens on the first kill");
        std::thread::sleep(Duration::from_millis(25));
        assert_eq!(br.admit(fp), Admission::Probe);
        assert!(br.strike(fp), "killed probe re-opens");
        assert!(matches!(br.admit(fp), Admission::Refuse { .. }));
        // Unrelated fingerprints are unaffected throughout.
        assert_eq!(br.admit(8), Admission::Allow);
    }

    #[test]
    fn retry_backoff_grows_honors_hints_and_respects_the_budget() {
        let policy = RetryPolicy {
            max_attempts: 4,
            base_ms: 10,
            cap_ms: 80,
            budget_ms: 1_000,
        };
        let mut rng = XorShift64::new(1);
        // Jitter keeps each wait within [d/2, d] of the exponential step.
        for (attempts, step) in [(1u32, 10u64), (2, 20), (3, 40)] {
            let w = policy.backoff_ms(attempts, None, 0, &mut rng).unwrap();
            assert!(
                w >= step / 2 && w <= step,
                "attempt {attempts}: wait {w} outside [{}, {step}]",
                step / 2
            );
        }
        // The server hint floors the delay.
        let w = policy.backoff_ms(1, Some(200), 0, &mut rng).unwrap();
        assert!((100..=200).contains(&w), "hinted wait {w}");
        // Attempts exhausted → give up.
        assert_eq!(policy.backoff_ms(4, None, 0, &mut rng), None);
        // Budget exhausted → give up even with attempts left.
        assert_eq!(policy.backoff_ms(1, None, 996, &mut rng), None);
        // Determinism: the same seed replays the same waits.
        let mut a = RetrySession::new(policy, 9);
        let mut b = RetrySession::new(policy, 9);
        for attempt in 1..4 {
            assert_eq!(
                a.backoff_ms(attempt, Some(5), 0),
                b.backoff_ms(attempt, Some(5), 0)
            );
        }
    }
}
