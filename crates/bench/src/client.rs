//! Retrying client for the `oi.serve.v1` protocol.
//!
//! Three layers, shared by `oic client`, `oic bench brownoutload`, and
//! `loadgen --retries`:
//!
//! - **In-process transport**: [`ChannelReader`] / [`LineWriter`] adapt
//!   mpsc channels to the `BufRead`/`Write` pair [`run_serve`] pumps, so
//!   a test or load driver can hold a live serve session without a
//!   subprocess ([`with_pump_client`]).
//! - **Subprocess transport**: [`ProcessTransport`] spawns `oic serve`
//!   with piped stdio — the transport behind `oic client`.
//! - **Retry driver**: [`request_with_retries`] resends a request while
//!   the server answers with a *retryable* typed refusal (`overloaded`,
//!   `shedding`, `tenant-over-concurrency`, `quarantined`), backing off
//!   exponentially with full jitter, floored at the server's
//!   `retry_after_ms` hint, within a total time budget (DESIGN §17).

use std::io::{BufRead, Read, Write};
use std::process::{Child, ChildStdin, ChildStdout, Stdio};
use std::sync::mpsc::{self, Receiver, Sender};
use std::time::Duration;

use oi_support::Json;

use crate::overload::RetrySession;
use crate::serve::{run_serve, Server};

/// How long a client waits for a single response before declaring the
/// transport dead. Generous: the watchdog answers wedged requests long
/// before this.
const RESPONSE_TIMEOUT: Duration = Duration::from_secs(60);

/// Blocking `BufRead` over a channel of lines: the serve pump's stdin
/// when the server is embedded in-process. EOF when every sender is
/// dropped.
pub struct ChannelReader {
    rx: Receiver<String>,
    buf: Vec<u8>,
    pos: usize,
}

impl ChannelReader {
    /// Wraps a line channel as a reader.
    pub fn new(rx: Receiver<String>) -> ChannelReader {
        ChannelReader {
            rx,
            buf: Vec::new(),
            pos: 0,
        }
    }
}

impl Read for ChannelReader {
    fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
        let available = self.fill_buf()?;
        let n = available.len().min(out.len());
        out[..n].copy_from_slice(&available[..n]);
        self.consume(n);
        Ok(n)
    }
}

impl BufRead for ChannelReader {
    fn fill_buf(&mut self) -> std::io::Result<&[u8]> {
        if self.pos >= self.buf.len() {
            match self.rx.recv() {
                Ok(mut line) => {
                    if !line.ends_with('\n') {
                        line.push('\n');
                    }
                    self.buf = line.into_bytes();
                    self.pos = 0;
                }
                Err(_) => {
                    // All senders gone: permanent EOF.
                    self.buf.clear();
                    self.pos = 0;
                }
            }
        }
        Ok(&self.buf[self.pos..])
    }

    fn consume(&mut self, n: usize) {
        self.pos = (self.pos + n).min(self.buf.len());
    }
}

/// `Write` that re-splits the serve pump's output into lines on a
/// channel — the in-process counterpart of reading a child's stdout.
pub struct LineWriter {
    tx: Sender<String>,
    buf: Vec<u8>,
}

impl LineWriter {
    /// Wraps a line channel as a writer.
    pub fn new(tx: Sender<String>) -> LineWriter {
        LineWriter {
            tx,
            buf: Vec::new(),
        }
    }
}

impl Write for LineWriter {
    fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
        self.buf.extend_from_slice(data);
        while let Some(idx) = self.buf.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = self.buf.drain(..=idx).collect();
            let text = String::from_utf8_lossy(&line[..line.len() - 1]).into_owned();
            let _ = self.tx.send(text);
        }
        Ok(data.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// A live in-process serve session: send request lines, receive parsed
/// response lines. Requests may be pipelined (send several, then
/// collect) — responses come back in request order.
pub struct PumpClient {
    tx: Sender<String>,
    rx: Receiver<String>,
}

impl PumpClient {
    /// Queues one request line (never blocks).
    pub fn send_line(&self, line: &str) {
        let _ = self.tx.send(line.to_string());
    }

    /// Blocks for the next response line. `None` on timeout or a dead
    /// session.
    pub fn recv_line(&self) -> Option<Json> {
        self.rx
            .recv_timeout(RESPONSE_TIMEOUT)
            .ok()
            .and_then(|l| Json::parse(&l).ok())
    }
}

/// One request line in, one response out.
pub trait Transport {
    /// Sends `line` and blocks for its response; `None` means the
    /// transport itself failed (timeout, dead process).
    fn roundtrip(&mut self, line: &str) -> Option<Json>;
}

impl Transport for PumpClient {
    fn roundtrip(&mut self, line: &str) -> Option<Json> {
        self.send_line(line);
        self.recv_line()
    }
}

/// Runs `f` against a live [`run_serve`] session over in-process
/// channels. When `f` returns, the input side closes, the server drains
/// gracefully (flushing any disk tier), and the session joins before
/// the result is returned.
pub fn with_pump_client<T, F>(server: &Server, f: F) -> T
where
    F: FnOnce(&mut PumpClient) -> T,
{
    let (in_tx, in_rx) = mpsc::channel::<String>();
    let (out_tx, out_rx) = mpsc::channel::<String>();
    std::thread::scope(|s| {
        let session = s.spawn(move || {
            let input = ChannelReader::new(in_rx);
            let mut output = LineWriter::new(out_tx);
            run_serve(server, input, &mut output)
        });
        let mut client = PumpClient {
            tx: in_tx,
            rx: out_rx,
        };
        let result = f(&mut client);
        drop(client); // closes serve's stdin: graceful drain
        let _ = session.join();
        result
    })
}

/// The typed refusal kinds a client may retry. Everything else
/// (`panic`, `quota-exceeded`, `watchdog-killed`, compile errors) is a
/// property of the request, not of the server's current load.
pub const RETRYABLE_KINDS: [&str; 4] = [
    "overloaded",
    "shedding",
    "tenant-over-concurrency",
    "quarantined",
];

/// What one retried request ultimately came to.
pub struct RetryOutcome {
    /// The final response (success, non-retryable error, or the last
    /// refusal when retries ran out); `None` when the transport died.
    pub response: Option<Json>,
    /// Attempts answered, first try included.
    pub attempts: u32,
    /// Total backoff slept, in milliseconds.
    pub backoff_ms_total: u64,
    /// `true` when retries were exhausted (or the transport died)
    /// before a non-retryable answer arrived.
    pub gave_up: bool,
}

impl RetryOutcome {
    /// Did the final response land `ok:true`?
    pub fn ok(&self) -> bool {
        self.response
            .as_ref()
            .and_then(|r| r.get("ok"))
            .and_then(Json::as_bool)
            .unwrap_or(false)
    }
}

/// Sends `line`, retrying retryable refusals with jittered exponential
/// backoff floored at the server's `retry_after_ms` hint, until a
/// terminal answer or the session's policy gives up.
pub fn request_with_retries(
    transport: &mut dyn Transport,
    line: &str,
    session: &mut RetrySession,
) -> RetryOutcome {
    let mut attempts = 0u32;
    let mut spent = 0u64;
    loop {
        let resp = transport.roundtrip(line);
        attempts += 1;
        let Some(resp) = resp else {
            return RetryOutcome {
                response: None,
                attempts,
                backoff_ms_total: spent,
                gave_up: true,
            };
        };
        let ok = resp.get("ok").and_then(Json::as_bool).unwrap_or(false);
        let kind = resp
            .get("error_kind")
            .and_then(Json::as_str)
            .unwrap_or("")
            .to_string();
        if ok || !RETRYABLE_KINDS.contains(&kind.as_str()) {
            return RetryOutcome {
                response: Some(resp),
                attempts,
                backoff_ms_total: spent,
                gave_up: false,
            };
        }
        let hint = resp
            .get("retry_after_ms")
            .and_then(Json::as_i64)
            .map(|n| n.max(0) as u64);
        match session.backoff_ms(attempts, hint, spent) {
            Some(ms) => {
                spent += ms;
                std::thread::sleep(Duration::from_millis(ms));
            }
            None => {
                return RetryOutcome {
                    response: Some(resp),
                    attempts,
                    backoff_ms_total: spent,
                    gave_up: true,
                };
            }
        }
    }
}

/// A spawned `oic serve` child with piped stdio.
pub struct ProcessTransport {
    child: Child,
    stdin: Option<ChildStdin>,
    stdout: std::io::BufReader<ChildStdout>,
}

impl ProcessTransport {
    /// Spawns `oic serve <serve_args>` next to the current executable.
    pub fn spawn(serve_args: &[String]) -> Result<ProcessTransport, String> {
        let exe = std::env::current_exe().map_err(|e| format!("cannot locate oic: {e}"))?;
        let mut child = std::process::Command::new(exe)
            .arg("serve")
            .args(serve_args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .spawn()
            .map_err(|e| format!("cannot spawn `oic serve`: {e}"))?;
        let stdin = child
            .stdin
            .take()
            .ok_or_else(|| "serve child has no stdin".to_string())?;
        let stdout = child
            .stdout
            .take()
            .ok_or_else(|| "serve child has no stdout".to_string())?;
        Ok(ProcessTransport {
            child,
            stdin: Some(stdin),
            stdout: std::io::BufReader::new(stdout),
        })
    }

    /// Asks the server to shut down and reaps the child. Returns its
    /// exit code when it exited cleanly.
    pub fn shutdown(mut self) -> Option<i32> {
        if let Some(mut stdin) = self.stdin.take() {
            let _ = writeln!(stdin, "{{\"op\":\"shutdown\"}}");
            let _ = stdin.flush();
            // Dropping stdin closes the pipe; the server drains.
        }
        let mut line = String::new();
        let _ = self.stdout.read_line(&mut line); // the shutdown ack
        self.child.wait().ok().and_then(|s| s.code())
    }
}

impl Transport for ProcessTransport {
    fn roundtrip(&mut self, line: &str) -> Option<Json> {
        let stdin = self.stdin.as_mut()?;
        writeln!(stdin, "{line}").ok()?;
        stdin.flush().ok()?;
        let mut resp = String::new();
        match self.stdout.read_line(&mut resp) {
            Ok(0) | Err(_) => None,
            Ok(_) => Json::parse(resp.trim()).ok(),
        }
    }
}

const USAGE: &str = "usage: oic client [--retries N] [--budget-ms N] [--seed N] \
     [--serve-args \"FLAGS\"]\n\
     \n\
     Retrying oi.serve.v1 client: spawns `oic serve` (pass extra server\n\
     flags via --serve-args, whitespace-split), reads one JSON request per\n\
     stdin line, and prints the final response for each to stdout. Typed\n\
     backpressure refusals (overloaded, shedding, tenant-over-concurrency,\n\
     quarantined) are retried with jittered exponential backoff honoring\n\
     the server's retry_after_ms hint, up to --retries extra attempts\n\
     (default 4) within --budget-ms total backoff (default 5000). A final\n\
     oi.client.v1 summary goes to stderr. Exit 1 when any request gave up.";

fn usage_error(msg: &str) -> u8 {
    eprintln!("oic client: {msg}\n\n{USAGE}");
    2
}

/// Entry point for `oic client`.
pub fn cli_main(args: &[String]) -> u8 {
    use oi_support::cli::{Arg, ArgScanner};
    let mut policy = crate::overload::RetryPolicy::default();
    let mut seed = 1u64;
    let mut serve_args: Vec<String> = Vec::new();
    let mut scanner = ArgScanner::new(args.to_vec());
    while let Some(arg) = scanner.next() {
        let arg = match arg {
            Ok(a) => a,
            Err(e) => return usage_error(&e),
        };
        match arg {
            Arg::Flag { name, value: None } => match name.as_str() {
                "retries" => match scanner.value_for("--retries") {
                    Ok(v) => match v.parse::<u32>() {
                        Ok(n) => policy.max_attempts = n.saturating_add(1),
                        Err(_) => return usage_error("`--retries` needs an integer"),
                    },
                    Err(e) => return usage_error(&e),
                },
                "budget-ms" => match scanner.value_for("--budget-ms") {
                    Ok(v) => match v.parse::<u64>() {
                        Ok(n) => policy.budget_ms = n,
                        Err(_) => return usage_error("`--budget-ms` needs an integer"),
                    },
                    Err(e) => return usage_error(&e),
                },
                "seed" => match scanner.value_for("--seed") {
                    Ok(v) => match v.parse::<u64>() {
                        Ok(n) => seed = n,
                        Err(_) => return usage_error("`--seed` needs an integer"),
                    },
                    Err(e) => return usage_error(&e),
                },
                "serve-args" => match scanner.value_for("--serve-args") {
                    Ok(v) => {
                        serve_args.extend(v.split_whitespace().map(str::to_string));
                    }
                    Err(e) => return usage_error(&e),
                },
                other => return usage_error(&format!("unknown flag `--{other}`")),
            },
            Arg::Flag { name, value } => {
                return usage_error(&format!(
                    "unknown flag `--{name}={}`",
                    value.unwrap_or_default()
                ))
            }
            Arg::Positional(p) => {
                return usage_error(&format!("unexpected positional argument `{p}`"))
            }
        }
    }
    let mut transport = match ProcessTransport::spawn(&serve_args) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("oic client: {e}");
            return 1;
        }
    };
    let mut requests = 0u64;
    let mut oks = 0u64;
    let mut errors = 0u64;
    let mut retries = 0u64;
    let mut give_ups = 0u64;
    let mut backoff_total = 0u64;
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let mut session = RetrySession::new(policy, seed ^ requests.wrapping_mul(0x9e37_79b9));
        let outcome = request_with_retries(&mut transport, &line, &mut session);
        requests += 1;
        retries += u64::from(outcome.attempts.saturating_sub(1));
        backoff_total += outcome.backoff_ms_total;
        if outcome.gave_up {
            give_ups += 1;
        }
        match &outcome.response {
            Some(resp) => {
                if outcome.ok() {
                    oks += 1;
                } else {
                    errors += 1;
                }
                println!("{resp}");
            }
            None => {
                errors += 1;
                println!(
                    "{}",
                    Json::obj(vec![
                        ("schema", "oi.serve.v1".into()),
                        ("ok", false.into()),
                        ("error_kind", "transport".into()),
                        ("error", "no response from serve child".into()),
                    ])
                );
            }
        }
    }
    let _ = transport.shutdown();
    let summary = Json::obj(vec![
        ("schema", "oi.client.v1".into()),
        ("requests", requests.into()),
        ("ok", oks.into()),
        ("errors", errors.into()),
        ("retries", retries.into()),
        ("give_ups", give_ups.into()),
        ("backoff_ms_total", backoff_total.into()),
    ]);
    eprintln!("{summary}");
    u8::from(give_ups > 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serve::ServeConfig;

    const SOURCE: &str = "fn main() { print 2 + 3; }";

    fn compile_request(id: u64, source: &str) -> String {
        Json::obj(vec![
            ("id", Json::from(id)),
            ("op", "compile".into()),
            ("source", source.into()),
        ])
        .to_string()
    }

    #[test]
    fn pump_client_roundtrips_in_order() {
        let server = Server::new(ServeConfig::default());
        let (first, second) = with_pump_client(&server, |client| {
            client.send_line(&compile_request(1, SOURCE));
            client.send_line(&compile_request(2, SOURCE));
            (client.recv_line().unwrap(), client.recv_line().unwrap())
        });
        assert_eq!(first.get("id").and_then(Json::as_i64), Some(1));
        assert_eq!(first.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(second.get("cache").and_then(Json::as_str), Some("hit"));
    }

    #[test]
    fn retries_ride_out_a_brownout_shed() {
        use crate::overload::RetryPolicy;
        use oi_core::BrownoutLevel;
        // Cache-only brownout sheds the first attempts; service recovers
        // before the retry budget runs out, so the client converges.
        let server = Server::new(ServeConfig {
            brownout_target_ms: Some(1_000),
            ..ServeConfig::default()
        });
        server.force_brownout(BrownoutLevel::CacheOnly);
        let outcome = with_pump_client(&server, |client| {
            let policy = RetryPolicy {
                max_attempts: 8,
                base_ms: 15,
                cap_ms: 60,
                budget_ms: 5_000,
            };
            let mut session = RetrySession::new(policy, 7);
            // Recover the service from another thread mid-retry.
            std::thread::scope(|s| {
                s.spawn(|| {
                    std::thread::sleep(Duration::from_millis(40));
                    server.force_brownout(BrownoutLevel::GuardedFull);
                });
                request_with_retries(client, &compile_request(1, SOURCE), &mut session)
            })
        });
        assert!(outcome.ok(), "retries must converge after recovery");
        assert!(outcome.attempts >= 2, "first attempt must have been shed");
        assert!(!outcome.gave_up);
        assert!(outcome.backoff_ms_total >= 1);
    }

    #[test]
    fn exhausted_retries_give_up_with_the_last_refusal() {
        use crate::overload::RetryPolicy;
        use oi_core::BrownoutLevel;
        let server = Server::new(ServeConfig {
            brownout_target_ms: Some(1_000),
            ..ServeConfig::default()
        });
        server.force_brownout(BrownoutLevel::CacheOnly);
        let outcome = with_pump_client(&server, |client| {
            let policy = RetryPolicy {
                max_attempts: 3,
                base_ms: 1,
                cap_ms: 2,
                budget_ms: 1_000,
            };
            let mut session = RetrySession::new(policy, 3);
            request_with_retries(client, &compile_request(1, SOURCE), &mut session)
        });
        assert!(outcome.gave_up);
        assert_eq!(outcome.attempts, 3);
        assert_eq!(
            outcome
                .response
                .as_ref()
                .and_then(|r| r.get("error_kind"))
                .and_then(Json::as_str),
            Some("shedding")
        );
    }

    #[test]
    fn non_retryable_errors_are_terminal_on_the_first_attempt() {
        let server = Server::new(ServeConfig::default());
        let outcome = with_pump_client(&server, |client| {
            let mut session = RetrySession::new(Default::default(), 5);
            request_with_retries(
                client,
                &compile_request(1, "fn main() { print ; }"),
                &mut session,
            )
        });
        assert!(!outcome.ok());
        assert!(!outcome.gave_up);
        assert_eq!(outcome.attempts, 1);
    }
}
