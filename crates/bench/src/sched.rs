//! Fuel-sliced fair scheduler for multi-tenant metered execution.
//!
//! Tenant programs are untrusted inputs whose resource behavior cannot be
//! predicted statically, so the scheduler treats every job as potentially
//! hostile: execution is pre-emptible at instruction granularity via
//! [`oi_vm::VmSession::run_fuel`], and each tenant is boxed in by a
//! [`TenantQuota`] (instructions, heap words, call depth, concurrent
//! requests, wall deadline). A quota breach terminates *that job* with a
//! typed [`Verdict`] — never a panic, never a neighbor.
//!
//! # Shape
//!
//! - Admission: [`Scheduler::submit`] either accepts a [`JobSpec`] or
//!   rejects it with a typed [`SubmitError`] (global queue full, tenant at
//!   its concurrency quota, or draining). Rejection is backpressure — the
//!   scheduler never buffers unboundedly.
//! - Fairness: runnable jobs are organized as per-tenant FIFO queues with
//!   a round-robin rotation over tenants, so a tenant with thousands of
//!   queued programs cannot starve a tenant with one.
//! - Execution: worker threads (the caller's — see [`Scheduler::worker_loop`])
//!   repeatedly pick the next tenant's next job, run **one fuel slice**
//!   outside the scheduler lock, then either re-queue the suspended session
//!   or complete the job. Every slice is wrapped in
//!   [`oi_support::panic::contained`], so a panicking guest (or a chaos
//!   fault) converts to [`Verdict::Panicked`] instead of unwinding a worker.
//! - Accounting: the scheduler keeps its own per-tenant fuel tally and
//!   reconciles it against each session's [`VmSession::instructions_executed`]
//!   counter; [`Scheduler::report_json`] emits the schema-stable
//!   `oi.tenant.v1` document.
//! - Drain: [`Scheduler::close`] stops admission and lets everything queued
//!   finish (EOF-style shutdown); [`Scheduler::begin_drain`] additionally
//!   flushes never-started jobs with [`Verdict::Shed`] while started jobs
//!   run to completion (explicit-shutdown drain protocol).

use oi_core::cache::Artifact;
use oi_ir::Program;
use oi_support::panic::contained;
use oi_support::Json;
use oi_vm::{FuelOutcome, RunResult, VmConfig, VmError, VmSession};
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// The program a job executes. Jobs hold strong references so a cached
/// artifact evicted mid-run keeps executing safely.
#[derive(Clone)]
pub enum ProgramRef {
    /// A bare program (e.g. compiled directly by a load generator).
    Bare(Arc<Program>),
    /// A compile-service artifact; the program lives inside it.
    Artifact(Arc<Artifact>),
}

impl ProgramRef {
    /// The program to execute. The returned address is stable for the
    /// life of the `Arc`, which is what lets a suspended [`VmSession`]
    /// resume against it slice after slice.
    pub fn program(&self) -> &Program {
        match self {
            ProgramRef::Bare(p) => p,
            ProgramRef::Artifact(a) => &a.outcome.optimized.program,
        }
    }
}

/// Per-tenant resource quota. Instruction, heap, and depth limits are
/// enforced *inside* the VM (fused with the fuel checkpoint, so they cost
/// nothing extra per dispatch); the deadline and concurrency limits are
/// enforced by the scheduler.
#[derive(Clone, Debug)]
pub struct TenantQuota {
    /// Total executed IR instructions per job.
    pub max_instructions: u64,
    /// Heap budget in words per job.
    pub max_heap_words: u64,
    /// Interpreter call-depth limit per job.
    pub max_depth: usize,
    /// Concurrent in-flight jobs per tenant (admission control).
    pub max_concurrent: usize,
    /// Wall-clock deadline per job, measured from submission.
    pub deadline: Option<Duration>,
}

impl Default for TenantQuota {
    fn default() -> Self {
        let vm = VmConfig::default();
        TenantQuota {
            max_instructions: vm.max_instructions,
            max_heap_words: vm.max_heap_words,
            max_depth: vm.max_depth,
            max_concurrent: 1024,
            deadline: None,
        }
    }
}

impl TenantQuota {
    fn vm_config(&self) -> VmConfig {
        VmConfig {
            max_instructions: self.max_instructions,
            max_heap_words: self.max_heap_words,
            max_depth: self.max_depth,
            ..VmConfig::default()
        }
    }
}

/// Which quota a terminated job exceeded.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QuotaKind {
    /// [`TenantQuota::max_instructions`] exhausted.
    Instructions,
    /// [`TenantQuota::max_heap_words`] exhausted.
    HeapWords,
    /// [`TenantQuota::max_depth`] exceeded.
    CallDepth,
    /// [`TenantQuota::deadline`] passed.
    Deadline,
}

impl QuotaKind {
    /// Stable string name used in reports and serve error payloads.
    pub fn name(self) -> &'static str {
        match self {
            QuotaKind::Instructions => "instructions",
            QuotaKind::HeapWords => "heap-words",
            QuotaKind::CallDepth => "call-depth",
            QuotaKind::Deadline => "deadline",
        }
    }
}

/// Typed end state of a job. Quota breaches and guest failures terminate
/// only the offending job; the verdict always names the guilty tenant via
/// its [`Completion`].
#[derive(Clone, Debug)]
pub enum Verdict {
    /// Ran to completion; the [`Completion`] carries the [`RunResult`].
    Done,
    /// Killed for exceeding the named per-tenant quota.
    Quota(QuotaKind),
    /// The guest program failed on its own (nil dereference, missing
    /// method, ...). Not a quota kill and not the scheduler's fault.
    RuntimeError(String),
    /// A panic during the job's slice was contained to the job.
    Panicked(String),
    /// Flushed unstarted during drain ("shedding" in serve responses).
    Shed,
}

/// Why a submission was rejected at admission.
#[derive(Clone, Debug)]
pub enum SubmitError {
    /// The global bounded queue is full — shed with backpressure.
    Overloaded {
        /// Jobs currently live (queued + running).
        live: usize,
    },
    /// The tenant is at its concurrent-requests quota.
    TenantBusy {
        /// The tenant's in-flight job count.
        active: usize,
    },
    /// The scheduler is draining for shutdown.
    Draining,
}

impl SubmitError {
    /// Stable error-type name used in serve responses.
    pub fn name(&self) -> &'static str {
        match self {
            SubmitError::Overloaded { .. } => "overloaded",
            SubmitError::TenantBusy { .. } => "tenant-over-concurrency",
            SubmitError::Draining => "shedding",
        }
    }
}

/// Chaos-injection seam: deterministic faults a test can plant on a job.
#[derive(Clone, Copy, Debug)]
pub enum JobFault {
    /// Panic at the start of slice `n` (0-based), mid-request.
    PanicAtSlice(u64),
}

/// A job submission: one tenant program plus its effective quota.
pub struct JobSpec {
    /// Tenant identity; all accounting and fairness keys off this.
    pub tenant: String,
    /// What to execute.
    pub program: ProgramRef,
    /// Effective quota for this job.
    pub quota: TenantQuota,
    /// Optional injected fault (chaos testing only).
    pub fault: Option<JobFault>,
}

/// Delivered on the completion channel when a job reaches a verdict.
pub struct Completion {
    /// Submission sequence number (returned by [`Scheduler::submit`]).
    pub seq: u64,
    /// The owning tenant.
    pub tenant: String,
    /// How the job ended.
    pub verdict: Verdict,
    /// Scheduler-side tally of instructions across all slices.
    pub fuel: u64,
    /// The session's own instruction counter (reconciles with `fuel`).
    pub vm_instructions: u64,
    /// Fuel slices the job consumed.
    pub slices: u64,
    /// Submission → first slice.
    pub queue_wait: Duration,
    /// Wall time spent actually executing slices (excludes queueing).
    pub run_time: Duration,
    /// Global slice tick at completion (fairness clock).
    pub done_tick: u64,
    /// The run result, for [`Verdict::Done`] only.
    pub result: Option<Box<RunResult>>,
}

/// Scheduler construction parameters.
#[derive(Clone, Debug)]
pub struct SchedConfig {
    /// Instructions per fuel slice (pre-emption granularity).
    pub fuel_slice: u64,
    /// Global bound on live (queued + running) jobs; submissions beyond
    /// it are rejected with [`SubmitError::Overloaded`].
    pub max_queue: usize,
}

impl Default for SchedConfig {
    fn default() -> Self {
        SchedConfig {
            fuel_slice: 10_000,
            max_queue: 16 * 1024,
        }
    }
}

struct ActiveJob {
    seq: u64,
    tenant: String,
    program: ProgramRef,
    vm_config: VmConfig,
    session: Option<VmSession>,
    fault: Option<JobFault>,
    slices: u64,
    fuel: u64,
    submitted: Instant,
    deadline: Option<Instant>,
    queue_wait: Option<Duration>,
    run_time: Duration,
}

enum SliceEnd {
    Yielded,
    Finished(Verdict, Option<Box<RunResult>>),
}

/// Per-tenant quota-kill tally, by [`QuotaKind`].
#[derive(Clone, Copy, Debug, Default)]
pub struct QuotaKills {
    /// Instruction-budget kills.
    pub instructions: u64,
    /// Heap-words kills.
    pub heap_words: u64,
    /// Call-depth kills.
    pub call_depth: u64,
    /// Wall-deadline kills.
    pub deadline: u64,
}

impl QuotaKills {
    /// Total kills across all quota kinds.
    pub fn total(&self) -> u64 {
        self.instructions + self.heap_words + self.call_depth + self.deadline
    }

    fn bump(&mut self, kind: QuotaKind) {
        match kind {
            QuotaKind::Instructions => self.instructions += 1,
            QuotaKind::HeapWords => self.heap_words += 1,
            QuotaKind::CallDepth => self.call_depth += 1,
            QuotaKind::Deadline => self.deadline += 1,
        }
    }
}

/// Per-tenant metering summary, the row type behind `oi.tenant.v1`.
#[derive(Clone, Debug, Default)]
pub struct TenantSummary {
    /// Tenant identity.
    pub tenant: String,
    /// Jobs admitted for this tenant.
    pub submitted: u64,
    /// Jobs that ran to completion.
    pub completed: u64,
    /// Jobs flushed unstarted during drain.
    pub shed: u64,
    /// Jobs whose slice panicked (contained).
    pub panicked: u64,
    /// Jobs that failed with a guest runtime error.
    pub runtime_errors: u64,
    /// Typed quota kills.
    pub quota_kills: QuotaKills,
    /// Scheduler-side instruction tally across all the tenant's jobs.
    pub fuel: u64,
    /// Sum of the sessions' own instruction counters.
    pub vm_instructions: u64,
    /// Fuel slices consumed.
    pub slices: u64,
    /// Global slice tick of the tenant's first completed job.
    pub first_done_tick: Option<u64>,
    /// Global slice tick of the tenant's last finished job.
    pub last_done_tick: u64,
    /// Worst submission → first-slice wait observed.
    pub max_queue_wait_ns: u64,
}

impl TenantSummary {
    /// Exact fuel reconciliation: scheduler tally == session counters.
    pub fn reconciled(&self) -> bool {
        self.fuel == self.vm_instructions
    }

    /// Jobs that reached any verdict.
    pub fn finished(&self) -> u64 {
        self.completed + self.shed + self.panicked + self.runtime_errors + self.quota_kills.total()
    }
}

struct TenantState {
    runnable: VecDeque<ActiveJob>,
    in_rr: bool,
    active: usize,
    acct: TenantSummary,
}

impl TenantState {
    fn new(tenant: &str) -> TenantState {
        TenantState {
            runnable: VecDeque::new(),
            in_rr: false,
            active: 0,
            acct: TenantSummary {
                tenant: tenant.to_string(),
                ..TenantSummary::default()
            },
        }
    }
}

struct SchedState {
    rr: VecDeque<String>,
    tenants: BTreeMap<String, TenantState>,
    live: usize,
    closed: bool,
    draining: bool,
    next_seq: u64,
    completions: Option<Sender<Completion>>,
}

/// A fuel-sliced fair scheduler over caller-owned worker threads.
///
/// The scheduler owns no threads: callers spawn workers (scoped or
/// otherwise) that run [`Scheduler::worker_loop`] until the scheduler is
/// closed and drained. Completions are delivered on the `mpsc` channel
/// supplied to [`Scheduler::new`].
pub struct Scheduler {
    fuel_slice: u64,
    max_queue: usize,
    state: Mutex<SchedState>,
    work_cv: Condvar,
    idle_cv: Condvar,
    ticks: AtomicU64,
}

impl Scheduler {
    /// Creates a scheduler delivering completions on `completions`.
    pub fn new(config: SchedConfig, completions: Sender<Completion>) -> Scheduler {
        Scheduler {
            fuel_slice: config.fuel_slice.max(1),
            max_queue: config.max_queue.max(1),
            state: Mutex::new(SchedState {
                rr: VecDeque::new(),
                tenants: BTreeMap::new(),
                live: 0,
                closed: false,
                draining: false,
                next_seq: 0,
                completions: Some(completions),
            }),
            work_cv: Condvar::new(),
            idle_cv: Condvar::new(),
            ticks: AtomicU64::new(0),
        }
    }

    /// The configured fuel slice (instructions per pre-emption quantum).
    pub fn fuel_slice(&self) -> u64 {
        self.fuel_slice
    }

    /// Global slice ticks executed so far (the fairness clock).
    pub fn ticks(&self) -> u64 {
        self.ticks.load(Ordering::Relaxed)
    }

    fn lock(&self) -> MutexGuard<'_, SchedState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Admits a job or rejects it with typed backpressure. On success
    /// returns the job's sequence number, echoed in its [`Completion`].
    pub fn submit(&self, spec: JobSpec) -> Result<u64, SubmitError> {
        let mut st = self.lock();
        if st.draining || st.closed {
            return Err(SubmitError::Draining);
        }
        if st.live >= self.max_queue {
            return Err(SubmitError::Overloaded { live: st.live });
        }
        let tenant = st
            .tenants
            .entry(spec.tenant.clone())
            .or_insert_with(|| TenantState::new(&spec.tenant));
        if tenant.active >= spec.quota.max_concurrent {
            return Err(SubmitError::TenantBusy {
                active: tenant.active,
            });
        }
        let seq = st.next_seq;
        st.next_seq += 1;
        st.live += 1;
        let now = Instant::now();
        let job = ActiveJob {
            seq,
            tenant: spec.tenant.clone(),
            vm_config: spec.quota.vm_config(),
            program: spec.program,
            session: None,
            fault: spec.fault,
            slices: 0,
            fuel: 0,
            submitted: now,
            deadline: spec.quota.deadline.map(|d| now + d),
            queue_wait: None,
            run_time: Duration::ZERO,
        };
        let tenant = st.tenants.get_mut(&spec.tenant).expect("tenant exists");
        tenant.active += 1;
        tenant.acct.submitted += 1;
        tenant.runnable.push_back(job);
        if !tenant.in_rr {
            tenant.in_rr = true;
            st.rr.push_back(spec.tenant);
        }
        drop(st);
        self.work_cv.notify_one();
        Ok(seq)
    }

    /// Stops admission; everything already queued still runs. Workers
    /// exit once the queue is empty. This is the EOF-style shutdown.
    pub fn close(&self) {
        let mut st = self.lock();
        st.closed = true;
        drop(st);
        self.work_cv.notify_all();
        self.idle_cv.notify_all();
    }

    /// Stops admission and flushes never-started jobs with
    /// [`Verdict::Shed`]; jobs that have already executed a slice run to
    /// their natural verdict. This is the explicit-shutdown drain.
    pub fn begin_drain(&self) {
        let mut st = self.lock();
        st.draining = true;
        st.closed = true;
        let tenants: Vec<String> = st.tenants.keys().cloned().collect();
        for name in tenants {
            let ts = st.tenants.get_mut(&name).expect("tenant exists");
            let mut keep = VecDeque::new();
            let mut shed = Vec::new();
            while let Some(job) = ts.runnable.pop_front() {
                if job.session.is_none() {
                    shed.push(job);
                } else {
                    keep.push_back(job);
                }
            }
            ts.runnable = keep;
            for job in shed {
                self.complete_locked(&mut st, job, Verdict::Shed, None);
            }
        }
        drop(st);
        self.work_cv.notify_all();
        self.idle_cv.notify_all();
    }

    /// Blocks until no live jobs remain.
    pub fn wait_idle(&self) {
        let mut st = self.lock();
        while st.live > 0 {
            st = self
                .idle_cv
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Live (queued + running) job count.
    pub fn live(&self) -> usize {
        self.lock().live
    }

    /// Drops the completion sender so a receiver loop observes
    /// end-of-stream once every already-sent completion is consumed.
    /// Call only when no further jobs can complete (scheduler drained).
    pub fn seal(&self) {
        self.lock().completions = None;
    }

    /// Runs at most one fuel slice if a job is runnable right now.
    /// Returns whether a slice (or completion) was processed. This is
    /// the non-blocking entry point for callers that interleave
    /// scheduling with other work (e.g. the serve request pump).
    pub fn try_run_slice(&self) -> bool {
        let mut st = self.lock();
        match Self::next_job(&mut st) {
            Some(mut job) => {
                drop(st);
                let end = self.run_slice(&mut job);
                let mut st = self.lock();
                self.settle(&mut st, job, end);
                true
            }
            None => false,
        }
    }

    fn settle(&self, st: &mut SchedState, job: ActiveJob, end: SliceEnd) {
        match end {
            SliceEnd::Yielded => {
                let name = job.tenant.clone();
                let ts = st.tenants.get_mut(&name).expect("tenant exists");
                ts.runnable.push_back(job);
                if !ts.in_rr {
                    ts.in_rr = true;
                    st.rr.push_back(name);
                }
                self.work_cv.notify_one();
            }
            SliceEnd::Finished(verdict, result) => {
                self.complete_locked(st, job, verdict, result);
            }
        }
    }

    /// Worker body: run this from one or more caller-owned threads. The
    /// loop returns once the scheduler is closed and fully drained.
    pub fn worker_loop(&self) {
        let mut st = self.lock();
        loop {
            if let Some(mut job) = Self::next_job(&mut st) {
                drop(st);
                let end = self.run_slice(&mut job);
                st = self.lock();
                self.settle(&mut st, job, end);
            } else if st.closed && st.live == 0 {
                drop(st);
                self.work_cv.notify_all();
                return;
            } else {
                st = self
                    .work_cv
                    .wait(st)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }
    }

    fn next_job(st: &mut SchedState) -> Option<ActiveJob> {
        while let Some(name) = st.rr.pop_front() {
            let ts = st.tenants.get_mut(&name).expect("tenant exists");
            if let Some(job) = ts.runnable.pop_front() {
                if ts.runnable.is_empty() {
                    ts.in_rr = false;
                } else {
                    st.rr.push_back(name);
                }
                return Some(job);
            }
            ts.in_rr = false;
        }
        None
    }

    /// Runs one fuel slice for `job`, outside the scheduler lock. Never
    /// panics: guest panics (and injected chaos panics) are contained and
    /// converted to [`Verdict::Panicked`].
    fn run_slice(&self, job: &mut ActiveJob) -> SliceEnd {
        let now = Instant::now();
        if job.queue_wait.is_none() {
            job.queue_wait = Some(now.duration_since(job.submitted));
        }
        if let Some(dl) = job.deadline {
            if now >= dl {
                return SliceEnd::Finished(Verdict::Quota(QuotaKind::Deadline), None);
            }
        }
        let slice_no = job.slices;
        job.slices += 1;
        self.ticks.fetch_add(1, Ordering::Relaxed);
        if job.session.is_none() {
            let program = job.program.program();
            let cfg = &job.vm_config;
            match contained(|| VmSession::new(program, cfg)) {
                Ok(Ok(session)) => job.session = Some(session),
                Ok(Err(e)) => return SliceEnd::Finished(classify(e), None),
                Err(msg) => return SliceEnd::Finished(Verdict::Panicked(msg), None),
            }
        }
        let inject = matches!(job.fault, Some(JobFault::PanicAtSlice(n)) if n == slice_no);
        let program = job.program.program();
        let fuel = self.fuel_slice;
        let session = job.session.as_mut().expect("session exists");
        let slice_start = Instant::now();
        let out = contained(|| {
            if inject {
                panic!("injected mid-request panic");
            }
            session.run_fuel(program, fuel)
        });
        job.run_time += slice_start.elapsed();
        match out {
            Err(msg) => SliceEnd::Finished(Verdict::Panicked(msg), None),
            Ok(FuelOutcome::Yielded { fuel_spent }) => {
                job.fuel += fuel_spent;
                SliceEnd::Yielded
            }
            Ok(FuelOutcome::Done { fuel_spent, result }) => {
                job.fuel += fuel_spent;
                SliceEnd::Finished(Verdict::Done, Some(result))
            }
            Ok(FuelOutcome::Trapped { fuel_spent, error }) => {
                job.fuel += fuel_spent;
                SliceEnd::Finished(classify(error), None)
            }
        }
    }

    fn complete_locked(
        &self,
        st: &mut SchedState,
        job: ActiveJob,
        verdict: Verdict,
        result: Option<Box<RunResult>>,
    ) {
        let tick = self.ticks.load(Ordering::Relaxed);
        let vm_instructions = job
            .session
            .as_ref()
            .map_or(0, |s| s.instructions_executed());
        let ts = st.tenants.get_mut(&job.tenant).expect("tenant exists");
        ts.active -= 1;
        st.live -= 1;
        match &verdict {
            Verdict::Done => ts.acct.completed += 1,
            Verdict::Quota(kind) => ts.acct.quota_kills.bump(*kind),
            Verdict::RuntimeError(_) => ts.acct.runtime_errors += 1,
            Verdict::Panicked(_) => ts.acct.panicked += 1,
            Verdict::Shed => ts.acct.shed += 1,
        }
        ts.acct.fuel += job.fuel;
        ts.acct.vm_instructions += vm_instructions;
        ts.acct.slices += job.slices;
        if !matches!(verdict, Verdict::Shed) && ts.acct.first_done_tick.is_none() {
            ts.acct.first_done_tick = Some(tick);
        }
        ts.acct.last_done_tick = tick;
        let wait = job.queue_wait.unwrap_or_default();
        let wait_ns = wait.as_nanos().min(u128::from(u64::MAX)) as u64;
        ts.acct.max_queue_wait_ns = ts.acct.max_queue_wait_ns.max(wait_ns);
        let completion = Completion {
            seq: job.seq,
            tenant: job.tenant,
            verdict,
            fuel: job.fuel,
            vm_instructions,
            slices: job.slices,
            queue_wait: wait,
            run_time: job.run_time,
            done_tick: tick,
            result,
        };
        // The receiver may have hung up (e.g. a test that only cares
        // about the report); completion delivery is best-effort.
        if let Some(tx) = &st.completions {
            let _ = tx.send(completion);
        }
        if st.live == 0 {
            self.idle_cv.notify_all();
        }
    }

    /// Per-tenant metering summaries, sorted by tenant name.
    pub fn tenant_summaries(&self) -> Vec<TenantSummary> {
        let st = self.lock();
        st.tenants.values().map(|t| t.acct.clone()).collect()
    }

    /// The schema-stable `oi.tenant.v1` metering report.
    pub fn report_json(&self) -> Json {
        let summaries = self.tenant_summaries();
        let reconciled = summaries.iter().all(|t| t.reconciled());
        let total_fuel: u64 = summaries.iter().map(|t| t.fuel).sum();
        let tenants: Vec<Json> = summaries
            .iter()
            .map(|t| {
                Json::obj(vec![
                    ("tenant", t.tenant.as_str().into()),
                    ("submitted", t.submitted.into()),
                    ("completed", t.completed.into()),
                    ("shed", t.shed.into()),
                    ("panicked", t.panicked.into()),
                    ("runtime_errors", t.runtime_errors.into()),
                    (
                        "quota_kills",
                        Json::obj(vec![
                            ("instructions", t.quota_kills.instructions.into()),
                            ("heap-words", t.quota_kills.heap_words.into()),
                            ("call-depth", t.quota_kills.call_depth.into()),
                            ("deadline", t.quota_kills.deadline.into()),
                        ]),
                    ),
                    ("fuel", t.fuel.into()),
                    ("vm_instructions", t.vm_instructions.into()),
                    ("reconciled", t.reconciled().into()),
                    ("slices", t.slices.into()),
                    (
                        "first_done_tick",
                        t.first_done_tick.map_or(Json::Null, Json::from),
                    ),
                    ("last_done_tick", t.last_done_tick.into()),
                    ("max_queue_wait_ns", t.max_queue_wait_ns.into()),
                ])
            })
            .collect();
        Json::obj(vec![
            ("schema", "oi.tenant.v1".into()),
            ("fuel_slice", self.fuel_slice.into()),
            ("ticks", self.ticks().into()),
            ("total_fuel", total_fuel.into()),
            ("reconciled", reconciled.into()),
            ("tenants", tenants.into()),
        ])
    }
}

fn classify(e: VmError) -> Verdict {
    match e {
        VmError::InstructionLimit => Verdict::Quota(QuotaKind::Instructions),
        VmError::OutOfMemory => Verdict::Quota(QuotaKind::HeapWords),
        VmError::StackOverflow => Verdict::Quota(QuotaKind::CallDepth),
        other => Verdict::RuntimeError(other.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oi_core::cache::{config_fingerprint, ArtifactCache, CacheKey};
    use oi_core::ladder::{optimize_with_ladder, LadderConfig};
    use oi_support::panic::silence_hook;
    use oi_support::Budget;
    use std::sync::mpsc;

    fn compiled(source: &str) -> Arc<Program> {
        let p = oi_ir::lower::compile(source).expect("compiles");
        let out = optimize_with_ladder(&p, &LadderConfig::default(), &Budget::unlimited());
        Arc::new(out.optimized.program)
    }

    /// Lowered but not ladder-optimized: the ladder's profiling pass
    /// would grind on intentionally non-terminating programs.
    fn lowered(source: &str) -> Arc<Program> {
        Arc::new(oi_ir::lower::compile(source).expect("compiles"))
    }

    fn loop_source(iters: u64) -> String {
        format!(
            "fn main() {{ var i = 0; var acc = 0; while (i < {iters}) \
             {{ acc = acc + i; i = i + 1; }} print acc; }}"
        )
    }

    fn run_to_completion(sched: &Scheduler, workers: usize) {
        sched.close();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| sched.worker_loop());
            }
        });
    }

    fn spec(tenant: &str, program: Arc<Program>, quota: TenantQuota) -> JobSpec {
        JobSpec {
            tenant: tenant.to_string(),
            program: ProgramRef::Bare(program),
            quota,
            fault: None,
        }
    }

    #[test]
    fn round_robin_interleaves_tenants_fairly() {
        let (tx, rx) = mpsc::channel();
        let sched = Scheduler::new(
            SchedConfig {
                fuel_slice: 100,
                ..SchedConfig::default()
            },
            tx,
        );
        // Tenant "hog" floods 16 long programs first; "small" submits one
        // short program afterwards. Round-robin must not make "small"
        // wait for the whole flood.
        let long = compiled(&loop_source(2_000));
        let short = compiled("fn main() { print 1; }");
        for _ in 0..16 {
            sched
                .submit(spec("hog", long.clone(), TenantQuota::default()))
                .expect("admitted");
        }
        sched
            .submit(spec("small", short, TenantQuota::default()))
            .expect("admitted");
        run_to_completion(&sched, 1);
        let done: Vec<Completion> = rx.try_iter().collect();
        assert_eq!(done.len(), 17);
        assert!(done.iter().all(|c| matches!(c.verdict, Verdict::Done)));
        let small_tick = done
            .iter()
            .find(|c| c.tenant == "small")
            .expect("small finished")
            .done_tick;
        let hog_last = done
            .iter()
            .filter(|c| c.tenant == "hog")
            .map(|c| c.done_tick)
            .max()
            .unwrap();
        // The small tenant's single program finishes well before the
        // hog's flood does, despite being submitted last.
        assert!(
            small_tick < hog_last / 2,
            "small finished at tick {small_tick}, hog flood at {hog_last}"
        );
    }

    #[test]
    fn quota_kills_are_typed_and_do_not_hurt_neighbors() {
        let (tx, rx) = mpsc::channel();
        let sched = Scheduler::new(
            SchedConfig {
                fuel_slice: 64,
                ..SchedConfig::default()
            },
            tx,
        );
        let runaway = lowered("fn main() { var i = 0; while (0 < 1) { i = i + 1; } }");
        let ok = compiled("fn main() { print 7; }");
        let tight = TenantQuota {
            max_instructions: 1_000,
            ..TenantQuota::default()
        };
        sched
            .submit(spec("guilty", runaway, tight))
            .expect("admitted");
        sched
            .submit(spec("innocent", ok, TenantQuota::default()))
            .expect("admitted");
        run_to_completion(&sched, 2);
        let done: Vec<Completion> = rx.try_iter().collect();
        let guilty = done.iter().find(|c| c.tenant == "guilty").unwrap();
        let innocent = done.iter().find(|c| c.tenant == "innocent").unwrap();
        assert!(matches!(
            guilty.verdict,
            Verdict::Quota(QuotaKind::Instructions)
        ));
        assert_eq!(guilty.fuel, 1_000, "killed at exactly the quota");
        assert!(matches!(innocent.verdict, Verdict::Done));
        let summaries = sched.tenant_summaries();
        let g = summaries.iter().find(|t| t.tenant == "guilty").unwrap();
        assert_eq!(g.quota_kills.instructions, 1);
        let i = summaries.iter().find(|t| t.tenant == "innocent").unwrap();
        assert_eq!(i.quota_kills.total(), 0);
        assert_eq!(i.completed, 1);
    }

    #[test]
    fn deadline_quota_kills_with_wall_clock() {
        let (tx, rx) = mpsc::channel();
        let sched = Scheduler::new(
            SchedConfig {
                fuel_slice: 32,
                ..SchedConfig::default()
            },
            tx,
        );
        let endless = lowered("fn main() { var i = 0; while (0 < 1) { i = i + 1; } }");
        let quota = TenantQuota {
            deadline: Some(Duration::from_millis(20)),
            ..TenantQuota::default()
        };
        sched.submit(spec("t", endless, quota)).expect("admitted");
        run_to_completion(&sched, 1);
        let c = rx.recv().expect("completion");
        assert!(matches!(c.verdict, Verdict::Quota(QuotaKind::Deadline)));
    }

    #[test]
    fn admission_rejects_typed_overload_and_tenant_busy() {
        let (tx, _rx) = mpsc::channel();
        let sched = Scheduler::new(
            SchedConfig {
                max_queue: 2,
                ..SchedConfig::default()
            },
            tx,
        );
        let p = compiled("fn main() { print 1; }");
        let narrow = TenantQuota {
            max_concurrent: 1,
            ..TenantQuota::default()
        };
        sched.submit(spec("a", p.clone(), narrow.clone())).unwrap();
        let busy = sched.submit(spec("a", p.clone(), narrow)).unwrap_err();
        assert!(matches!(busy, SubmitError::TenantBusy { active: 1 }));
        assert_eq!(busy.name(), "tenant-over-concurrency");
        sched
            .submit(spec("b", p.clone(), TenantQuota::default()))
            .unwrap();
        let full = sched
            .submit(spec("c", p.clone(), TenantQuota::default()))
            .unwrap_err();
        assert!(matches!(full, SubmitError::Overloaded { live: 2 }));
        assert_eq!(full.name(), "overloaded");
        sched.begin_drain();
        let draining = sched
            .submit(spec("d", p, TenantQuota::default()))
            .unwrap_err();
        assert!(matches!(draining, SubmitError::Draining));
        assert_eq!(draining.name(), "shedding");
    }

    #[test]
    fn panic_is_contained_to_the_job() {
        let _quiet = silence_hook();
        let (tx, rx) = mpsc::channel();
        let sched = Scheduler::new(
            SchedConfig {
                fuel_slice: 50,
                ..SchedConfig::default()
            },
            tx,
        );
        let long = compiled(&loop_source(1_000));
        let ok = compiled("fn main() { print 3; }");
        sched
            .submit(JobSpec {
                tenant: "bad".to_string(),
                program: ProgramRef::Bare(long),
                quota: TenantQuota::default(),
                fault: Some(JobFault::PanicAtSlice(2)),
            })
            .expect("admitted");
        sched
            .submit(spec("good", ok, TenantQuota::default()))
            .expect("admitted");
        run_to_completion(&sched, 2);
        let done: Vec<Completion> = rx.try_iter().collect();
        let bad = done.iter().find(|c| c.tenant == "bad").unwrap();
        let good = done.iter().find(|c| c.tenant == "good").unwrap();
        match &bad.verdict {
            Verdict::Panicked(msg) => assert!(msg.contains("injected"), "got {msg}"),
            v => panic!("expected Panicked, got {v:?}"),
        }
        assert!(matches!(good.verdict, Verdict::Done));
        // The panicked slice's partial fuel is dropped consistently on
        // both sides of the ledger, so reconciliation stays exact.
        assert!(sched.tenant_summaries().iter().all(|t| t.reconciled()));
    }

    #[test]
    fn drain_sheds_unstarted_and_finishes_started() {
        let (tx, rx) = mpsc::channel();
        let sched = Scheduler::new(
            SchedConfig {
                fuel_slice: 10,
                ..SchedConfig::default()
            },
            tx,
        );
        let p = compiled(&loop_source(500));
        for i in 0..4 {
            sched
                .submit(spec(&format!("t{i}"), p.clone(), TenantQuota::default()))
                .expect("admitted");
        }
        // No worker has run yet: every job is unstarted, so drain sheds
        // all of them.
        sched.begin_drain();
        std::thread::scope(|scope| {
            scope.spawn(|| sched.worker_loop());
        });
        let done: Vec<Completion> = rx.try_iter().collect();
        assert_eq!(done.len(), 4);
        assert!(done.iter().all(|c| matches!(c.verdict, Verdict::Shed)));
        assert!(done.iter().all(|c| c.fuel == 0 && c.slices == 0));
    }

    #[test]
    fn fuel_reconciles_exactly_across_many_tenants_and_workers() {
        let (tx, rx) = mpsc::channel();
        let sched = Scheduler::new(
            SchedConfig {
                fuel_slice: 77,
                ..SchedConfig::default()
            },
            tx,
        );
        let programs: Vec<Arc<Program>> = (0..5)
            .map(|i| compiled(&loop_source(100 + 37 * i)))
            .collect();
        for j in 0..40 {
            let p = programs[j % programs.len()].clone();
            sched
                .submit(spec(
                    &format!("tenant-{}", j % 7),
                    p,
                    TenantQuota::default(),
                ))
                .expect("admitted");
        }
        run_to_completion(&sched, 4);
        let done: Vec<Completion> = rx.try_iter().collect();
        assert_eq!(done.len(), 40);
        for c in &done {
            assert_eq!(c.fuel, c.vm_instructions, "per-job reconciliation");
        }
        let summaries = sched.tenant_summaries();
        assert!(summaries.iter().all(|t| t.reconciled()));
        let report = sched.report_json();
        assert_eq!(
            report.get("schema").and_then(Json::as_str),
            Some("oi.tenant.v1")
        );
        assert_eq!(report.get("reconciled").and_then(Json::as_bool), Some(true));
        let total: u64 = done.iter().map(|c| c.fuel).sum();
        assert_eq!(
            report.get("total_fuel").and_then(Json::as_i64),
            Some(total as i64)
        );
    }

    /// Satellite: hammer the shared `ArtifactCache` from scheduler worker
    /// threads with a budget tiny enough to force evictions mid-run, and
    /// prove Arc-held artifacts keep executing after eviction.
    #[test]
    fn artifact_cache_eviction_mid_run_is_safe_under_scheduler_load() {
        let sources: Vec<String> = (0..8)
            .map(|i| format!("fn main() {{ var x = {i}; print x + 1; }}"))
            .collect();
        let artifacts: Vec<Artifact> = sources
            .iter()
            .map(|s| {
                let p = oi_ir::lower::compile(s).expect("compiles");
                Artifact::new(optimize_with_ladder(
                    &p,
                    &LadderConfig::default(),
                    &Budget::unlimited(),
                ))
            })
            .collect();
        // Budget of roughly two artifacts: inserting all eight cycles the
        // LRU continuously.
        let per = artifacts[0].bytes.max(1);
        let cache = ArtifactCache::new(per * 2);
        let (tx, rx) = mpsc::channel();
        let sched = Scheduler::new(SchedConfig::default(), tx);
        let fp = config_fingerprint(&LadderConfig::default(), None, None);
        let mut inserted: Vec<Arc<Artifact>> = Vec::new();
        for (i, a) in artifacts.into_iter().enumerate() {
            let key = CacheKey::whole_program(&sources[i], fp);
            inserted.push(cache.insert(key, a));
        }
        // Every artifact beyond the last two has been evicted, but jobs
        // hold Arcs, so execution must still succeed for all of them.
        for (i, a) in inserted.iter().enumerate() {
            sched
                .submit(JobSpec {
                    tenant: format!("t{}", i % 3),
                    program: ProgramRef::Artifact(a.clone()),
                    quota: TenantQuota::default(),
                    fault: None,
                })
                .expect("admitted");
        }
        // Concurrent hammer: get/miss/insert churn while workers run.
        std::thread::scope(|scope| {
            let cache = &cache;
            let sources = &sources;
            scope.spawn(move || {
                for round in 0..50 {
                    for (i, s) in sources.iter().enumerate() {
                        let key = CacheKey::whole_program(s, fp);
                        if cache.get(&key).is_none() && (round + i) % 2 == 0 {
                            let p = oi_ir::lower::compile(s).expect("compiles");
                            let art = Artifact::new(optimize_with_ladder(
                                &p,
                                &LadderConfig::default(),
                                &Budget::unlimited(),
                            ));
                            cache.insert(key, art);
                        }
                    }
                }
            });
            sched.close();
            for _ in 0..3 {
                scope.spawn(|| sched.worker_loop());
            }
        });
        let done: Vec<Completion> = rx.try_iter().collect();
        assert_eq!(done.len(), inserted.len());
        for c in &done {
            assert!(
                matches!(c.verdict, Verdict::Done),
                "job {} ended {:?}",
                c.seq,
                c.verdict
            );
        }
        let stats = cache.stats();
        assert!(stats.evictions > 0, "tiny budget must actually evict");
    }

    /// Submitters racing a concurrent `begin_drain`: whatever interleaving
    /// the scheduler lands on, every admitted job must resolve to exactly
    /// one completion (natural verdict or typed `Shed`), late submitters
    /// must see `SubmitError::Draining`, and the per-tenant fuel books
    /// must still balance.
    #[test]
    fn racing_submitters_against_a_drain_lose_no_completions() {
        let (tx, rx) = mpsc::channel();
        let sched = Scheduler::new(
            SchedConfig {
                fuel_slice: 200,
                max_queue: 32,
            },
            tx,
        );
        let program = compiled(&loop_source(5_000));
        let accepted = AtomicU64::new(0);
        let rejected = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for _ in 0..2 {
                scope.spawn(|| sched.worker_loop());
            }
            for t in 0..4u64 {
                let program = Arc::clone(&program);
                let (sched, accepted, rejected) = (&sched, &accepted, &rejected);
                scope.spawn(move || {
                    for _ in 0..30 {
                        match sched.submit(spec(
                            &format!("tenant{t}"),
                            Arc::clone(&program),
                            TenantQuota::default(),
                        )) {
                            Ok(_) => {
                                accepted.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(_) => {
                                rejected.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        std::thread::yield_now();
                    }
                });
            }
            scope.spawn(|| {
                std::thread::sleep(Duration::from_millis(3));
                sched.begin_drain();
            });
        });
        assert!(
            matches!(
                sched.submit(spec("late", Arc::clone(&program), TenantQuota::default())),
                Err(SubmitError::Draining)
            ),
            "post-drain admission must be refused typed"
        );
        let done: Vec<Completion> = rx.try_iter().collect();
        let admitted = accepted.load(Ordering::Relaxed);
        assert_eq!(
            done.len() as u64,
            admitted,
            "every admitted job resolves exactly once ({} rejected)",
            rejected.load(Ordering::Relaxed)
        );
        let mut seqs: Vec<u64> = done.iter().map(|c| c.seq).collect();
        seqs.sort_unstable();
        seqs.dedup();
        assert_eq!(seqs.len(), done.len(), "no duplicated completions");
        assert!(
            done.iter()
                .all(|c| matches!(c.verdict, Verdict::Done | Verdict::Shed)),
            "a drain race may shed or finish, never anything else"
        );
        assert_eq!(sched.live(), 0);
        let summaries = sched.tenant_summaries();
        assert!(summaries.iter().all(TenantSummary::reconciled));
        assert_eq!(
            summaries.iter().map(TenantSummary::finished).sum::<u64>(),
            admitted
        );
    }

    /// A drain with no workers running yet flushes the entire queue with
    /// typed `Shed` completions — one per admitted job, none lost, none
    /// executed — and workers arriving afterwards find nothing to do.
    #[test]
    fn drain_flushes_unstarted_jobs_with_typed_sheds() {
        let (tx, rx) = mpsc::channel();
        let sched = Scheduler::new(
            SchedConfig {
                fuel_slice: 100,
                max_queue: 16,
            },
            tx,
        );
        let program = compiled(&loop_source(100));
        let seqs: Vec<u64> = (0..8)
            .map(|i| {
                sched
                    .submit(spec(
                        &format!("t{}", i % 2),
                        Arc::clone(&program),
                        TenantQuota::default(),
                    ))
                    .expect("admitted")
            })
            .collect();
        sched.begin_drain();
        assert!(matches!(
            sched.submit(spec("late", Arc::clone(&program), TenantQuota::default())),
            Err(SubmitError::Draining)
        ));
        std::thread::scope(|scope| {
            for _ in 0..2 {
                scope.spawn(|| sched.worker_loop());
            }
        });
        let done: Vec<Completion> = rx.try_iter().collect();
        assert_eq!(done.len(), 8);
        assert!(done.iter().all(|c| matches!(c.verdict, Verdict::Shed)));
        let mut got: Vec<u64> = done.iter().map(|c| c.seq).collect();
        got.sort_unstable();
        assert_eq!(got, seqs, "exactly the admitted jobs were flushed");
        assert_eq!(sched.live(), 0);
        let summaries = sched.tenant_summaries();
        assert!(summaries
            .iter()
            .all(|s| s.reconciled() && s.shed == s.finished()));
    }
}
