//! Synthetic program generation for scalability measurements.
//!
//! Generates uniform-object-model programs of parameterized size: `k`
//! container/child class pairs, each with constructors, accessor methods
//! and a driver loop. Every container field is inlinable by construction,
//! so these programs stress the analysis and the transformation
//! proportionally to program size.

use oi_support::rng::XorShift64;
use std::fmt::Write as _;

/// Parameters of a synthetic program.
#[derive(Clone, Copy, Debug)]
pub struct SynthParams {
    /// Number of (container, child) class pairs.
    pub class_pairs: usize,
    /// Iterations of each driver loop.
    pub loop_iters: usize,
    /// Extra helper call depth per pair (stresses interprocedural
    /// `CallByValue`).
    pub call_depth: usize,
    /// Seed for the constant-variation PRNG; the same seed always yields
    /// byte-identical source.
    pub seed: u64,
}

impl Default for SynthParams {
    fn default() -> Self {
        Self {
            class_pairs: 8,
            loop_iters: 16,
            call_depth: 2,
            seed: 0xD01B_1997,
        }
    }
}

/// Generates the program source.
pub fn generate(params: SynthParams) -> String {
    let mut rng = XorShift64::new(params.seed);
    let mut out = String::new();
    for k in 0..params.class_pairs {
        // Vary the arithmetic constants per pair so repeated pairs do not
        // collapse into identical code; the shape (and hence inlinability)
        // is unaffected.
        let mult = rng.range_i64(2, 7);
        let bias = rng.range_i64(0, 9);
        let _ = writeln!(
            out,
            "class Child{k} {{ field a; field b;
  method init(x, y) {{ self.a = x; self.b = y; }}
  method total() {{ return self.a + self.b; }}
}}
class Holder{k} {{ field c; field n;
  method init(x) {{ self.c = new Child{k}(x, x * {mult}); self.n = x + {bias}; }}
  method score() {{ return self.c.total() + self.n; }}
}}"
        );
        // A chain of helper functions passing the holder down by value-safe
        // reads (deepens the call graph without breaking inlinability).
        for d in 0..params.call_depth {
            let callee = if d + 1 == params.call_depth {
                format!("h{k}.score()")
            } else {
                format!("level{k}_{}(h{k})", d + 1)
            };
            let _ = writeln!(out, "fn level{k}_{d}(h{k}) {{ return {callee}; }}");
        }
    }
    let _ = writeln!(out, "fn main() {{");
    let _ = writeln!(out, "  var acc = 0;");
    for k in 0..params.class_pairs {
        let _ = writeln!(
            out,
            "  var i{k} = 0;
  while (i{k} < {iters}) {{
    var h = new Holder{k}(i{k});
    acc = acc + level{k}_0(h);
    i{k} = i{k} + 1;
  }}",
            iters = params.loop_iters
        );
    }
    let _ = writeln!(out, "  print acc;");
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_programs_compile_and_inline_everything() {
        for pairs in [1, 4, 12] {
            let src = generate(SynthParams {
                class_pairs: pairs,
                ..Default::default()
            });
            let p = oi_ir::lower::compile(&src).unwrap_or_else(|e| panic!("{}", e.render(&src)));
            let opt = oi_core::pipeline::optimize(&p, &Default::default());
            assert_eq!(
                opt.report.fields_inlined, pairs,
                "every Holder.c must inline: {:#?}",
                opt.report.outcomes
            );
            let base = oi_core::pipeline::baseline(&p, &Default::default());
            let a = oi_vm::run(&base, &oi_vm::VmConfig::default()).unwrap();
            let b = oi_vm::run(&opt.program, &oi_vm::VmConfig::default()).unwrap();
            assert_eq!(a.output, b.output);
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = generate(SynthParams::default());
        let b = generate(SynthParams::default());
        assert_eq!(a, b);
        let c = generate(SynthParams {
            seed: 7,
            ..Default::default()
        });
        assert_ne!(a, c);
    }

    #[test]
    fn size_scales_with_parameters() {
        let small = generate(SynthParams {
            class_pairs: 2,
            ..Default::default()
        });
        let large = generate(SynthParams {
            class_pairs: 16,
            ..Default::default()
        });
        assert!(large.len() > small.len() * 4);
    }
}
