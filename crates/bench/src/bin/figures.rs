//! Prints the paper's tables and figures.
//!
//! ```text
//! figures [fig14|fig15|fig16|fig17|detail|ablations|all] [--size small|default|large]
//! ```

use oi_bench::{ablations, fig14, fig15, fig16, fig17, fig17_detail, parse_size};
use oi_benchmarks::BenchSize;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut which = "all".to_owned();
    let mut size = BenchSize::Default;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--size" => {
                let v = it.next().map(String::as_str).unwrap_or("");
                match parse_size(v) {
                    Some(s) => size = s,
                    None => {
                        eprintln!("unknown size `{v}` (small|default|large)");
                        std::process::exit(2);
                    }
                }
            }
            other => which = other.to_owned(),
        }
    }

    match which.as_str() {
        "fig14" => print!("{}", fig14(size)),
        "fig15" => print!("{}", fig15(size)),
        "fig16" => print!("{}", fig16(size)),
        "fig17" => print!("{}", fig17(size)),
        "detail" => print!("{}", fig17_detail(size)),
        "ablations" => print!("{}", ablations(size)),
        "all" => {
            println!("{}", fig14(size));
            println!("{}", fig15(size));
            println!("{}", fig16(size));
            println!("{}", fig17(size));
            println!("{}", fig17_detail(size));
            println!("{}", ablations(size));
        }
        other => {
            eprintln!(
                "unknown figure `{other}` (fig14|fig15|fig16|fig17|detail|ablations|all)"
            );
            std::process::exit(2);
        }
    }
}
