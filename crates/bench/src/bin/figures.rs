//! Prints the paper's tables and figures.
//!
//! ```text
//! figures [fig14|fig15|fig16|fig17|detail|ablations|all]
//!         [--size small|default|large] [--json] [--out FILE]
//! ```
//!
//! `--json` emits the Figure 14–17 tables as one schema-stable JSON
//! document (`oi.figures.v1`) instead of text; `--out` writes it to a
//! file instead of stdout.

use oi_bench::{ablations, fig14, fig15, fig16, fig17, fig17_detail, figures_json, parse_size};
use oi_benchmarks::BenchSize;
use oi_support::cli::{Arg, ArgScanner};

fn main() {
    let mut which = "all".to_owned();
    let mut size = BenchSize::Default;
    let mut json = false;
    let mut out: Option<String> = None;
    let mut scanner = ArgScanner::from_env();
    while let Some(arg) = scanner.next() {
        let arg = arg.unwrap_or_else(|msg| {
            eprintln!("{msg}");
            std::process::exit(2);
        });
        match arg {
            Arg::Flag { name, value: None } => match name.as_str() {
                "size" => {
                    let v = scanner.value_for("--size").unwrap_or_default();
                    match parse_size(&v) {
                        Some(s) => size = s,
                        None => {
                            eprintln!("unknown size `{v}` (small|default|large)");
                            std::process::exit(2);
                        }
                    }
                }
                "json" => json = true,
                "out" => match scanner.value_for("--out") {
                    Ok(path) => out = Some(path),
                    Err(_) => {
                        eprintln!("`--out` needs a file path");
                        std::process::exit(2);
                    }
                },
                other => {
                    eprintln!("unknown flag `--{other}`");
                    std::process::exit(2);
                }
            },
            Arg::Flag { name, value } => {
                eprintln!("unknown flag `--{name}={}`", value.unwrap_or_default());
                std::process::exit(2);
            }
            Arg::Positional(other) => which = other,
        }
    }

    if out.is_some() && !json {
        eprintln!("`--out` only applies to `--json` output");
        std::process::exit(2);
    }
    if json {
        if which != "all" {
            eprintln!("`--json` emits all tables in one document; drop `{which}`");
            std::process::exit(2);
        }
        let doc = figures_json(size).to_string();
        match out {
            Some(path) => {
                if let Err(e) = std::fs::write(&path, doc + "\n") {
                    eprintln!("cannot write {path}: {e}");
                    std::process::exit(1);
                }
                eprintln!("wrote {path}");
            }
            None => println!("{doc}"),
        }
        return;
    }

    match which.as_str() {
        "fig14" => print!("{}", fig14(size)),
        "fig15" => print!("{}", fig15(size)),
        "fig16" => print!("{}", fig16(size)),
        "fig17" => print!("{}", fig17(size)),
        "detail" => print!("{}", fig17_detail(size)),
        "ablations" => print!("{}", ablations(size)),
        "all" => {
            println!("{}", fig14(size));
            println!("{}", fig15(size));
            println!("{}", fig16(size));
            println!("{}", fig17(size));
            println!("{}", fig17_detail(size));
            println!("{}", ablations(size));
        }
        other => {
            eprintln!("unknown figure `{other}` (fig14|fig15|fig16|fig17|detail|ablations|all)");
            std::process::exit(2);
        }
    }
}
