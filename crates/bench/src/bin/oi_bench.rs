//! The `oi-bench` binary: benchmark snapshots (`oi.bench.v1`) and the
//! noise-aware regression gate (`oi.benchdiff.v1`). All logic lives in
//! [`oi_bench::cli`] so `oic bench` shares it.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    ExitCode::from(oi_bench::cli::main(&args))
}
