//! `oic bench loadgen` — deterministic replayed load against an
//! in-process compile server.
//!
//! The harness synthesizes `N` distinct compilable sources, replays a
//! seeded Zipf-skewed request trace over them against an in-process
//! [`crate::serve::Server`], and emits a schema-stable `oi.load.v1`
//! document with the achieved cache hit rate and p50/p99 service
//! latencies split by cache outcome.
//!
//! Everything is deterministic: the trace is drawn from
//! [`oi_support::rng::XorShift64`] with a fixed seed, so two runs with
//! the same flags replay byte-identical request sequences. The document
//! carries its own verdict (`ok`) so ci.sh can gate on it:
//!
//! - zero errored requests,
//! - hit rate at or above the trace's theoretical floor
//!   (`(requests - distinct sources sampled) / requests` — every distinct
//!   source must miss exactly once, nothing else may),
//! - hit latency distribution well-formed (p99 present and finite),
//! - the server's `oi.metrics.v1` counters reconcile exactly with the
//!   harness's own request/hit/miss/error tallies.

use crate::client::RETRYABLE_KINDS;
use crate::harness::time_once;
use crate::serve::{Handled, ServeConfig, Server};
use oi_support::cli::{Arg, ArgScanner};
use oi_support::rng::XorShift64;
use oi_support::stats::{percentile, TimingStats};
use oi_support::Json;
use std::collections::{BTreeMap, BTreeSet};

/// Loadgen knobs (flags of `oic bench loadgen`).
#[derive(Clone, Debug)]
pub struct LoadgenConfig {
    /// Requests to replay.
    pub requests: u64,
    /// Distinct synthetic sources the trace draws from.
    pub sources: u64,
    /// PRNG seed for the Zipf draw.
    pub seed: u64,
    /// Zipf skew exponent (`1.0` is the classic heavy head).
    pub zipf_s: f64,
    /// Server cache budget in bytes.
    pub cache_bytes: usize,
    /// Immediate re-attempts allowed per request when the server answers
    /// a typed retryable refusal (brownout sheds, quarantine). The
    /// synchronous replay never sleeps — this records retry *outcomes*,
    /// the paced backoff contract lives in `oic client`.
    pub retries: u32,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            requests: 10_000,
            sources: 50,
            seed: 1,
            zipf_s: 1.0,
            cache_bytes: 64 << 20,
            retries: 0,
        }
    }
}

/// The replay's outcome — everything `oi.load.v1` carries.
#[derive(Clone, Debug)]
pub struct LoadReport {
    /// The configuration replayed.
    pub config: LoadgenConfig,
    /// Distinct source indices the trace actually touched.
    pub sampled_sources: u64,
    /// Requests answered from the cache.
    pub hits: u64,
    /// Requests that compiled fresh.
    pub misses: u64,
    /// Requests answered `ok:false`.
    pub errors: u64,
    /// Requests that needed at least one re-attempt.
    pub retried_requests: u64,
    /// Re-attempts beyond each request's first try, summed.
    pub retry_attempts: u64,
    /// Requests whose final answer was still a retryable refusal after
    /// the retry allowance ran out (each also counts in `errors`).
    pub give_ups: u64,
    /// `attempts -> requests that needed exactly that many attempts`.
    pub attempts_histogram: BTreeMap<u32, u64>,
    /// `hits / requests`.
    pub hit_rate: f64,
    /// The theoretical floor: `(requests - sampled_sources) / requests`.
    pub floor_hit_rate: f64,
    /// Robust summary of hit latencies (ns).
    pub hit_ns: TimingStats,
    /// Robust summary of miss (cold-compile) latencies (ns).
    pub miss_ns: TimingStats,
    /// Nearest-rank p50 of hit latencies (ns).
    pub hit_p50_ns: u128,
    /// Nearest-rank p99 of hit latencies (ns).
    pub hit_p99_ns: u128,
    /// Nearest-rank p50 of miss latencies (ns).
    pub miss_p50_ns: u128,
    /// Nearest-rank p99 of miss latencies (ns).
    pub miss_p99_ns: u128,
    /// `miss_p50 / hit_p99` — how much faster the *worst* typical hit is
    /// than the *median* cold compile.
    pub speedup_hit_p99_vs_miss_p50: f64,
    /// Whether the server's metrics counters match the harness tallies
    /// exactly.
    pub reconciled: bool,
    /// The server's final `oi.metrics.v1` document.
    pub metrics: Json,
    /// The gate verdict (see module docs).
    pub ok: bool,
}

impl LoadReport {
    /// The report as a schema-stable `oi.load.v1` document.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("schema", "oi.load.v1".into()),
            ("requests", self.config.requests.into()),
            ("distinct_sources", self.config.sources.into()),
            ("sampled_sources", self.sampled_sources.into()),
            ("seed", self.config.seed.into()),
            ("zipf_s", self.config.zipf_s.into()),
            ("cache_bytes", (self.config.cache_bytes as u64).into()),
            ("hits", self.hits.into()),
            ("misses", self.misses.into()),
            ("errors", self.errors.into()),
            ("retried_requests", self.retried_requests.into()),
            ("retry_attempts", self.retry_attempts.into()),
            ("give_ups", self.give_ups.into()),
            (
                "attempts_histogram",
                Json::Obj(
                    self.attempts_histogram
                        .iter()
                        .map(|(k, v)| (k.to_string(), Json::from(*v)))
                        .collect(),
                ),
            ),
            ("hit_rate", self.hit_rate.into()),
            ("floor_hit_rate", self.floor_hit_rate.into()),
            ("hit_ns", self.hit_ns.to_json()),
            ("miss_ns", self.miss_ns.to_json()),
            ("hit_p50_ns", (self.hit_p50_ns as u64).into()),
            ("hit_p99_ns", (self.hit_p99_ns as u64).into()),
            ("miss_p50_ns", (self.miss_p50_ns as u64).into()),
            ("miss_p99_ns", (self.miss_p99_ns as u64).into()),
            (
                "speedup_hit_p99_vs_miss_p50",
                self.speedup_hit_p99_vs_miss_p50.into(),
            ),
            ("reconciled", self.reconciled.into()),
            ("metrics", self.metrics.clone()),
            ("ok", self.ok.into()),
        ])
    }
}

/// One distinct, deterministically generated compilable source. Index
/// `i` varies class names and constants, so every source is
/// byte-distinct (distinct cache key) but lands on the same tier.
pub fn synthetic_source(i: u64) -> String {
    format!(
        "
        global KEEP;
        class Point{i} {{ field x; field y;
          method init(a, b) {{ self.x = a; self.y = b; }}
        }}
        class Rect{i} {{ field ll; field ur;
          method init(a, b) {{ self.ll = new Point{i}(a, a + {off}); self.ur = new Point{i}(b, b + 3); }}
          method span() {{ return self.ur.x - self.ll.x + self.ur.y - self.ll.y; }}
        }}
        fn main() {{
          var r = new Rect{i}({lo}, {hi});
          KEEP = r;
          print KEEP.span();
        }}",
        off = i % 5 + 1,
        lo = i % 7 + 1,
        hi = i % 11 + 10,
    )
}

/// A seeded Zipf(s) sampler over `{0, .., n-1}`: rank `k` is drawn with
/// probability proportional to `1 / (k + 1)^s`.
pub struct ZipfSampler {
    cumulative: Vec<f64>,
    total: f64,
}

impl ZipfSampler {
    /// A sampler over `n` ranks with skew `s`.
    pub fn new(n: u64, s: f64) -> ZipfSampler {
        let mut cumulative = Vec::with_capacity(n.max(1) as usize);
        let mut total = 0.0;
        for k in 0..n.max(1) {
            total += 1.0 / ((k + 1) as f64).powf(s);
            cumulative.push(total);
        }
        ZipfSampler { cumulative, total }
    }

    /// Draws one rank using `rng`.
    pub fn sample(&self, rng: &mut XorShift64) -> u64 {
        let u = (rng.next_u64() as f64 / u64::MAX as f64) * self.total;
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&u).expect("cumulative weights are finite"))
        {
            Ok(i) => i as u64,
            Err(i) => (i as u64).min(self.cumulative.len() as u64 - 1),
        }
    }
}

/// Replays the configured trace against a fresh in-process server and
/// returns the full report.
pub fn run_loadgen(config: &LoadgenConfig) -> LoadReport {
    let server = Server::new(ServeConfig {
        cache_bytes: config.cache_bytes,
        ..ServeConfig::default()
    });
    run_loadgen_on(&server, config)
}

/// Replays the trace against a caller-provided server — the seam that
/// lets harnesses pre-condition the server (force a brownout tier, warm
/// the cache) before the replay.
pub fn run_loadgen_on(server: &Server, config: &LoadgenConfig) -> LoadReport {
    let sources: Vec<String> = (0..config.sources).map(synthetic_source).collect();
    let sampler = ZipfSampler::new(config.sources, config.zipf_s);
    let mut rng = XorShift64::new(config.seed);

    let mut sampled: BTreeSet<u64> = BTreeSet::new();
    let (mut hits, mut misses, mut errors) = (0u64, 0u64, 0u64);
    let mut retried_requests = 0u64;
    let mut retry_attempts = 0u64;
    let mut give_ups = 0u64;
    let mut attempts_histogram: BTreeMap<u32, u64> = BTreeMap::new();
    let mut hit_samples: Vec<u128> = Vec::new();
    let mut miss_samples: Vec<u128> = Vec::new();

    for request_id in 0..config.requests {
        let rank = sampler.sample(&mut rng);
        sampled.insert(rank);
        let line = Json::obj(vec![
            ("id", request_id.into()),
            ("op", "compile".into()),
            ("source", sources[rank as usize].as_str().into()),
        ])
        .to_string();
        let mut attempts = 0u32;
        let (handled, wall) = loop {
            let (handled, wall): (Handled, _) = time_once(|| server.handle_line(&line));
            attempts += 1;
            let retryable = RETRYABLE_KINDS.contains(
                &handled
                    .response
                    .get("error_kind")
                    .and_then(Json::as_str)
                    .unwrap_or(""),
            );
            if !retryable || attempts > config.retries {
                break (handled, wall);
            }
        };
        *attempts_histogram.entry(attempts).or_insert(0) += 1;
        if attempts > 1 {
            retried_requests += 1;
            retry_attempts += u64::from(attempts - 1);
        }
        let cache_state = handled
            .response
            .get("cache")
            .and_then(Json::as_str)
            .unwrap_or("none")
            .to_string();
        server.observe_total(&cache_state, wall.median);
        let ok = handled
            .response
            .get("ok")
            .and_then(Json::as_bool)
            .unwrap_or(false);
        if !ok {
            errors += 1;
            let still_retryable = RETRYABLE_KINDS.contains(
                &handled
                    .response
                    .get("error_kind")
                    .and_then(Json::as_str)
                    .unwrap_or(""),
            );
            if still_retryable {
                give_ups += 1;
            }
            continue;
        }
        match cache_state.as_str() {
            "hit" => {
                hits += 1;
                hit_samples.push(wall.median);
            }
            _ => {
                misses += 1;
                miss_samples.push(wall.median);
            }
        }
    }

    hit_samples.sort_unstable();
    miss_samples.sort_unstable();
    let hit_p50_ns = percentile(&hit_samples, 50.0);
    let hit_p99_ns = percentile(&hit_samples, 99.0);
    let miss_p50_ns = percentile(&miss_samples, 50.0);
    let miss_p99_ns = percentile(&miss_samples, 99.0);

    let metrics = server.metrics().to_json();
    let metric = |name: &str| {
        metrics
            .get("counters")
            .and_then(|c| c.get(name))
            .and_then(Json::as_i64)
            .unwrap_or(0) as u64
    };
    // Exact reconciliation: the server's own counters must agree with
    // the harness's independent tallies, request for request. Every
    // re-attempt is its own server-side request, and every attempt
    // before a re-attempt was a refusal the server counted as an error.
    let reconciled = metric("cache.hits") == hits
        && metric("cache.misses") == misses
        && metric("serve.requests") == config.requests + retry_attempts
        && metric("serve.errors") == errors + retry_attempts;

    let hit_rate = if config.requests == 0 {
        0.0
    } else {
        hits as f64 / config.requests as f64
    };
    let floor_hit_rate = if config.requests == 0 {
        0.0
    } else {
        (config.requests - sampled.len() as u64) as f64 / config.requests as f64
    };
    let ok =
        errors == 0 && hit_rate >= floor_hit_rate && (hits == 0 || hit_p99_ns > 0) && reconciled;

    LoadReport {
        config: config.clone(),
        sampled_sources: sampled.len() as u64,
        hits,
        misses,
        errors,
        retried_requests,
        retry_attempts,
        give_ups,
        attempts_histogram,
        hit_rate,
        floor_hit_rate,
        hit_ns: TimingStats::from_nanos(hit_samples),
        miss_ns: TimingStats::from_nanos(miss_samples),
        hit_p50_ns,
        hit_p99_ns,
        miss_p50_ns,
        miss_p99_ns,
        speedup_hit_p99_vs_miss_p50: if hit_p99_ns == 0 {
            0.0
        } else {
            miss_p50_ns as f64 / hit_p99_ns as f64
        },
        reconciled,
        metrics,
        ok,
    }
}

const USAGE: &str = "usage: oic bench loadgen [--requests N] [--sources K] [--seed S] \
     [--zipf-s X] [--cache-bytes B] [--retries N] [--json] [--out FILE]\n\
     \n\
     Replays a seeded Zipf-skewed compile trace against an in-process\n\
     server and emits oi.load.v1. --retries N re-attempts typed retryable\n\
     refusals up to N times per request and records the outcome (attempts\n\
     histogram, give-ups). Exits 1 when the gate fails (errored requests,\n\
     hit rate under the trace's floor, or counters that do not\n\
     reconcile).";

fn usage_error(msg: &str) -> u8 {
    eprintln!("oic bench loadgen: {msg}\n\n{USAGE}");
    2
}

/// Entry point for `oic bench loadgen`. Returns the process exit code.
pub fn cli_main(args: &[String]) -> u8 {
    let mut config = LoadgenConfig::default();
    let mut json = false;
    let mut out: Option<String> = None;
    let mut scanner = ArgScanner::new(args.to_vec());
    while let Some(arg) = scanner.next() {
        let arg = match arg {
            Ok(a) => a,
            Err(e) => return usage_error(&e),
        };
        match arg {
            Arg::Flag { name, value: None } => match name.as_str() {
                "json" => json = true,
                "requests" => match flag_u64(&mut scanner, "--requests") {
                    Ok(n) => config.requests = n,
                    Err(e) => return usage_error(&e),
                },
                "sources" => match flag_u64(&mut scanner, "--sources") {
                    Ok(n) => config.sources = n,
                    Err(e) => return usage_error(&e),
                },
                "seed" => match flag_u64(&mut scanner, "--seed") {
                    Ok(n) => config.seed = n,
                    Err(e) => return usage_error(&e),
                },
                "cache-bytes" => match flag_u64(&mut scanner, "--cache-bytes") {
                    Ok(n) => config.cache_bytes = n as usize,
                    Err(e) => return usage_error(&e),
                },
                "retries" => match flag_u64(&mut scanner, "--retries") {
                    Ok(n) => config.retries = n.min(u64::from(u32::MAX)) as u32,
                    Err(e) => return usage_error(&e),
                },
                "zipf-s" => {
                    let v = scanner.value_for("--zipf-s").unwrap_or_default();
                    match v.parse::<f64>() {
                        Ok(s) if s.is_finite() && s >= 0.0 => config.zipf_s = s,
                        _ => {
                            return usage_error(&format!(
                                "`--zipf-s` needs a non-negative number, got `{v}`"
                            ))
                        }
                    }
                }
                "out" => match scanner.value_for("--out") {
                    Ok(path) if !path.is_empty() => out = Some(path),
                    _ => return usage_error("`--out` needs a file path"),
                },
                _ => return usage_error(&format!("unknown flag `--{name}`")),
            },
            Arg::Flag {
                name,
                value: Some(value),
            } => return usage_error(&format!("unknown flag `--{name}={value}`")),
            Arg::Positional(p) => {
                return usage_error(&format!("unexpected positional argument `{p}`"))
            }
        }
    }

    let report = run_loadgen(&config);
    let doc = report.to_json();
    if let Some(path) = &out {
        if let Err(e) = std::fs::write(path, format!("{doc}\n")) {
            eprintln!("oic bench loadgen: cannot write {path}: {e}");
            return 1;
        }
    }
    if json {
        println!("{doc}");
    } else {
        println!(
            "loadgen: {} requests over {} sources (seed {}, zipf {}): \
             {} hits / {} misses / {} errors, hit rate {:.4} (floor {:.4})",
            report.config.requests,
            report.config.sources,
            report.config.seed,
            report.config.zipf_s,
            report.hits,
            report.misses,
            report.errors,
            report.hit_rate,
            report.floor_hit_rate,
        );
        println!(
            "  hit  p50 {} ns, p99 {} ns\n  miss p50 {} ns, p99 {} ns  \
             (hit p99 is {:.1}x under miss p50)",
            report.hit_p50_ns,
            report.hit_p99_ns,
            report.miss_p50_ns,
            report.miss_p99_ns,
            report.speedup_hit_p99_vs_miss_p50,
        );
        if report.config.retries > 0 {
            println!(
                "  retried {} request(s) ({} re-attempts), {} give-up(s)",
                report.retried_requests, report.retry_attempts, report.give_ups,
            );
        }
        println!(
            "  counters reconciled: {}; gate: {}",
            report.reconciled,
            if report.ok { "ok" } else { "FAILED" }
        );
    }
    if report.ok {
        0
    } else {
        eprintln!("oic bench loadgen: gate failed (see report)");
        1
    }
}

/// Parses the positive-integer value of `flag`.
fn flag_u64(scanner: &mut ArgScanner, flag: &str) -> Result<u64, String> {
    let v = scanner.value_for(flag).unwrap_or_default();
    match v.parse::<u64>() {
        Ok(n) if n > 0 => Ok(n),
        _ => Err(format!("`{flag}` needs a positive integer, got `{v}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_sources_are_distinct_and_compile() {
        let mut seen = BTreeSet::new();
        for i in 0..50 {
            let src = synthetic_source(i);
            assert!(seen.insert(src.clone()), "source {i} not distinct");
            oi_ir::lower::compile(&src).unwrap_or_else(|e| {
                panic!("source {i} must compile: {}", e.render(&src));
            });
        }
    }

    #[test]
    fn zipf_sampler_is_deterministic_and_skewed() {
        let sampler = ZipfSampler::new(50, 1.0);
        let draw = |seed: u64| -> Vec<u64> {
            let mut rng = XorShift64::new(seed);
            (0..1000).map(|_| sampler.sample(&mut rng)).collect()
        };
        assert_eq!(draw(1), draw(1), "same seed, same trace");
        assert_ne!(draw(1), draw(2), "different seed, different trace");
        let trace = draw(1);
        assert!(trace.iter().all(|&r| r < 50));
        let head = trace.iter().filter(|&&r| r == 0).count();
        let tail = trace.iter().filter(|&&r| r == 49).count();
        assert!(
            head > tail,
            "rank 0 ({head}) should dominate rank 49 ({tail})"
        );
    }

    #[test]
    fn small_replay_meets_the_gate() {
        let config = LoadgenConfig {
            requests: 200,
            sources: 5,
            seed: 7,
            ..LoadgenConfig::default()
        };
        let report = run_loadgen(&config);
        assert_eq!(report.errors, 0);
        assert_eq!(report.hits + report.misses, 200);
        assert_eq!(report.misses, report.sampled_sources, "one miss per source");
        assert!(report.hit_rate >= report.floor_hit_rate);
        assert!(report.reconciled, "metrics must reconcile with tallies");
        assert!(report.ok);
        let doc = report.to_json();
        assert_eq!(doc.get("schema").and_then(Json::as_str), Some("oi.load.v1"));
        assert_eq!(
            doc.get("metrics")
                .and_then(|m| m.get("schema"))
                .and_then(Json::as_str),
            Some("oi.metrics.v1")
        );
    }

    #[test]
    fn replay_is_deterministic_in_shape() {
        let config = LoadgenConfig {
            requests: 100,
            sources: 4,
            seed: 3,
            ..LoadgenConfig::default()
        };
        let a = run_loadgen(&config);
        let b = run_loadgen(&config);
        assert_eq!(
            (a.hits, a.misses, a.errors, a.sampled_sources),
            (b.hits, b.misses, b.errors, b.sampled_sources)
        );
    }

    /// Retry outcome recording: a server pinned to cache-only sheds
    /// every cold compile, so each request burns its full retry
    /// allowance and gives up — the histogram, give-up tally, and gate
    /// must all say so.
    #[test]
    fn forced_brownout_retries_record_outcomes() {
        let server = Server::new(ServeConfig {
            brownout_target_ms: Some(10_000),
            ..ServeConfig::default()
        });
        server.force_brownout(oi_core::BrownoutLevel::CacheOnly);
        let config = LoadgenConfig {
            requests: 6,
            sources: 2,
            seed: 5,
            retries: 2,
            ..LoadgenConfig::default()
        };
        let report = run_loadgen_on(&server, &config);
        assert_eq!(report.errors, 6, "cold cache-only sheds everything");
        assert_eq!(report.give_ups, 6);
        assert_eq!(report.retried_requests, 6);
        assert_eq!(report.retry_attempts, 12, "two re-attempts per request");
        assert_eq!(report.attempts_histogram.get(&3), Some(&6));
        assert!(!report.ok, "a run that gave up must fail the gate");
        let doc = report.to_json();
        assert_eq!(doc.get("give_ups").and_then(Json::as_i64), Some(6));
        assert_eq!(
            doc.get("attempts_histogram")
                .and_then(|h| h.get("3"))
                .and_then(Json::as_i64),
            Some(6)
        );
    }

    /// With no retry allowance the new fields are inert zeros and the
    /// default gate is untouched.
    #[test]
    fn zero_retries_leaves_the_report_shape_inert() {
        let report = run_loadgen(&LoadgenConfig {
            requests: 50,
            sources: 3,
            seed: 2,
            ..LoadgenConfig::default()
        });
        assert_eq!(report.retried_requests, 0);
        assert_eq!(report.retry_attempts, 0);
        assert_eq!(report.give_ups, 0);
        assert_eq!(report.attempts_histogram.get(&1), Some(&50));
        assert!(report.ok);
    }

    /// The acceptance-criteria replay: 10k requests, Zipf over 50
    /// sources — hit rate ≥ 0.9, hits ≥ 10x faster at p99 than the cold
    /// p50, zero errors, exact counter reconciliation.
    #[test]
    fn acceptance_ten_thousand_request_replay() {
        let report = run_loadgen(&LoadgenConfig::default());
        assert_eq!(report.errors, 0, "zero errored requests");
        assert!(
            report.hit_rate >= 0.9,
            "hit rate {} under 0.9",
            report.hit_rate
        );
        assert!(
            report.hit_rate >= report.floor_hit_rate,
            "hit rate {} under floor {}",
            report.hit_rate,
            report.floor_hit_rate
        );
        assert!(report.hit_p99_ns > 0, "p99 must be a real latency");
        assert!(
            report.speedup_hit_p99_vs_miss_p50 >= 10.0,
            "cache hits must be >= 10x faster (p99 {} ns vs cold p50 {} ns)",
            report.hit_p99_ns,
            report.miss_p50_ns
        );
        assert!(report.reconciled, "metrics counters must reconcile exactly");
        assert!(report.ok);
    }
}
