//! Benchmark observatory: `oi.bench.v1` metric snapshots and the
//! `oi.benchdiff.v1` noise-aware comparator.
//!
//! [`take_snapshot`] runs every benchmark at one size and folds the
//! whole evaluation into a single schema-stable JSON document:
//!
//! - per-benchmark VM metrics for the baseline and inlined builds,
//! - Figure 14 effectiveness counts,
//! - analysis cost (contour statistics, worklist rounds, per-phase
//!   wall-clock from the `oi-trace` layer),
//! - a heap census per build, plus the derived header-elimination,
//!   inlining-coverage, and inline-locality figures,
//! - wall-clock order statistics from the [`crate::harness`], and
//! - environment provenance (size, sample count, cost model, git rev).
//!
//! [`compare`] diffs two snapshots metric by metric. The modeled VM is
//! deterministic, so the *gated* metrics (cycles, allocation counts,
//! census words, contour counts, ...) default to exact-match thresholds.
//! Each gated metric gets a three-way verdict — `improved`,
//! `within_noise`, or `regressed` — by comparing the relative delta
//! (inclusive) against a per-metric threshold.
//!
//! Wall-clock is noisy but still gated, with a threshold the snapshot
//! itself calibrates (see [`oi_support::stats`]): each row records the
//! noise floor measured from its own interleaved same-binary samples, and
//! the comparator regresses `wall_clock_ns.median` only when the paired
//! delta clears a multiple of both rows' floors (never less than
//! [`WALL_GATE_MIN_PCT`]) *and* the minimum corroborates the shift. Rows
//! without calibration (a single sample, or snapshots predating the
//! floor) fall back to the advisory report, as does every wall metric
//! when the caller opts out for cross-host compares (`--wall-advisory`).

use crate::harness;
use crate::size_name;
use oi_benchmarks::BenchSize;
use oi_support::stats;
use oi_support::trace::{self, TraceMode, Tracer};
use oi_support::Json;
use std::rc::Rc;

/// Schema tag of snapshot documents.
pub const SNAPSHOT_SCHEMA: &str = "oi.bench.v1";
/// Schema tag of comparison documents.
pub const DIFF_SCHEMA: &str = "oi.benchdiff.v1";

/// Default number of wall-clock samples per benchmark.
pub const DEFAULT_SAMPLES: usize = 5;

/// Entries kept per profile table when `--profile` embeds a truncated
/// execution profile in each benchmark row.
pub const PROFILE_TOP_N: usize = 3;

/// Options for [`take_snapshot_with`] beyond size and sample count.
#[derive(Clone, Debug, Default)]
pub struct SnapshotOptions {
    /// VM configuration for every run. Tests inject
    /// `test_spin_per_instr` here to fake a slowed interpreter and prove
    /// the wall gate catches it.
    pub vm: oi_vm::VmConfig,
    /// Embed a truncated (top-[`PROFILE_TOP_N`]) execution profile per
    /// benchmark row (`oic bench snapshot --profile`). Additive to the
    /// `oi.bench.v1` schema: absent unless requested.
    pub profile: bool,
}

/// Takes a full-suite snapshot with default options. `samples` counts the
/// timed `evaluate` runs per benchmark (the metric-collecting run is
/// extra and untimed). `git_rev` is recorded verbatim as provenance.
pub fn take_snapshot(size: BenchSize, samples: usize, git_rev: &str) -> Json {
    take_snapshot_with(size, samples, git_rev, &SnapshotOptions::default())
}

/// Takes a full-suite snapshot under explicit [`SnapshotOptions`].
pub fn take_snapshot_with(
    size: BenchSize,
    samples: usize,
    git_rev: &str,
    opts: &SnapshotOptions,
) -> Json {
    use oi_benchmarks::{all_benchmarks, evaluate};
    use oi_core::pipeline::InlineConfig;

    let vm = &opts.vm;
    let inline = InlineConfig::default();
    let mut rows = Vec::new();
    let mut tiers: Vec<String> = Vec::new();
    for bench in all_benchmarks(size) {
        // One traced evaluation collects the deterministic metrics and
        // the analysis-cost aggregates. A fresh tracer per benchmark
        // keeps the counters benchmark-local.
        let tracer = Rc::new(Tracer::for_mode(TraceMode::Off));
        let eval = {
            let _guard = trace::install(tracer.clone());
            evaluate(&bench, vm, &inline)
        };
        // The wall-clock samples run untraced so span bookkeeping does
        // not perturb them. `harness::measure` is the shared clock path;
        // the arrival-order samples feed the noise-floor calibration.
        let (_measurement, arrival) = harness::measure(samples.max(1), || {
            let timed = evaluate(&bench, vm, &inline);
            std::hint::black_box(&timed);
        });
        let noise_floor_pct = stats::noise_floor_pct(&arrival);
        let wall = stats::TimingStats::from_nanos(arrival);
        // Checked-execution cross-run: the inlined build must be
        // finding-free under the Full sanitizer. The measured metrics
        // above stay unchecked (`CheckLevel::Off`) so they are unaffected;
        // the checked run contributes a 0-pinned `sanitizer.findings`
        // gate and an advisory wall-clock overhead figure.
        let sanitizer = checked_cross_run(&bench, &inline, vm);
        let profile = opts.profile.then(|| profile_section(&bench, &inline, vm));
        tiers.push(eval.report.tier.clone());
        rows.push(benchmark_row(
            &eval,
            &tracer,
            &wall,
            noise_floor_pct,
            &sanitizer,
            profile,
        ));
    }
    // The fleet-level tier distribution mirrors `oic batch`'s
    // `tier_counts`: on a healthy tree every benchmark compiles at
    // `guarded-full`, and any other tier appearing here is a regression
    // the diff gate will catch via `effectiveness.degraded`.
    let tier_counts = Json::Obj(
        crate::batch::TIER_NAMES
            .iter()
            .map(|&t| {
                (
                    t.to_owned(),
                    tiers
                        .iter()
                        .filter(|have| have.as_str() == t)
                        .count()
                        .into(),
                )
            })
            .collect(),
    );
    Json::obj(vec![
        ("schema", SNAPSHOT_SCHEMA.into()),
        ("size", size_name(size).into()),
        ("samples", (samples.max(1) as u64).into()),
        ("cost_model", "default".into()),
        ("git_rev", git_rev.into()),
        ("batch", Json::obj(vec![("tier_counts", tier_counts)])),
        ("benchmarks", Json::Arr(rows)),
    ])
}

/// One checked (`Full`) run of a benchmark's inlined build: sanitizer
/// findings (0 on a healthy tree) and the checked run's wall-clock.
struct CheckedCrossRun {
    findings: u64,
    wall_ns: u64,
}

fn checked_cross_run(
    bench: &oi_benchmarks::Benchmark,
    inline: &oi_core::pipeline::InlineConfig,
    vm: &oi_vm::VmConfig,
) -> CheckedCrossRun {
    let program = oi_ir::lower::compile(&bench.source)
        .unwrap_or_else(|e| panic!("{}: {}", bench.name, e.render(&bench.source)));
    let opt = oi_core::pipeline::optimize(&program, inline);
    let checked = oi_vm::VmConfig {
        checked: oi_vm::CheckLevel::Full,
        ..*vm
    };
    let (run, wall) = harness::time_once(|| oi_vm::run(&opt.program, &checked));
    let run = run.unwrap_or_else(|e| panic!("{} checked: {e}", bench.name));
    CheckedCrossRun {
        findings: run.sanitizer.map_or(0, |s| s.total_findings),
        wall_ns: wall.median as u64,
    }
}

/// The `--profile` row section: top-[`PROFILE_TOP_N`] method, opcode, and
/// access-site tables for the baseline and inlined builds. Tables are
/// sorted hottest-first by the VM, so truncation keeps the head.
fn profile_section(
    bench: &oi_benchmarks::Benchmark,
    inline: &oi_core::pipeline::InlineConfig,
    vm: &oi_vm::VmConfig,
) -> Json {
    let program = oi_ir::lower::compile(&bench.source)
        .unwrap_or_else(|e| panic!("{}: {}", bench.name, e.render(&bench.source)));
    let base = oi_core::pipeline::baseline(&program, &inline.opt);
    let opt = oi_core::pipeline::optimize(&program, inline);
    let profiled = oi_vm::VmConfig {
        profile: true,
        ..*vm
    };
    let tables = |p, what: &str| {
        let run = oi_vm::run(p, &profiled).unwrap_or_else(|e| panic!("{} {what}: {e}", bench.name));
        let profile = run.profile.expect("profiling was enabled");
        truncate_tables(profile.to_json(), PROFILE_TOP_N)
    };
    Json::obj(vec![
        ("top_n", (PROFILE_TOP_N as u64).into()),
        ("baseline", tables(&base, "profiled baseline")),
        ("inlined", tables(&opt.program, "profiled inlined")),
    ])
}

/// Truncates every array value in a JSON object to its first `n`
/// entries (profile tables are hottest-first, so this keeps the top-N).
fn truncate_tables(doc: Json, n: usize) -> Json {
    match doc {
        Json::Obj(pairs) => Json::Obj(
            pairs
                .into_iter()
                .map(|(k, v)| match v {
                    Json::Arr(items) => (k, Json::Arr(items.into_iter().take(n).collect())),
                    other => (k, other),
                })
                .collect(),
        ),
        other => other,
    }
}

fn benchmark_row(
    eval: &oi_benchmarks::Evaluation,
    tracer: &Tracer,
    wall: &stats::TimingStats,
    noise_floor_pct: f64,
    sanitizer: &CheckedCrossRun,
    profile: Option<Json>,
) -> Json {
    let (without, with) = &eval.contours;
    let census = &eval.inlined_census;
    let base_census = &eval.baseline_census;
    let base_allocs = eval.baseline.allocations;
    let inline_coverage = if base_allocs == 0 {
        0.0
    } else {
        (base_allocs - eval.inlined.allocations.min(base_allocs)) as f64 / base_allocs as f64
    };
    let counters = Json::Obj(
        tracer
            .counters()
            .into_iter()
            .map(|(name, value)| (name, Json::Int(value)))
            .collect(),
    );
    let phases = Json::Obj(
        tracer
            .phase_profile()
            .into_iter()
            .map(|(name, stat)| {
                (
                    name,
                    Json::obj(vec![
                        ("count", stat.count.into()),
                        ("total_us", stat.total_us.into()),
                    ]),
                )
            })
            .collect(),
    );
    let mut row = Json::obj(vec![
        ("benchmark", eval.name.into()),
        ("baseline", eval.baseline.to_json()),
        ("inlined", eval.inlined.to_json()),
        ("speedup", eval.speedup().into()),
        ("manual_speedup", eval.manual_speedup().into()),
        (
            "effectiveness",
            Json::obj(vec![
                (
                    "total_object_fields",
                    eval.report.total_object_fields.into(),
                ),
                ("ideal", eval.report.ideal.into()),
                ("cxx", eval.report.cxx.into()),
                ("fields_inlined", eval.report.fields_inlined.into()),
                (
                    "array_sites_inlined",
                    eval.report.array_sites_inlined.into(),
                ),
                (
                    "auto",
                    (eval.report.fields_inlined + eval.report.array_sites_inlined).into(),
                ),
                ("retracted", eval.report.retractions.into()),
                ("tier", eval.report.tier.as_str().into()),
                // 0/1 rather than a bool so the numeric diff gate applies.
                ("degraded", u64::from(eval.report.degraded).into()),
            ]),
        ),
        (
            "heap_census",
            Json::obj(vec![
                ("baseline", base_census.to_json()),
                ("inlined", census.to_json()),
                (
                    "header_words_eliminated",
                    base_census
                        .header_words
                        .saturating_sub(census.header_words)
                        .into(),
                ),
                ("inline_coverage", inline_coverage.into()),
                (
                    "inline_locality",
                    eval.inlined.inline_locality_rate().into(),
                ),
            ]),
        ),
        (
            "analysis_cost",
            Json::obj(vec![
                (
                    "contours_per_method_without",
                    without.contours_per_method.into(),
                ),
                ("contours_per_method_with", with.contours_per_method.into()),
                ("object_contours_without", without.object_contours.into()),
                ("object_contours_with", with.object_contours.into()),
                ("clone_groups", eval.clone_groups.into()),
                ("counters", counters),
                ("phases", phases),
            ]),
        ),
        (
            // Order statistics are post-IQR-rejection; `samples` counts
            // what was taken, `rejected` what the fences dropped.
            // `noise_floor_pct` is the row's own calibration (interleaved
            // A/B split vs relative MAD, whichever is larger) and is what
            // arms the comparator's wall-clock gate.
            "wall_clock_ns",
            Json::obj(vec![
                ("min", (wall.min as u64).into()),
                ("median", (wall.median as u64).into()),
                ("max", (wall.max as u64).into()),
                ("samples", (wall.n as u64).into()),
                ("rejected", (wall.rejected as u64).into()),
                ("mad", (wall.mad as u64).into()),
                ("rel_mad_pct", wall.rel_mad_pct.into()),
                ("noise_floor_pct", noise_floor_pct.into()),
            ]),
        ),
        (
            // Additive section (older snapshots lack it; the comparator
            // skips absent metrics). `findings` is 0-pinned by the gate;
            // the checked wall-clock is advisory overhead only.
            "sanitizer",
            Json::obj(vec![
                ("level", "full".into()),
                ("findings", sanitizer.findings.into()),
                ("checked_wall_ns", sanitizer.wall_ns.into()),
            ]),
        ),
    ]);
    // `--profile` rows carry a truncated execution profile; the key is
    // absent otherwise, keeping plain snapshots byte-compatible.
    if let Some(profile) = profile {
        if let Json::Obj(pairs) = &mut row {
            pairs.push(("profile".to_string(), profile));
        }
    }
    row
}

/// Which direction is good for a gated metric.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Polarity {
    /// Smaller is better (cycles, misses, words).
    LowerIsBetter,
    /// Larger is better (speedup, coverage, locality).
    HigherIsBetter,
}

/// One gated metric: where it lives in a benchmark row, its polarity,
/// and its default noise threshold in percent.
///
/// The modeled VM is deterministic, so most defaults are `0.0`: any
/// change is a real change. A global `--threshold-pct` override loosens
/// every gate uniformly (CI smoke uses ±25%).
pub struct GateSpec {
    /// Dotted path below the benchmark row, e.g. `inlined.cycles`.
    pub path: &'static str,
    /// Good direction.
    pub polarity: Polarity,
    /// Default threshold, percent, compared inclusively.
    pub threshold_pct: f64,
}

/// The gated metric set. Wall-clock fields are deliberately absent —
/// they are reported in the diff's `advisory` section instead.
pub const GATES: &[GateSpec] = &[
    GateSpec {
        path: "baseline.cycles",
        polarity: Polarity::LowerIsBetter,
        threshold_pct: 0.0,
    },
    GateSpec {
        path: "inlined.cycles",
        polarity: Polarity::LowerIsBetter,
        threshold_pct: 0.0,
    },
    GateSpec {
        path: "speedup",
        polarity: Polarity::HigherIsBetter,
        threshold_pct: 0.0,
    },
    GateSpec {
        path: "inlined.allocations",
        polarity: Polarity::LowerIsBetter,
        threshold_pct: 0.0,
    },
    GateSpec {
        path: "inlined.words_allocated",
        polarity: Polarity::LowerIsBetter,
        threshold_pct: 0.0,
    },
    GateSpec {
        path: "inlined.cache_misses",
        polarity: Polarity::LowerIsBetter,
        threshold_pct: 0.0,
    },
    GateSpec {
        path: "inlined.inline_locality_rate",
        polarity: Polarity::HigherIsBetter,
        threshold_pct: 0.0,
    },
    GateSpec {
        path: "effectiveness.auto",
        polarity: Polarity::HigherIsBetter,
        threshold_pct: 0.0,
    },
    GateSpec {
        // Firewall retractions on benchmark programs mean the optimizer
        // shipped a decision the oracle had to withdraw: zero is the only
        // healthy value, and any appearance is a regression.
        path: "effectiveness.retracted",
        polarity: Polarity::LowerIsBetter,
        threshold_pct: 0.0,
    },
    GateSpec {
        // A benchmark compiling on a degraded (budget-exhausted) analysis
        // with unlimited budgets means the analysis stopped converging —
        // zero is the only healthy value.
        path: "effectiveness.degraded",
        polarity: Polarity::LowerIsBetter,
        threshold_pct: 0.0,
    },
    GateSpec {
        path: "heap_census.header_words_eliminated",
        polarity: Polarity::HigherIsBetter,
        threshold_pct: 0.0,
    },
    GateSpec {
        path: "heap_census.inline_coverage",
        polarity: Polarity::HigherIsBetter,
        threshold_pct: 0.0,
    },
    GateSpec {
        // Checked execution on the inlined build: zero findings is the
        // only healthy value, so this gate pins the metric at 0 — any
        // appearance means a transformation bug reached a benchmark.
        path: "sanitizer.findings",
        polarity: Polarity::LowerIsBetter,
        threshold_pct: 0.0,
    },
    GateSpec {
        path: "analysis_cost.counters.analysis.rounds",
        polarity: Polarity::LowerIsBetter,
        threshold_pct: 0.0,
    },
    GateSpec {
        path: "analysis_cost.counters.analysis.mcontours",
        polarity: Polarity::LowerIsBetter,
        threshold_pct: 0.0,
    },
];

/// Advisory wall-clock paths. `wall_clock_ns.median` is listed here for
/// the *fallback* report: when the statistical gate applies to a row pair
/// (both sides calibrated, gating not disabled) the median is judged by
/// the gate instead and skipped here. The checked-run overhead and the
/// raw minimum always stay advisory.
const ADVISORY: &[&str] = &[
    "wall_clock_ns.median",
    "wall_clock_ns.min",
    "sanitizer.checked_wall_ns",
];

/// The smallest threshold the wall-clock gate ever uses, in percent.
/// Below this, scheduler jitter on a shared machine outruns any
/// calibration the harness can do in a handful of samples.
pub const WALL_GATE_MIN_PCT: f64 = 10.0;

/// Headroom multiplier applied to the measured noise floors: the gate
/// demands a delta this many times the worse floor before it believes a
/// wall-clock shift (capped at 100% — a 2x slowdown always regresses).
const WALL_GATE_FLOOR_MULT: f64 = 4.0;

/// One armed wall-clock gate decision for a row pair.
struct WallGate {
    old_v: f64,
    new_v: f64,
    threshold_pct: f64,
    verdict: Verdict,
}

/// Arms and evaluates the wall-clock gate for one old/new row pair, or
/// returns `None` when either side lacks calibration: fewer than two
/// samples (no interleaved split exists) or no recorded noise floor
/// (snapshot predates it). Uncalibrated rows fall back to the advisory
/// report. The noise model owns this threshold — the global
/// `--threshold-pct` override deliberately does not apply.
fn wall_gate(old_row: &Json, new_row: &Json) -> Option<WallGate> {
    let old_v = lookup(old_row, "wall_clock_ns.median")?;
    let new_v = lookup(new_row, "wall_clock_ns.median")?;
    let old_floor = lookup(old_row, "wall_clock_ns.noise_floor_pct")?;
    let new_floor = lookup(new_row, "wall_clock_ns.noise_floor_pct")?;
    if lookup(old_row, "wall_clock_ns.samples")? < 2.0
        || lookup(new_row, "wall_clock_ns.samples")? < 2.0
    {
        return None;
    }
    let threshold_pct =
        (WALL_GATE_FLOOR_MULT * old_floor.max(new_floor)).clamp(WALL_GATE_MIN_PCT, 100.0);
    let mut verdict = classify(old_v, new_v, threshold_pct, Polarity::LowerIsBetter);
    // Corroboration: a genuine change moves the whole distribution, so
    // the minimum must agree with the median before a verdict leaves the
    // noise band. Noise is one-sided (preemption only adds time), which
    // makes the min the most stable location estimate available.
    if verdict != Verdict::WithinNoise {
        if let (Some(old_min), Some(new_min)) = (
            lookup(old_row, "wall_clock_ns.min"),
            lookup(new_row, "wall_clock_ns.min"),
        ) {
            if classify(old_min, new_min, threshold_pct, Polarity::LowerIsBetter) != verdict {
                verdict = Verdict::WithinNoise;
            }
        }
    }
    Some(WallGate {
        old_v,
        new_v,
        threshold_pct,
        verdict,
    })
}

/// Three-way comparison verdict for one gated metric.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Moved in the good direction beyond the threshold.
    Improved,
    /// |relative delta| within (inclusive) the threshold.
    WithinNoise,
    /// Moved in the bad direction beyond the threshold.
    Regressed,
}

impl Verdict {
    /// The verdict's JSON/text name.
    pub fn name(self) -> &'static str {
        match self {
            Verdict::Improved => "improved",
            Verdict::WithinNoise => "within_noise",
            Verdict::Regressed => "regressed",
        }
    }
}

/// Classifies one old/new pair against an inclusive threshold (percent).
///
/// Zero baselines have no relative delta: `0 -> 0` is within noise, and
/// `0 -> x` is judged purely by polarity (something appeared where
/// nothing was — good or bad depending on the metric's direction).
pub fn classify(old: f64, new: f64, threshold_pct: f64, polarity: Polarity) -> Verdict {
    if old == 0.0 {
        return if new == 0.0 {
            Verdict::WithinNoise
        } else {
            match polarity {
                Polarity::LowerIsBetter => Verdict::Regressed,
                Polarity::HigherIsBetter => Verdict::Improved,
            }
        };
    }
    let delta_pct = (new - old) / old.abs() * 100.0;
    if delta_pct.abs() <= threshold_pct {
        return Verdict::WithinNoise;
    }
    let got_worse = match polarity {
        Polarity::LowerIsBetter => delta_pct > 0.0,
        Polarity::HigherIsBetter => delta_pct < 0.0,
    };
    if got_worse {
        Verdict::Regressed
    } else {
        Verdict::Improved
    }
}

/// Looks up a dotted path inside a benchmark row. Counter names contain
/// dots themselves (`analysis.rounds`), so after descending into an
/// object whose next component does not exist, the remaining components
/// are retried joined back together.
fn lookup(row: &Json, path: &str) -> Option<f64> {
    fn descend<'j>(node: &'j Json, path: &str) -> Option<&'j Json> {
        if let Some(hit) = node.get(path) {
            return Some(hit);
        }
        let (head, rest) = path.split_once('.')?;
        descend(node.get(head)?, rest)
    }
    descend(row, path).and_then(Json::as_f64)
}

/// The outcome of [`compare`]: the rendered documents plus the verdict.
#[derive(Debug)]
pub struct Comparison {
    /// The `oi.benchdiff.v1` document.
    pub diff: Json,
    /// Human-readable report, one line per noteworthy metric.
    pub text: String,
    /// Whether any gated metric (or a missing benchmark) regressed.
    pub regressed: bool,
}

/// Compares two snapshot documents. `threshold_override_pct` replaces
/// every *deterministic* gate's default threshold when given (CI smoke
/// passes 25.0); the wall-clock gate's threshold comes from the rows' own
/// noise calibration and is never overridden. `wall_advisory` disarms the
/// wall-clock gate entirely (`--wall-advisory`) — the right mode when the
/// two snapshots came from different machines, where wall-clock deltas
/// mean nothing.
///
/// # Errors
///
/// Returns a message when either document is not an `oi.bench.v1`
/// snapshot or the two snapshots were taken at different sizes.
pub fn compare(
    old: &Json,
    new: &Json,
    threshold_override_pct: Option<f64>,
    wall_advisory: bool,
) -> Result<Comparison, String> {
    for (doc, which) in [(old, "OLD"), (new, "NEW")] {
        match doc.get("schema").and_then(Json::as_str) {
            Some(SNAPSHOT_SCHEMA) => {}
            Some(other) => {
                return Err(format!(
                    "{which}: expected schema {SNAPSHOT_SCHEMA}, got {other}"
                ))
            }
            None => return Err(format!("{which}: not an {SNAPSHOT_SCHEMA} document")),
        }
    }
    let old_size = old.get("size").and_then(Json::as_str).unwrap_or("?");
    let new_size = new.get("size").and_then(Json::as_str).unwrap_or("?");
    if old_size != new_size {
        return Err(format!(
            "size mismatch: OLD is --size {old_size}, NEW is --size {new_size}; compare like with like"
        ));
    }

    let empty = Vec::new();
    let old_rows = old
        .get("benchmarks")
        .and_then(Json::as_arr)
        .unwrap_or(&empty);
    let new_rows = new
        .get("benchmarks")
        .and_then(Json::as_arr)
        .unwrap_or(&empty);
    let row_name = |row: &Json| {
        row.get("benchmark")
            .and_then(Json::as_str)
            .map(str::to_string)
    };
    let find = |rows: &[Json], name: &str| {
        rows.iter()
            .find(|r| row_name(r).as_deref() == Some(name))
            .cloned()
    };

    let mut bench_docs = Vec::new();
    let mut text = String::new();
    let mut regressed = false;

    for old_row in old_rows {
        let Some(name) = row_name(old_row) else {
            continue;
        };
        let Some(new_row) = find(new_rows, &name) else {
            regressed = true;
            text.push_str(&format!(
                "REGRESSED  {name}: benchmark missing from NEW snapshot\n"
            ));
            bench_docs.push(Json::obj(vec![
                ("benchmark", name.as_str().into()),
                ("missing", true.into()),
                ("verdict", Verdict::Regressed.name().into()),
            ]));
            continue;
        };

        let mut metric_docs = Vec::new();
        let mut worst = Verdict::WithinNoise;
        for gate in GATES {
            let threshold = threshold_override_pct.unwrap_or(gate.threshold_pct);
            let (old_v, new_v) = (lookup(old_row, gate.path), lookup(&new_row, gate.path));
            let (Some(old_v), Some(new_v)) = (old_v, new_v) else {
                // A metric absent on either side is skipped, not gated:
                // older snapshots predate newer metrics.
                continue;
            };
            let verdict = classify(old_v, new_v, threshold, gate.polarity);
            let delta_pct = if old_v == 0.0 {
                Json::Null
            } else {
                ((new_v - old_v) / old_v.abs() * 100.0).into()
            };
            if verdict == Verdict::Regressed {
                regressed = true;
                worst = Verdict::Regressed;
                text.push_str(&format!(
                    "REGRESSED  {name} {path}: {old_v} -> {new_v} (threshold {threshold}%)\n",
                    path = gate.path
                ));
            } else if verdict == Verdict::Improved {
                if worst == Verdict::WithinNoise {
                    worst = Verdict::Improved;
                }
                text.push_str(&format!(
                    "improved   {name} {path}: {old_v} -> {new_v}\n",
                    path = gate.path
                ));
            }
            metric_docs.push(Json::obj(vec![
                ("metric", gate.path.into()),
                ("old", old_v.into()),
                ("new", new_v.into()),
                ("delta_pct", delta_pct),
                ("threshold_pct", threshold.into()),
                ("verdict", verdict.name().into()),
            ]));
        }

        // The statistical wall-clock gate: armed only when both rows are
        // calibrated and the caller did not opt out.
        let armed = (!wall_advisory)
            .then(|| wall_gate(old_row, &new_row))
            .flatten();
        if let Some(gate) = &armed {
            let delta_pct = if gate.old_v == 0.0 {
                Json::Null
            } else {
                ((gate.new_v - gate.old_v) / gate.old_v.abs() * 100.0).into()
            };
            if gate.verdict == Verdict::Regressed {
                regressed = true;
                worst = Verdict::Regressed;
                text.push_str(&format!(
                    "REGRESSED  {name} wall_clock_ns.median: {old_v} -> {new_v} (noise-derived threshold {threshold:.1}%)\n",
                    old_v = gate.old_v,
                    new_v = gate.new_v,
                    threshold = gate.threshold_pct
                ));
            } else if gate.verdict == Verdict::Improved {
                if worst == Verdict::WithinNoise {
                    worst = Verdict::Improved;
                }
                text.push_str(&format!(
                    "improved   {name} wall_clock_ns.median: {old_v} -> {new_v}\n",
                    old_v = gate.old_v,
                    new_v = gate.new_v
                ));
            }
            metric_docs.push(Json::obj(vec![
                ("metric", "wall_clock_ns.median".into()),
                ("old", gate.old_v.into()),
                ("new", gate.new_v.into()),
                ("delta_pct", delta_pct),
                ("threshold_pct", gate.threshold_pct.into()),
                ("verdict", gate.verdict.name().into()),
            ]));
        }

        let mut advisory_docs = Vec::new();
        for path in ADVISORY {
            if armed.is_some() && *path == "wall_clock_ns.median" {
                // Already judged by the gate; don't double-report.
                continue;
            }
            let (Some(old_v), Some(new_v)) = (lookup(old_row, path), lookup(&new_row, path)) else {
                continue;
            };
            let delta_pct = if old_v == 0.0 {
                Json::Null
            } else {
                ((new_v - old_v) / old_v.abs() * 100.0).into()
            };
            advisory_docs.push(Json::obj(vec![
                ("metric", (*path).into()),
                ("old", old_v.into()),
                ("new", new_v.into()),
                ("delta_pct", delta_pct),
            ]));
        }

        bench_docs.push(Json::obj(vec![
            ("benchmark", name.as_str().into()),
            ("verdict", worst.name().into()),
            ("metrics", Json::Arr(metric_docs)),
            ("advisory", Json::Arr(advisory_docs)),
        ]));
    }

    for new_row in new_rows {
        let Some(name) = row_name(new_row) else {
            continue;
        };
        if find(old_rows, &name).is_none() {
            // A benchmark new to NEW is informational, never a failure.
            text.push_str(&format!("note       {name}: new benchmark, no baseline\n"));
            bench_docs.push(Json::obj(vec![
                ("benchmark", name.as_str().into()),
                ("new", true.into()),
                ("verdict", Verdict::WithinNoise.name().into()),
            ]));
        }
    }

    text.push_str(if regressed {
        "verdict: REGRESSED\n"
    } else {
        "verdict: ok (all gated metrics improved or within noise)\n"
    });

    let diff = Json::obj(vec![
        ("schema", DIFF_SCHEMA.into()),
        ("size", old_size.into()),
        ("regressed", regressed.into()),
        ("benchmarks", Json::Arr(bench_docs)),
    ]);
    Ok(Comparison {
        diff,
        text,
        regressed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_is_inclusive_exactly_at_threshold() {
        // +10.0% against a 10% threshold sits exactly on the line: noise.
        let v = classify(100.0, 110.0, 10.0, Polarity::LowerIsBetter);
        assert_eq!(v, Verdict::WithinNoise);
        // A hair past the line regresses.
        let v = classify(100.0, 110.01, 10.0, Polarity::LowerIsBetter);
        assert_eq!(v, Verdict::Regressed);
        // Same magnitude in the good direction improves.
        let v = classify(100.0, 89.0, 10.0, Polarity::LowerIsBetter);
        assert_eq!(v, Verdict::Improved);
    }

    #[test]
    fn classify_zero_baselines() {
        assert_eq!(
            classify(0.0, 0.0, 0.0, Polarity::LowerIsBetter),
            Verdict::WithinNoise
        );
        // Cost appearing from nothing is a regression...
        assert_eq!(
            classify(0.0, 5.0, 25.0, Polarity::LowerIsBetter),
            Verdict::Regressed
        );
        // ...benefit appearing from nothing is an improvement.
        assert_eq!(
            classify(0.0, 0.5, 25.0, Polarity::HigherIsBetter),
            Verdict::Improved
        );
        // Cost vanishing entirely is an improvement.
        assert_eq!(
            classify(7.0, 0.0, 25.0, Polarity::LowerIsBetter),
            Verdict::Improved
        );
    }

    #[test]
    fn classify_respects_polarity() {
        assert_eq!(
            classify(1.0, 2.0, 0.0, Polarity::HigherIsBetter),
            Verdict::Improved
        );
        assert_eq!(
            classify(2.0, 1.0, 0.0, Polarity::HigherIsBetter),
            Verdict::Regressed
        );
    }

    fn tiny_snapshot(cycles: u64) -> Json {
        Json::obj(vec![
            ("schema", SNAPSHOT_SCHEMA.into()),
            ("size", "small".into()),
            (
                "benchmarks",
                Json::Arr(vec![Json::obj(vec![
                    ("benchmark", "toy".into()),
                    ("inlined", Json::obj(vec![("cycles", cycles.into())])),
                ])]),
            ),
        ])
    }

    #[test]
    fn self_compare_is_clean() {
        let snap = tiny_snapshot(1000);
        let cmp = compare(&snap, &snap, None, false).unwrap();
        assert!(!cmp.regressed);
        assert_eq!(cmp.diff.get("schema").unwrap().as_str(), Some(DIFF_SCHEMA));
        assert!(cmp.text.contains("verdict: ok"));
    }

    #[test]
    fn cycle_bump_regresses_and_names_the_culprit() {
        let cmp = compare(&tiny_snapshot(1000), &tiny_snapshot(1400), None, false).unwrap();
        assert!(cmp.regressed);
        assert_eq!(cmp.diff.get("regressed").unwrap(), &Json::Bool(true));
        assert!(
            cmp.text.contains("toy"),
            "text must name the benchmark:\n{}",
            cmp.text
        );
        assert!(
            cmp.text.contains("inlined.cycles"),
            "text must name the metric:\n{}",
            cmp.text
        );
    }

    #[test]
    fn threshold_override_loosens_every_gate() {
        let cmp = compare(
            &tiny_snapshot(1000),
            &tiny_snapshot(1200),
            Some(25.0),
            false,
        )
        .unwrap();
        assert!(!cmp.regressed, "{}", cmp.text);
    }

    #[test]
    fn missing_benchmark_is_a_regression_but_new_one_is_not() {
        let old = tiny_snapshot(1000);
        let empty = Json::obj(vec![
            ("schema", SNAPSHOT_SCHEMA.into()),
            ("size", "small".into()),
            ("benchmarks", Json::Arr(vec![])),
        ]);
        let cmp = compare(&old, &empty, None, false).unwrap();
        assert!(cmp.regressed);
        assert!(cmp.text.contains("missing from NEW"));

        let cmp = compare(&empty, &old, None, false).unwrap();
        assert!(!cmp.regressed);
        assert!(cmp.text.contains("new benchmark"));
    }

    #[test]
    fn size_mismatch_is_an_error() {
        let mut other = tiny_snapshot(1000);
        if let Json::Obj(pairs) = &mut other {
            for (k, v) in pairs.iter_mut() {
                if k == "size" {
                    *v = Json::Str("default".into());
                }
            }
        }
        let err = compare(&tiny_snapshot(1000), &other, None, false).unwrap_err();
        assert!(err.contains("size mismatch"), "{err}");
    }

    #[test]
    fn non_snapshot_documents_are_rejected() {
        let bogus = Json::obj(vec![("schema", "oi.figures.v1".into())]);
        assert!(compare(&bogus, &bogus, None, false).is_err());
        assert!(compare(&Json::Null, &Json::Null, None, false).is_err());
    }

    #[test]
    fn lookup_descends_and_rejoins_dotted_counter_names() {
        let row = Json::obj(vec![(
            "analysis_cost",
            Json::obj(vec![(
                "counters",
                Json::Obj(vec![("analysis.rounds".to_string(), Json::Int(4))]),
            )]),
        )]);
        assert_eq!(
            lookup(&row, "analysis_cost.counters.analysis.rounds"),
            Some(4.0)
        );
        assert_eq!(lookup(&row, "analysis_cost.counters.analysis.bogus"), None);
    }

    #[test]
    fn snapshot_document_is_schema_stable() {
        let snap = take_snapshot(BenchSize::Small, 1, "testrev");
        let parsed = Json::parse(&snap.to_string()).expect("snapshot must be valid JSON");
        assert_eq!(
            parsed.get("schema").unwrap().as_str(),
            Some(SNAPSHOT_SCHEMA)
        );
        assert_eq!(parsed.get("size").unwrap().as_str(), Some("small"));
        assert_eq!(parsed.get("git_rev").unwrap().as_str(), Some("testrev"));
        let rows = parsed.get("benchmarks").and_then(Json::as_arr).unwrap();
        assert_eq!(rows.len(), 5, "snapshot covers the whole suite");
        let tier_counts = parsed.get("batch").unwrap().get("tier_counts").unwrap();
        assert_eq!(
            tier_counts.get("guarded-full").and_then(Json::as_i64),
            Some(rows.len() as i64),
            "every benchmark lands on the top tier: {tier_counts}"
        );
        for row in rows {
            for key in [
                "benchmark",
                "baseline",
                "inlined",
                "speedup",
                "manual_speedup",
                "effectiveness",
                "heap_census",
                "analysis_cost",
                "wall_clock_ns",
                "sanitizer",
            ] {
                assert!(row.get(key).is_some(), "row missing {key}");
            }
            assert_eq!(
                lookup(row, "sanitizer.findings"),
                Some(0.0),
                "checked execution must be finding-free on benchmarks"
            );
            assert_eq!(
                lookup(row, "effectiveness.retracted"),
                Some(0.0),
                "benchmark programs must never need firewall retraction"
            );
            assert_eq!(
                lookup(row, "effectiveness.degraded"),
                Some(0.0),
                "unlimited budgets must never exhaust"
            );
            assert_eq!(
                row.get("effectiveness").unwrap().get("tier").unwrap(),
                &Json::Str("guarded-full".into()),
                "benchmarks must compile at full precision"
            );
            let cost = row.get("analysis_cost").unwrap();
            assert!(lookup(row, "analysis_cost.counters.analysis.rounds").unwrap_or(0.0) > 0.0);
            assert!(cost
                .get("phases")
                .unwrap()
                .get("pipeline.analyze")
                .is_some());
            let census = row.get("heap_census").unwrap();
            for key in [
                "baseline",
                "inlined",
                "header_words_eliminated",
                "inline_coverage",
                "inline_locality",
            ] {
                assert!(census.get(key).is_some(), "heap_census missing {key}");
            }
        }
    }

    #[test]
    fn snapshot_self_compare_is_within_noise_on_gated_metrics() {
        // Two snapshots of the same code: every gated metric is
        // deterministic, so the diff must be clean even at the exact
        // (0%) default thresholds. Wall-clock is single-sampled here, so
        // the wall gate stays disarmed (no calibration exists).
        let a = take_snapshot(BenchSize::Small, 1, "rev-a");
        let b = take_snapshot(BenchSize::Small, 1, "rev-b");
        let cmp = compare(&a, &b, None, false).unwrap();
        assert!(!cmp.regressed, "self-compare regressed:\n{}", cmp.text);
    }

    /// A snapshot row carrying only calibrated wall-clock data.
    fn wall_snapshot(median: u64, min: u64, samples: u64, floor_pct: f64) -> Json {
        Json::obj(vec![
            ("schema", SNAPSHOT_SCHEMA.into()),
            ("size", "small".into()),
            (
                "benchmarks",
                Json::Arr(vec![Json::obj(vec![
                    ("benchmark", "toy".into()),
                    (
                        "wall_clock_ns",
                        Json::obj(vec![
                            ("min", min.into()),
                            ("median", median.into()),
                            ("max", (median * 2).into()),
                            ("samples", samples.into()),
                            ("noise_floor_pct", floor_pct.into()),
                        ]),
                    ),
                ])]),
            ),
        ])
    }

    #[test]
    fn wall_gate_flags_a_clear_slowdown() {
        let old = wall_snapshot(100_000, 95_000, 5, 2.0);
        let new = wall_snapshot(200_000, 190_000, 5, 2.0);
        let cmp = compare(&old, &new, None, false).unwrap();
        assert!(cmp.regressed, "{}", cmp.text);
        assert!(
            cmp.text.contains("wall_clock_ns.median"),
            "text must name the wall metric:\n{}",
            cmp.text
        );
    }

    #[test]
    fn wall_gate_tolerates_deltas_under_the_calibrated_threshold() {
        // floor 2% -> threshold max(10, 4*2) = 10%; a 9% drift is noise.
        let old = wall_snapshot(100_000, 95_000, 5, 2.0);
        let new = wall_snapshot(109_000, 103_000, 5, 2.0);
        let cmp = compare(&old, &new, None, false).unwrap();
        assert!(!cmp.regressed, "{}", cmp.text);
    }

    #[test]
    fn wall_gate_scales_its_threshold_with_the_noise_floor() {
        // floor 20% on one side -> threshold 4*20 = 80%: a 50% delta that
        // would regress on a quiet machine is noise on a loud one.
        let old = wall_snapshot(100_000, 95_000, 5, 20.0);
        let new = wall_snapshot(150_000, 145_000, 5, 2.0);
        let cmp = compare(&old, &new, None, false).unwrap();
        assert!(!cmp.regressed, "{}", cmp.text);
    }

    #[test]
    fn wall_gate_requires_the_min_to_corroborate_the_median() {
        // Median doubled but the fastest run is unchanged: one-sided
        // scheduler noise, not a real slowdown.
        let old = wall_snapshot(100_000, 95_000, 5, 2.0);
        let new = wall_snapshot(200_000, 95_500, 5, 2.0);
        let cmp = compare(&old, &new, None, false).unwrap();
        assert!(!cmp.regressed, "{}", cmp.text);
    }

    #[test]
    fn wall_gate_stays_disarmed_without_calibration() {
        // Single-sample rows have no interleaved split to calibrate from:
        // a huge delta must fall back to the advisory report.
        let old = wall_snapshot(100_000, 100_000, 1, 0.0);
        let new = wall_snapshot(300_000, 300_000, 1, 0.0);
        let cmp = compare(&old, &new, None, false).unwrap();
        assert!(!cmp.regressed, "{}", cmp.text);

        // Rows predating the floor field (legacy snapshots) likewise.
        let legacy = tiny_snapshot(1000);
        let cmp = compare(&legacy, &legacy, None, false).unwrap();
        assert!(!cmp.regressed, "{}", cmp.text);
    }

    #[test]
    fn wall_advisory_mode_never_gates_wall_clock() {
        let old = wall_snapshot(100_000, 95_000, 5, 2.0);
        let new = wall_snapshot(400_000, 390_000, 5, 2.0);
        let cmp = compare(&old, &new, None, true).unwrap();
        assert!(!cmp.regressed, "{}", cmp.text);
    }

    #[test]
    fn threshold_override_does_not_loosen_the_wall_gate() {
        // --threshold-pct loosens deterministic gates only: the wall
        // gate's threshold belongs to the noise model.
        let old = wall_snapshot(100_000, 95_000, 5, 2.0);
        let new = wall_snapshot(200_000, 190_000, 5, 2.0);
        let cmp = compare(&old, &new, Some(1000.0), false).unwrap();
        assert!(cmp.regressed, "{}", cmp.text);
    }

    #[test]
    fn slowed_interpreter_is_flagged_by_the_wall_gate() {
        // The acceptance experiment in miniature: same tree, but the new
        // snapshot runs on an interpreter with a per-instruction spin.
        // Gated VM metrics are modeled and must stay identical; the wall
        // gate alone must catch the slowdown.
        let a = take_snapshot(BenchSize::Small, 3, "rev-a");
        let slowed = SnapshotOptions {
            vm: oi_vm::VmConfig {
                test_spin_per_instr: 2_000,
                ..oi_vm::VmConfig::default()
            },
            profile: false,
        };
        let b = take_snapshot_with(BenchSize::Small, 3, "rev-b", &slowed);
        let cmp = compare(&a, &b, None, false).unwrap();
        assert!(cmp.regressed, "spin went unnoticed:\n{}", cmp.text);
        assert!(
            cmp.text.contains("wall_clock_ns.median"),
            "the wall gate must be what fired:\n{}",
            cmp.text
        );
        // ...and nothing else: every deterministic gate stays clean.
        for line in cmp.text.lines() {
            if line.starts_with("REGRESSED") {
                assert!(
                    line.contains("wall_clock_ns.median"),
                    "non-wall gate fired on identical code:\n{}",
                    cmp.text
                );
            }
        }
    }

    #[test]
    fn snapshot_with_profile_embeds_truncated_tables() {
        let opts = SnapshotOptions {
            profile: true,
            ..SnapshotOptions::default()
        };
        let snap = take_snapshot_with(BenchSize::Small, 1, "rev", &opts);
        let rows = snap.get("benchmarks").and_then(Json::as_arr).unwrap();
        for row in rows {
            let profile = row.get("profile").expect("row missing profile section");
            assert_eq!(
                profile.get("top_n").and_then(Json::as_i64),
                Some(PROFILE_TOP_N as i64)
            );
            for build in ["baseline", "inlined"] {
                let tables = profile.get(build).unwrap();
                let methods = tables.get("methods").and_then(Json::as_arr).unwrap();
                assert!(!methods.is_empty(), "{build} profile has no methods");
                for table in ["methods", "sites", "opcodes", "accesses"] {
                    let len = tables.get(table).and_then(Json::as_arr).unwrap().len();
                    assert!(len <= PROFILE_TOP_N, "{build}.{table} not truncated");
                }
            }
        }
        // Plain snapshots must not carry the section.
        let plain = take_snapshot(BenchSize::Small, 1, "rev");
        let rows = plain.get("benchmarks").and_then(Json::as_arr).unwrap();
        assert!(rows.iter().all(|r| r.get("profile").is_none()));
    }
}
