//! Adversarial fuzzing for the soundness firewall.
//!
//! Where [`crate::synth`] generates programs that are inlinable *by
//! construction*, this generator aims programs at the decision rules:
//! aliasing confluences, children escaping through globals, subclass
//! layout conflicts, identity comparisons, nilable fields, mixed arrays,
//! unbounded recursion, and deep recursive nesting that saturates the
//! analysis' contour budgets — shapes the optimizer must either reject or
//! transform without changing behavior. Every case runs through
//! [`oi_core::firewall::optimize_guarded`]; a divergence the firewall
//! cannot repair, or a panic anywhere in the pipeline, is a finding. A
//! greedy line-dropping shrinker minimizes findings before reporting.
//!
//! The driver is exposed as `oic fuzz --runs N --seed S [--json]`,
//! emitting a schema-stable `oi.fuzz.v1` document.

use oi_core::firewall::{compare_runs, optimize_guarded, Divergence, FirewallConfig};
use oi_core::pipeline::{try_baseline, try_optimize, InlineConfig};
use oi_support::panic::{contained, silence_hook};
use oi_support::rng::XorShift64;
use oi_support::Json;
use oi_vm::{run, CheckLevel, VmConfig};
use std::fmt::Write as _;

/// Fuzzing-loop parameters.
#[derive(Clone, Copy, Debug)]
pub struct FuzzConfig {
    /// Number of generated programs.
    pub runs: usize,
    /// Base seed; case `i` derives its own stream from `seed` and `i`.
    pub seed: u64,
    /// VM budgets for the oracle runs. The defaults are deliberately tight
    /// — adversarial programs recurse and loop, and a resource-limited run
    /// is treated as indeterminate by the oracle, not as a divergence.
    pub vm: VmConfig,
    /// Run each case's inlined build under `Full` sanitizer checking
    /// (`oic fuzz --checked`). Off by default: checking roughly doubles
    /// per-case cost, and the unchecked oracle is the baseline contract.
    pub checked: bool,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        Self {
            runs: 100,
            seed: 1,
            vm: fuzz_vm_config(),
            checked: false,
        }
    }
}

/// The tight VM budget used for fuzzing: enough for every generated
/// program to finish, small enough that runaway recursion fails fast.
pub fn fuzz_vm_config() -> VmConfig {
    VmConfig {
        max_instructions: 2_000_000,
        max_depth: 256,
        max_heap_words: 1 << 20,
        ..VmConfig::default()
    }
}

/// One unrepaired divergence found by the fuzzer.
#[derive(Clone, Debug)]
pub struct DivergentCase {
    /// Case index within the fuzzing loop.
    pub case: usize,
    /// The case's derived seed (regenerates the program exactly).
    pub seed: u64,
    /// Rendered divergences from the firewall.
    pub divergences: Vec<String>,
    /// The shrunken source that still diverges.
    pub minimized: String,
}

/// One pipeline panic found by the fuzzer.
#[derive(Clone, Debug)]
pub struct PanicCase {
    /// Case index within the fuzzing loop.
    pub case: usize,
    /// The case's derived seed.
    pub seed: u64,
    /// The panic payload, when it was a string.
    pub message: String,
}

/// The outcome of one fuzzing session.
#[derive(Clone, Debug, Default)]
pub struct FuzzReport {
    /// Requested number of cases.
    pub runs: usize,
    /// Base seed.
    pub seed: u64,
    /// Cases whose generated source compiled (all should).
    pub compiled: usize,
    /// Divergences the firewall could not repair.
    pub divergent: Vec<DivergentCase>,
    /// Pipeline panics.
    pub panics: Vec<PanicCase>,
    /// Total decisions retracted by the firewall across all cases.
    pub retractions: usize,
    /// Cases where retraction repaired an initially-diverging build.
    pub repaired: usize,
    /// Total sanitizer findings the checked oracle probes reported
    /// (additive `oi.fuzz.v1` field; always 0 in unchecked sessions, and
    /// expected 0 in checked sessions of a healthy tree).
    pub sanitizer_findings: u64,
}

impl FuzzReport {
    /// `true` when the session found nothing: no unrepaired divergence and
    /// no panic.
    pub fn ok(&self) -> bool {
        self.divergent.is_empty() && self.panics.is_empty()
    }

    /// The report as a schema-stable `oi.fuzz.v1` document.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("schema", "oi.fuzz.v1".into()),
            ("runs", self.runs.into()),
            ("seed", self.seed.into()),
            ("compiled", self.compiled.into()),
            (
                "divergent",
                Json::Arr(
                    self.divergent
                        .iter()
                        .map(|d| {
                            Json::obj(vec![
                                ("case", d.case.into()),
                                ("seed", d.seed.into()),
                                (
                                    "divergences",
                                    Json::Arr(
                                        d.divergences.iter().map(|s| s.clone().into()).collect(),
                                    ),
                                ),
                                ("minimized", d.minimized.clone().into()),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "panics",
                Json::Arr(
                    self.panics
                        .iter()
                        .map(|p| {
                            Json::obj(vec![
                                ("case", p.case.into()),
                                ("seed", p.seed.into()),
                                ("message", p.message.clone().into()),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("retractions", self.retractions.into()),
            ("repaired", self.repaired.into()),
            ("ok", self.ok().into()),
            // Additive (v1-compatible) field: present since the checked
            // execution PR, ignored by older consumers.
            ("sanitizer_findings", self.sanitizer_findings.into()),
        ])
    }
}

/// The per-case seed for case `i` of a session seeded with `seed`.
pub fn case_seed(seed: u64, i: usize) -> u64 {
    // One splitmix-style step keeps nearby (seed, i) pairs unrelated.
    let mut z = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(i as u64);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^ (z >> 31)
}

/// Generates one adversarial program from a seed. The same seed always
/// yields byte-identical source.
///
/// A program is 2–4 *sections*; each section is an independent scenario
/// instantiated with a unique suffix, so the shrinker can drop whole
/// scenarios without breaking the rest.
pub fn generate_adversarial(seed: u64) -> String {
    let mut rng = XorShift64::new(seed);
    let sections = 2 + rng.below(3);
    let mut decls = String::new();
    let mut main = String::new();
    for k in 0..sections {
        let scenario = rng.below(SCENARIOS);
        emit_scenario(scenario, k, &mut rng, &mut decls, &mut main);
    }
    format!("{decls}fn main() {{\n{main}}}\n")
}

/// Number of distinct scenarios [`emit_scenario`] knows.
const SCENARIOS: usize = 12;

/// Appends scenario `which` (with unique suffix `k`) to the declaration
/// and main-body accumulators. Every scenario prints something derived
/// from its objects so layout bugs become observable.
fn emit_scenario(
    which: usize,
    k: usize,
    rng: &mut XorShift64,
    decls: &mut String,
    main: &mut String,
) {
    let a = rng.range_i64(1, 50);
    let b = rng.range_i64(1, 50);
    let n = rng.range_i64(2, 9);
    match which {
        // Clean inlinable pair, escaping through a global so the container
        // stays on the heap and the inline layout is actually exercised.
        0 => {
            let _ = writeln!(
                decls,
                "global KEEP{k};
class Pt{k} {{ field x; field y; method init(p, q) {{ self.x = p; self.y = q; }} }}
class Box{k} {{ field lo; field hi;
  method init(p, q) {{ self.lo = new Pt{k}(p, p + 1); self.hi = new Pt{k}(q, q + 2); }}
  method span() {{ return self.hi.x - self.lo.x + self.hi.y - self.lo.y; }} }}"
            );
            let _ = writeln!(
                main,
                "  var bx{k} = new Box{k}({a}, {b});
  KEEP{k} = bx{k};
  print KEEP{k}.lo.x + KEEP{k}.span();"
            );
        }
        // Aliasing confluence: one child stored into two containers, then
        // mutated through one and read through the other. Inlining the
        // field would duplicate the child and lose the write.
        1 => {
            let _ = writeln!(
                decls,
                "class Cell{k} {{ field v; method init(p) {{ self.v = p; }} }}
class Holder{k} {{ field c; method init(c0) {{ self.c = c0; }} }}"
            );
            let _ = writeln!(
                main,
                "  var shared{k} = new Cell{k}({a});
  var h1{k} = new Holder{k}(shared{k});
  var h2{k} = new Holder{k}(shared{k});
  h1{k}.c.v = {b};
  print h2{k}.c.v;
  print h1{k}.c.v + shared{k}.v;"
            );
        }
        // Escaping child: the child leaks through a global *after* being
        // stored into the container, then is mutated via the global.
        2 => {
            let _ = writeln!(
                decls,
                "global LEAK{k};
class Inner{k} {{ field w; method init(p) {{ self.w = p; }} }}
class Outer{k} {{ field kid; method init(p) {{ self.kid = new Inner{k}(p); }} }}"
            );
            let _ = writeln!(
                main,
                "  var o{k} = new Outer{k}({a});
  LEAK{k} = o{k}.kid;
  LEAK{k}.w = LEAK{k}.w + {b};
  print o{k}.kid.w;"
            );
        }
        // Identity comparison: `===` on a value loaded from the field.
        // Inlining would make the loaded interior distinct from the
        // original reference.
        3 => {
            let _ = writeln!(
                decls,
                "class Tag{k} {{ field t; method init(p) {{ self.t = p; }} }}
class Owner{k} {{ field tag; method init(g) {{ self.tag = g; }} }}"
            );
            let _ = writeln!(
                main,
                "  var g{k} = new Tag{k}({a});
  var ow{k} = new Owner{k}(g{k});
  if (ow{k}.tag === g{k}) {{ print 1; }} else {{ print 0; }}
  print ow{k}.tag.t;"
            );
        }
        // Subclass layout conflict: the same field holds two classes with
        // different shapes depending on the constructor path.
        4 => {
            let _ = writeln!(
                decls,
                "global PILE{k};
class Small{k} {{ field p; method init(x) {{ self.p = x; }} method get() {{ return self.p; }} }}
class Big{k} : Small{k} {{ field q;
  method init(x) {{ self.p = x; self.q = x * 2; }}
  method get() {{ return self.p + self.q; }} }}
class Slot{k} {{ field item;
  method init(x, big) {{
    if (big > 0) {{ self.item = new Big{k}(x); }} else {{ self.item = new Small{k}(x); }}
  }} }}"
            );
            let _ = writeln!(
                main,
                "  var s1{k} = new Slot{k}({a}, 1);
  var s2{k} = new Slot{k}({b}, 0);
  PILE{k} = s1{k};
  print s1{k}.item.get() + s2{k}.item.get();
  print PILE{k}.item.get();"
            );
        }
        // Nilable field: the field starts nil and is only sometimes
        // assigned; reads are guarded. Inlining nil is unrepresentable.
        5 => {
            let _ = writeln!(
                decls,
                "class Leaf{k} {{ field d; method init(x) {{ self.d = x; }} }}
class Maybe{k} {{ field leaf;
  method init(x) {{ if (x > {b}) {{ self.leaf = new Leaf{k}(x); }} }}
  method read() {{ if (self.leaf === nil) {{ return 0 - 1; }} return self.leaf.d; }} }}"
            );
            let _ = writeln!(
                main,
                "  print new Maybe{k}({a}).read();
  print new Maybe{k}({b} + 1).read();"
            );
        }
        // Uniform array: every element the same class — the inline-array
        // candidate (§5.3).
        6 => {
            let _ = writeln!(
                decls,
                "class El{k} {{ field u; field w;
  method init(x) {{ self.u = x; self.w = x * 3; }}
  method sum() {{ return self.u + self.w; }} }}"
            );
            let _ = writeln!(
                main,
                "  var arr{k} = array({n});
  var i{k} = 0;
  while (i{k} < {n}) {{ arr{k}[i{k}] = new El{k}(i{k} + {a}); i{k} = i{k} + 1; }}
  var acc{k} = 0;
  i{k} = 0;
  while (i{k} < {n}) {{ acc{k} = acc{k} + arr{k}[i{k}].sum(); i{k} = i{k} + 1; }}
  print acc{k};"
            );
        }
        // Mixed array: two element classes plus a nil hole — defeats the
        // uniform-content requirement.
        7 => {
            let _ = writeln!(
                decls,
                "class Ea{k} {{ field v; method init(x) {{ self.v = x; }} method val() {{ return self.v; }} }}
class Eb{k} {{ field v; field z;
  method init(x) {{ self.v = x; self.z = x + 1; }}
  method val() {{ return self.v + self.z; }} }}"
            );
            let _ = writeln!(
                main,
                "  var mix{k} = array(3);
  mix{k}[0] = new Ea{k}({a});
  mix{k}[1] = new Eb{k}({b});
  var t{k} = 0;
  if (mix{k}[2] === nil) {{ t{k} = 1; }}
  print mix{k}[0].val() + mix{k}[1].val() + t{k};"
            );
        }
        // Recursive structure: a cons list long enough to matter, short
        // enough for the tight fuzz budgets.
        8 => {
            let _ = writeln!(
                decls,
                "class Cons{k} {{ field head; field tail;
  method init(h, t) {{ self.head = h; self.tail = t; }} }}
fn sum{k}(l) {{ var t = 0; var c = l;
  while (!(c === nil)) {{ t = t + c.head; c = c.tail; }}
  return t; }}"
            );
            let _ = writeln!(
                main,
                "  var l{k} = nil;
  var j{k} = 0;
  while (j{k} < {n}) {{ l{k} = new Cons{k}(j{k} + {a}, l{k}); j{k} = j{k} + 1; }}
  print sum{k}(l{k});"
            );
        }
        // Nested containers: three levels, escaping via a global, so
        // nested inlining across passes is exercised end to end.
        9 => {
            let _ = writeln!(
                decls,
                "global DEEP{k};
class L0{k} {{ field x; method init(p) {{ self.x = p; }} }}
class L1{k} {{ field a; method init(p) {{ self.a = new L0{k}(p); }} }}
class L2{k} {{ field b; method init(p) {{ self.b = new L1{k}(p); }} }}"
            );
            let _ = writeln!(
                main,
                "  var d{k} = new L2{k}({a});
  DEEP{k} = d{k};
  print d{k}.b.a.x + DEEP{k}.b.a.x;"
            );
        }
        // Deep-recursion pressure: each recursive `wrap` call passes a node
        // allocated in the previous activation's contour, so every nesting
        // level mints a fresh (contour, ocontour) pair until the analysis
        // caps kick in and widen. Exercises the budget/widening machinery
        // on a program that still runs comfortably within VM limits.
        10 => {
            let _ = writeln!(
                decls,
                "class Node{k} {{ field inner; field d; method init(i, x) {{ self.inner = i; self.d = x; }} }}
fn wrap{k}(n, depth) {{
  if (depth < 1) {{ return n; }}
  return wrap{k}(new Node{k}(n, depth), depth - 1);
}}
fn unwind{k}(n) {{ var t = 0; var c = n;
  while (!(c === nil)) {{ t = t + c.d; c = c.inner; }}
  return t; }}"
            );
            let _ = writeln!(
                main,
                "  var base{k} = new Node{k}(nil, {a});
  print unwind{k}(wrap{k}(base{k}, 28));"
            );
        }
        // Polymorphic dispatch through a field whose static class has
        // subclasses with overriding methods.
        _ => {
            let _ = writeln!(
                decls,
                "class Shape{k} {{ field s; method init(x) {{ self.s = x; }} method area() {{ return self.s; }} }}
class Sq{k} : Shape{k} {{ method area() {{ return self.s * self.s; }} }}
class Pen{k} {{ field sh;
  method init(x, sq) {{
    if (sq > 0) {{ self.sh = new Sq{k}(x); }} else {{ self.sh = new Shape{k}(x); }}
  }}
  method draw() {{ return self.sh.area(); }} }}"
            );
            let _ = writeln!(
                main,
                "  print new Pen{k}({a}, 1).draw() + new Pen{k}({b}, 0).draw();"
            );
        }
    }
}

/// How one source misbehaves, for the shrinker's "still bad?" probe.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Badness {
    /// Baseline and inlined builds disagree (unguarded comparison).
    Diverges,
    /// Some pipeline or VM stage panics.
    Panics,
}

/// Classifies a source without retraction: `None` means healthy (or not
/// compiling, which the shrinker treats as healthy so it never keeps a
/// syntactically broken reduction).
fn classify(src: &str, vm: &VmConfig) -> Option<Badness> {
    let outcome = contained(|| {
        let Ok(p) = oi_ir::lower::compile(src) else {
            return None;
        };
        let Ok(base) = try_baseline(&p, &InlineConfig::default().opt) else {
            return Some(Badness::Diverges);
        };
        let Ok(opt) = try_optimize(&p, &InlineConfig::default()) else {
            return Some(Badness::Diverges);
        };
        let b = run(&base, vm);
        let o = run(&opt.program, vm);
        if compare_runs(&b, &o).is_empty() {
            None
        } else {
            Some(Badness::Diverges)
        }
    });
    match outcome {
        Ok(v) => v,
        Err(_) => Some(Badness::Panics),
    }
}

/// Greedy line-dropping shrinker: repeatedly removes single lines while
/// the program keeps the same badness, to a fixpoint (or an attempt
/// budget). Removals that break compilation are rejected by `classify`,
/// so brace structure self-repairs.
pub fn shrink(src: &str, vm: &VmConfig) -> String {
    let Some(kind) = classify(src, vm) else {
        return src.to_owned();
    };
    let mut lines: Vec<String> = src.lines().map(str::to_owned).collect();
    let mut attempts = 0usize;
    const MAX_ATTEMPTS: usize = 400;
    loop {
        let mut changed = false;
        let mut i = 0;
        while i < lines.len() && attempts < MAX_ATTEMPTS {
            let mut candidate = lines.clone();
            candidate.remove(i);
            let cand = candidate.join("\n");
            attempts += 1;
            if classify(&cand, vm) == Some(kind) {
                lines = candidate;
                changed = true;
            } else {
                i += 1;
            }
        }
        if !changed || attempts >= MAX_ATTEMPTS {
            break;
        }
    }
    lines.join("\n")
}

/// Runs the fuzzing session. Panics in the pipeline are contained per
/// case; the report collects every finding instead of aborting the loop.
pub fn run_fuzz(config: &FuzzConfig) -> FuzzReport {
    let mut report = FuzzReport {
        runs: config.runs,
        seed: config.seed,
        ..Default::default()
    };
    // The default panic hook prints a backtrace per contained panic, which
    // would flood the fuzzing output; silence it for the session.
    let _hook = silence_hook();
    for case in 0..config.runs {
        let seed = case_seed(config.seed, case);
        let src = generate_adversarial(seed);
        if oi_ir::lower::compile(&src).is_err() {
            continue;
        }
        report.compiled += 1;
        let fw = FirewallConfig {
            vm: config.vm,
            checked: if config.checked {
                CheckLevel::Full
            } else {
                CheckLevel::Off
            },
            ..FirewallConfig::default()
        };
        let outcome = contained(|| {
            let p = oi_ir::lower::compile(&src).expect("checked above");
            optimize_guarded(&p, &InlineConfig::default(), &fw)
        });
        match outcome {
            Ok(Ok(g)) => {
                report.retractions += g.retracted.len();
                report.sanitizer_findings += g
                    .initial_divergences
                    .iter()
                    .filter_map(|d| match d {
                        Divergence::Sanitizer { count, .. } => Some(*count),
                        _ => None,
                    })
                    .sum::<u64>();
                if !g.retracted.is_empty() && g.is_equivalent() {
                    report.repaired += 1;
                }
                if !g.is_equivalent() {
                    report.divergent.push(DivergentCase {
                        case,
                        seed,
                        divergences: g.divergences.iter().map(|d| d.to_string()).collect(),
                        minimized: shrink(&src, &config.vm),
                    });
                }
            }
            Ok(Err(e)) => {
                // Unrepairable pipeline error: count it as a divergence
                // finding — the firewall could not produce a program.
                report.divergent.push(DivergentCase {
                    case,
                    seed,
                    divergences: vec![e.to_string()],
                    minimized: shrink(&src, &config.vm),
                });
            }
            Err(message) => {
                report.panics.push(PanicCase {
                    case,
                    seed,
                    message,
                });
            }
        }
    }
    report
}

const USAGE: &str = "usage: oic fuzz [--runs N] [--seed S] [--checked] [--json] [--out FILE]

Generates adversarial programs, runs each under the soundness firewall's
differential oracle, and reports divergences, panics, and retractions.
--checked additionally runs every inlined build under the Full heap
sanitizer; findings count as oracle rejections and are totaled in the
report. Exit 0 when the session is clean, 1 when any finding survives,
2 on usage errors. --json emits a schema-stable oi.fuzz.v1 document.
";

/// Runs the `oic fuzz` command-line interface on pre-split arguments and
/// returns the process exit code.
pub fn cli_main(args: &[String]) -> u8 {
    use oi_support::cli::{Arg, ArgScanner};
    let mut config = FuzzConfig::default();
    let mut json_output = false;
    let mut out: Option<String> = None;
    let mut scanner = ArgScanner::new(args.to_vec());
    while let Some(arg) = scanner.next() {
        let arg = match arg {
            Ok(arg) => arg,
            Err(msg) => return usage_error(&msg),
        };
        match arg {
            Arg::Flag { name, value: None } => match name.as_str() {
                "runs" => {
                    let v = scanner.value_for("--runs").unwrap_or_default();
                    match v.parse::<usize>() {
                        Ok(n) if n > 0 => config.runs = n,
                        _ => {
                            return usage_error(&format!(
                                "`--runs` needs a positive integer, got `{v}`"
                            ))
                        }
                    }
                }
                "seed" => {
                    let v = scanner.value_for("--seed").unwrap_or_default();
                    match v.parse::<u64>() {
                        Ok(s) => config.seed = s,
                        _ => return usage_error(&format!("`--seed` needs an integer, got `{v}`")),
                    }
                }
                "json" => json_output = true,
                "checked" => config.checked = true,
                "out" => match scanner.value_for("--out") {
                    Ok(path) => out = Some(path),
                    Err(_) => return usage_error("`--out` needs a file path"),
                },
                "help" => {
                    print!("{USAGE}");
                    return 0;
                }
                other => return usage_error(&format!("unknown flag `--{other}`")),
            },
            Arg::Flag { name, value } => {
                return usage_error(&format!(
                    "unknown flag `--{name}={}`",
                    value.unwrap_or_default()
                ));
            }
            Arg::Positional(other) => {
                return usage_error(&format!("unexpected argument `{other}`"));
            }
        }
    }

    eprintln!(
        "fuzzing {} case(s) from seed {}...",
        config.runs, config.seed
    );
    let report = run_fuzz(&config);
    let rendered = if json_output {
        report.to_json().to_string()
    } else {
        render_text(&report)
    };
    let code = write_out(&rendered, out.as_deref());
    if code != 0 {
        return code;
    }
    u8::from(!report.ok())
}

fn usage_error(msg: &str) -> u8 {
    eprintln!("{msg}");
    2
}

fn render_text(report: &FuzzReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "fuzz: {} case(s), seed {}", report.runs, report.seed);
    let _ = writeln!(out, "  compiled    : {}", report.compiled);
    let _ = writeln!(out, "  divergent   : {}", report.divergent.len());
    let _ = writeln!(out, "  panics      : {}", report.panics.len());
    let _ = writeln!(out, "  retractions : {}", report.retractions);
    let _ = writeln!(out, "  repaired    : {}", report.repaired);
    let _ = writeln!(out, "  sanitizer   : {}", report.sanitizer_findings);
    for d in &report.divergent {
        let _ = writeln!(
            out,
            "divergent case {} (seed {}): {}",
            d.case,
            d.seed,
            d.divergences.join("; ")
        );
        let _ = writeln!(out, "--- minimized ---\n{}\n---", d.minimized);
    }
    for p in &report.panics {
        let _ = writeln!(
            out,
            "panic in case {} (seed {}): {}",
            p.case, p.seed, p.message
        );
    }
    let _ = write!(out, "{}", if report.ok() { "OK" } else { "FINDINGS" });
    out
}

/// Writes `doc` to `path` (with a trailing newline) or stdout.
fn write_out(doc: &str, path: Option<&str>) -> u8 {
    match path {
        Some(path) => {
            if let Err(e) = std::fs::write(path, format!("{doc}\n")) {
                eprintln!("cannot write {path}: {e}");
                return 1;
            }
            eprintln!("wrote {path}");
            0
        }
        None => {
            println!("{doc}");
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed() {
        assert_eq!(generate_adversarial(42), generate_adversarial(42));
        assert_ne!(generate_adversarial(42), generate_adversarial(43));
    }

    #[test]
    fn every_scenario_compiles_and_stays_equivalent() {
        // Instantiate each scenario in isolation so a failure names it.
        for which in 0..SCENARIOS {
            let mut rng = XorShift64::new(7);
            let mut decls = String::new();
            let mut main = String::new();
            emit_scenario(which, 0, &mut rng, &mut decls, &mut main);
            let src = format!("{decls}fn main() {{\n{main}}}\n");
            let p = oi_ir::lower::compile(&src)
                .unwrap_or_else(|e| panic!("scenario {which}: {}", e.render(&src)));
            let g = optimize_guarded(
                &p,
                &InlineConfig::default(),
                &FirewallConfig {
                    vm: fuzz_vm_config(),
                    ..Default::default()
                },
            )
            .unwrap_or_else(|e| panic!("scenario {which}: {e}"));
            assert!(
                g.is_equivalent(),
                "scenario {which} diverged: {:?}\n{src}",
                g.divergences
            );
            // Every adversarial pattern must be rejected *statically* by
            // the decision rules; runtime retraction is the firewall's
            // last line, not the expected path.
            assert!(
                g.retracted.is_empty(),
                "scenario {which} needed retraction: {:?}\n{src}",
                g.retracted
            );
        }
    }

    #[test]
    fn smoke_session_is_clean_and_json_is_stable() {
        let report = run_fuzz(&FuzzConfig {
            runs: 12,
            seed: 1,
            vm: fuzz_vm_config(),
            checked: false,
        });
        assert!(report.compiled > 0);
        assert!(
            report.ok(),
            "divergent: {:?} panics: {:?}",
            report.divergent,
            report.panics
        );
        assert_eq!(report.sanitizer_findings, 0, "unchecked session");
        let doc = report.to_json().to_string();
        let parsed = Json::parse(&doc).unwrap();
        assert_eq!(parsed.get("schema").unwrap().as_str(), Some("oi.fuzz.v1"));
        assert_eq!(parsed.get("ok").unwrap(), &Json::Bool(true));
        for key in [
            "runs",
            "seed",
            "compiled",
            "retractions",
            "repaired",
            "sanitizer_findings",
        ] {
            assert!(parsed.get(key).is_some(), "missing {key}");
        }
    }

    #[test]
    fn checked_session_is_clean() {
        // The same corpus under Full checking: no sanitizer finding, no
        // divergence, no panic — the transformation honors the invariants
        // the sanitizer enforces.
        let report = run_fuzz(&FuzzConfig {
            runs: 12,
            seed: 1,
            vm: fuzz_vm_config(),
            checked: true,
        });
        assert!(report.compiled > 0);
        assert!(
            report.ok(),
            "divergent: {:?} panics: {:?}",
            report.divergent,
            report.panics
        );
        assert_eq!(
            report.sanitizer_findings, 0,
            "checked fuzzing must stay finding-free"
        );
    }

    #[test]
    fn shrinker_minimizes_a_diverging_program() {
        // A panic stand-in is hard to fabricate without a bug, so check
        // the shrinker on an output divergence instead: two unrelated
        // sections, of which only one misbehaves. The "bug" here is an
        // intentionally non-equivalent pair of builds faked by picking a
        // program the optimizer handles fine — so instead we verify the
        // shrinker's contract on a healthy program: it returns the source
        // unchanged.
        let src = generate_adversarial(5);
        assert_eq!(shrink(&src, &fuzz_vm_config()), src);
    }
}
