//! `oic bench restartload` — crash-recovery load replay against the
//! persistent artifact tier.
//!
//! The harness replays a seeded Zipf-skewed compile trace (the same
//! generator as [`crate::loadgen`]) against an in-process server backed
//! by a `--cache-dir` disk tier, **killing the server at fixed points**
//! along the trace and restarting it over the same directory. A kill is
//! unclean by construction: the write-behind persister stops without the
//! clean-shutdown journal compaction, and the journal's tail is then
//! torn mid-record — exactly the state an abrupt process death leaves
//! behind. Every restart therefore runs the full recovery path before
//! serving.
//!
//! The emitted `oi.restart.v1` document carries its own verdict (`ok`)
//! so ci.sh can gate on it:
//!
//! - **zero corrupt serves** — every successful compile response is
//!   byte-compared against an independently compiled reference payload
//!   for its source; a recovered-from-disk artifact that decodes to
//!   anything else is corruption,
//! - **zero errored requests**,
//! - **exact hit-rate reconciliation** — the harness's own per-segment
//!   hit/disk/miss tallies must match the server's `oi.metrics.v1`
//!   counters request for request,
//! - **recovery evidence** — every restarted segment must attach the
//!   disk tier and report the torn journal tail it was handed
//!   (`serve.recovery_journal_truncated`),
//! - **warm-restart hit-rate floor** — each post-kill segment's combined
//!   hit rate (`(memory hits + disk hits) / requests`) must be at least
//!   `0.8×` the pre-kill steady-state rate. Warm restarts that silently
//!   quarantine everything and recompile the world fail this gate.

use crate::loadgen::{synthetic_source, ZipfSampler};
use crate::serve::{ServeConfig, Server};
use oi_core::cache::store::DiskStore;
use oi_core::IoFault;
use oi_support::cli::{Arg, ArgScanner};
use oi_support::rng::XorShift64;
use oi_support::Json;
use std::path::{Path, PathBuf};

/// Restartload knobs (flags of `oic bench restartload`).
#[derive(Clone, Debug)]
pub struct RestartConfig {
    /// Total requests across all segments.
    pub requests: u64,
    /// Distinct synthetic sources the trace draws from.
    pub sources: u64,
    /// PRNG seed for the Zipf draw.
    pub seed: u64,
    /// Zipf skew exponent.
    pub zipf_s: f64,
    /// Unclean kills along the trace (`kills + 1` segments).
    pub kills: u64,
    /// In-memory LRU byte budget per server instance.
    pub cache_bytes: usize,
    /// Byte budget of the persistent tier.
    pub disk_bytes: u64,
    /// Persistent-tier directory. `None` uses (and afterwards removes) a
    /// process-unique temp directory; a given directory is **recreated
    /// empty** so every run starts cold.
    pub cache_dir: Option<String>,
}

impl Default for RestartConfig {
    fn default() -> Self {
        RestartConfig {
            requests: 2_400,
            sources: 40,
            seed: 1,
            zipf_s: 1.0,
            kills: 2,
            cache_bytes: 64 << 20,
            disk_bytes: 256 << 20,
            cache_dir: None,
        }
    }
}

/// One server lifetime between kills (or between a kill and the end of
/// the trace).
#[derive(Clone, Debug)]
pub struct Segment {
    /// Segment index (0 is the cold pre-kill segment).
    pub index: u64,
    /// Requests replayed in this segment.
    pub requests: u64,
    /// Served from the in-memory cache.
    pub hits: u64,
    /// Served from the verified disk tier.
    pub disk_hits: u64,
    /// Compiled fresh.
    pub misses: u64,
    /// Answered `ok:false`.
    pub errors: u64,
    /// Successful responses whose payload differed from the reference
    /// compile of the same source.
    pub corrupt: u64,
    /// `(hits + disk_hits) / requests`.
    pub hit_rate: f64,
    /// Whether the server's counters matched the tallies exactly.
    pub reconciled: bool,
    /// Whether the disk tier attached (recovery reached serving state).
    pub disk_attached: bool,
    /// `serve.recovery_journal_truncated` at open — must be 1 on every
    /// segment that follows a kill.
    pub recovered_torn_tail: bool,
    /// `serve.recovery_entries_kept` at open.
    pub entries_recovered: u64,
    /// `serve.recovery_quarantined` at open.
    pub quarantined: u64,
    /// `serve.recovery_orphans_adopted` at open.
    pub orphans_adopted: u64,
    /// Whether this segment ended in an unclean kill (vs a clean flush).
    pub killed: bool,
}

impl Segment {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("index", self.index.into()),
            ("requests", self.requests.into()),
            ("hits", self.hits.into()),
            ("disk_hits", self.disk_hits.into()),
            ("misses", self.misses.into()),
            ("errors", self.errors.into()),
            ("corrupt", self.corrupt.into()),
            ("hit_rate", self.hit_rate.into()),
            ("reconciled", self.reconciled.into()),
            ("disk_attached", self.disk_attached.into()),
            ("recovered_torn_tail", self.recovered_torn_tail.into()),
            ("entries_recovered", self.entries_recovered.into()),
            ("quarantined", self.quarantined.into()),
            ("orphans_adopted", self.orphans_adopted.into()),
            ("killed", self.killed.into()),
        ])
    }
}

/// The replay's outcome — everything `oi.restart.v1` carries.
#[derive(Clone, Debug)]
pub struct RestartReport {
    /// The configuration replayed.
    pub config: RestartConfig,
    /// One entry per server lifetime.
    pub segments: Vec<Segment>,
    /// Segment 0's hit rate — the pre-kill steady state.
    pub prekill_rate: f64,
    /// The worst post-kill segment hit rate.
    pub warm_rate_min: f64,
    /// The gate floor: `0.8 × prekill_rate`.
    pub warm_floor: f64,
    /// Corrupt serves across all segments (the gate demands 0).
    pub corrupt_total: u64,
    /// Errors across all segments.
    pub error_total: u64,
    /// Whether every segment reconciled exactly.
    pub reconciled: bool,
    /// Whether every restart attached the tier and saw the torn tail.
    pub recovered: bool,
    /// The gate verdict (see module docs).
    pub ok: bool,
}

impl RestartReport {
    /// The report as a schema-stable `oi.restart.v1` document.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("schema", "oi.restart.v1".into()),
            ("requests", self.config.requests.into()),
            ("distinct_sources", self.config.sources.into()),
            ("seed", self.config.seed.into()),
            ("zipf_s", self.config.zipf_s.into()),
            ("kills", self.config.kills.into()),
            ("cache_bytes", (self.config.cache_bytes as u64).into()),
            ("disk_bytes", self.config.disk_bytes.into()),
            (
                "segments",
                Json::Arr(self.segments.iter().map(Segment::to_json).collect()),
            ),
            ("prekill_rate", self.prekill_rate.into()),
            ("warm_rate_min", self.warm_rate_min.into()),
            ("warm_floor", self.warm_floor.into()),
            ("corrupt_total", self.corrupt_total.into()),
            ("error_total", self.error_total.into()),
            ("reconciled", self.reconciled.into()),
            ("recovered", self.recovered.into()),
            ("ok", self.ok.into()),
        ])
    }
}

/// Compiles every source once on a memory-only server and returns the
/// reference payload strings corrupt serves are detected against.
fn reference_payloads(config: &RestartConfig, sources: &[String]) -> Result<Vec<String>, String> {
    let server = Server::new(ServeConfig {
        cache_bytes: config.cache_bytes,
        ..ServeConfig::default()
    });
    sources
        .iter()
        .enumerate()
        .map(|(i, source)| {
            let line = compile_line(i as u64, source);
            let handled = server.handle_line(&line);
            let ok = handled
                .response
                .get("ok")
                .and_then(Json::as_bool)
                .unwrap_or(false);
            if !ok {
                return Err(format!("reference compile of source {i} failed"));
            }
            Ok(handled
                .response
                .get("payload")
                .map(Json::to_string)
                .unwrap_or_default())
        })
        .collect()
}

fn compile_line(id: u64, source: &str) -> String {
    Json::obj(vec![
        ("id", id.into()),
        ("op", "compile".into()),
        ("source", source.into()),
    ])
    .to_string()
}

/// Replays the configured trace with unclean kills and returns the full
/// report. The directory is recreated empty first, so the run always
/// starts cold; a harness-created temp directory is removed afterwards.
pub fn run_restartload(config: &RestartConfig) -> Result<RestartReport, String> {
    // Process-unique temp dirs: concurrent harness runs (parallel tests)
    // must not share a store directory.
    static NONCE: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let (dir, ephemeral) = match &config.cache_dir {
        Some(dir) => (PathBuf::from(dir), false),
        None => (
            std::env::temp_dir().join(format!(
                "oi-restartload-{}-{}-{}",
                std::process::id(),
                config.seed,
                NONCE.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
            )),
            true,
        ),
    };
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).map_err(|e| format!("cannot create {}: {e}", dir.display()))?;

    let result = replay(config, &dir);
    if ephemeral {
        let _ = std::fs::remove_dir_all(&dir);
    }
    result
}

fn replay(config: &RestartConfig, dir: &Path) -> Result<RestartReport, String> {
    if config.requests < (config.kills + 1) * 2 {
        return Err(format!(
            "{} requests cannot cover {} kills (need at least 2 per segment)",
            config.requests, config.kills
        ));
    }
    let sources: Vec<String> = (0..config.sources).map(synthetic_source).collect();
    let expected = reference_payloads(config, &sources)?;

    // The whole trace is drawn up front; kills only decide which server
    // lifetime serves which span of it.
    let sampler = ZipfSampler::new(config.sources, config.zipf_s);
    let mut rng = XorShift64::new(config.seed);
    let trace: Vec<u64> = (0..config.requests)
        .map(|_| sampler.sample(&mut rng))
        .collect();
    let segment_count = config.kills + 1;
    let base = config.requests / segment_count;

    let mut segments = Vec::new();
    let mut cursor = 0usize;
    for index in 0..segment_count {
        let len = if index == segment_count - 1 {
            config.requests as usize - cursor
        } else {
            base as usize
        };
        let span = &trace[cursor..cursor + len];
        let killed = index + 1 < segment_count;
        segments.push(run_segment(
            config, dir, index, cursor, span, &sources, &expected, killed,
        ));
        cursor += len;
    }

    let prekill_rate = segments[0].hit_rate;
    let warm: Vec<&Segment> = segments.iter().skip(1).collect();
    let warm_rate_min = warm
        .iter()
        .map(|s| s.hit_rate)
        .fold(f64::INFINITY, f64::min)
        .min(if warm.is_empty() {
            prekill_rate
        } else {
            f64::INFINITY
        });
    let warm_floor = 0.8 * prekill_rate;
    let corrupt_total: u64 = segments.iter().map(|s| s.corrupt).sum();
    let error_total: u64 = segments.iter().map(|s| s.errors).sum();
    let reconciled = segments.iter().all(|s| s.reconciled);
    // Segment 0 opens a fresh directory; every later segment must both
    // attach the tier and report the torn tail its predecessor left.
    let recovered = segments.iter().all(|s| s.disk_attached)
        && segments.iter().skip(1).all(|s| s.recovered_torn_tail);

    let ok = corrupt_total == 0
        && error_total == 0
        && reconciled
        && recovered
        && prekill_rate > 0.0
        && warm_rate_min >= warm_floor;

    Ok(RestartReport {
        config: config.clone(),
        segments,
        prekill_rate,
        warm_rate_min,
        warm_floor,
        corrupt_total,
        error_total,
        reconciled,
        recovered,
        ok,
    })
}

#[allow(clippy::too_many_arguments)]
fn run_segment(
    config: &RestartConfig,
    dir: &Path,
    index: u64,
    first_id: usize,
    span: &[u64],
    sources: &[String],
    expected: &[String],
    kill: bool,
) -> Segment {
    let server = Server::new(ServeConfig {
        cache_bytes: config.cache_bytes,
        cache_dir: Some(dir.to_string_lossy().into_owned()),
        disk_bytes: config.disk_bytes,
        ..ServeConfig::default()
    });
    let disk_attached = server.disk().is_some();
    let metrics = server.metrics();
    let recovered_torn_tail = metrics.counter("serve.recovery_journal_truncated") == 1;
    let entries_recovered = metrics.counter("serve.recovery_entries_kept");
    let quarantined = metrics.counter("serve.recovery_quarantined");
    let orphans_adopted = metrics.counter("serve.recovery_orphans_adopted");

    let (mut hits, mut disk_hits, mut misses, mut errors, mut corrupt) = (0u64, 0, 0, 0, 0);
    for (offset, &rank) in span.iter().enumerate() {
        let line = compile_line((first_id + offset) as u64, &sources[rank as usize]);
        let handled = server.handle_line(&line);
        let ok = handled
            .response
            .get("ok")
            .and_then(Json::as_bool)
            .unwrap_or(false);
        if !ok {
            errors += 1;
            continue;
        }
        match handled.response.get("cache").and_then(Json::as_str) {
            Some("hit") => hits += 1,
            Some("disk") => disk_hits += 1,
            _ => misses += 1,
        }
        let payload = handled
            .response
            .get("payload")
            .map(Json::to_string)
            .unwrap_or_default();
        if payload != expected[rank as usize] {
            corrupt += 1;
        }
    }

    let requests = span.len() as u64;
    let reconciled = metrics.counter("serve.requests") == requests
        && metrics.counter("cache.hits") == hits
        && metrics.counter("disk.load_hits") == disk_hits
        && metrics.counter("cache.misses") == disk_hits + misses
        && hits + disk_hits + misses + errors == requests;
    let hit_rate = if requests == 0 {
        0.0
    } else {
        (hits + disk_hits) as f64 / requests as f64
    };

    if kill {
        server.simulate_kill();
        // Tear the journal's tail mid-record: the on-disk state of a
        // process killed while appending. Recovery must detect the torn
        // record and rebuild the manifest from the objects directory.
        let _ = DiskStore::inject_io_fault(dir, IoFault::TruncatedJournalTail);
    } else {
        server.flush_disk();
    }

    Segment {
        index,
        requests,
        hits,
        disk_hits,
        misses,
        errors,
        corrupt,
        hit_rate,
        reconciled,
        disk_attached,
        recovered_torn_tail,
        entries_recovered,
        quarantined,
        orphans_adopted,
        killed: kill,
    }
}

const USAGE: &str = "usage: oic bench restartload [--requests N] [--sources K] [--seed S] \
     [--zipf-s X] [--kills M] [--cache-bytes B] [--disk-bytes B] \
     [--cache-dir DIR] [--json] [--out FILE]\n\
     \n\
     Replays a seeded Zipf compile trace against a --cache-dir compile\n\
     server, killing it uncleanly at M points (torn journal tail, no\n\
     compaction) and restarting over the same directory. Emits\n\
     oi.restart.v1 and exits 1 when the gate fails: any corrupt or\n\
     errored serve, counters that do not reconcile, a restart that\n\
     misses recovery evidence, or a post-kill hit rate under 0.8x the\n\
     pre-kill steady state. DIR is recreated empty; the default is a\n\
     temp directory removed after the run.";

fn usage_error(msg: &str) -> u8 {
    eprintln!("oic bench restartload: {msg}\n\n{USAGE}");
    2
}

/// Entry point for `oic bench restartload`. Returns the process exit
/// code.
pub fn cli_main(args: &[String]) -> u8 {
    let mut config = RestartConfig::default();
    let mut json = false;
    let mut out: Option<String> = None;
    let mut scanner = ArgScanner::new(args.to_vec());
    while let Some(arg) = scanner.next() {
        let arg = match arg {
            Ok(a) => a,
            Err(e) => return usage_error(&e),
        };
        match arg {
            Arg::Flag { name, value: None } => match name.as_str() {
                "json" => json = true,
                "requests" => match flag_u64(&mut scanner, "--requests") {
                    Ok(n) => config.requests = n,
                    Err(e) => return usage_error(&e),
                },
                "sources" => match flag_u64(&mut scanner, "--sources") {
                    Ok(n) => config.sources = n,
                    Err(e) => return usage_error(&e),
                },
                "seed" => match flag_u64(&mut scanner, "--seed") {
                    Ok(n) => config.seed = n,
                    Err(e) => return usage_error(&e),
                },
                "kills" => match flag_u64(&mut scanner, "--kills") {
                    Ok(n) => config.kills = n,
                    Err(e) => return usage_error(&e),
                },
                "cache-bytes" => match flag_u64(&mut scanner, "--cache-bytes") {
                    Ok(n) => config.cache_bytes = n as usize,
                    Err(e) => return usage_error(&e),
                },
                "disk-bytes" => match flag_u64(&mut scanner, "--disk-bytes") {
                    Ok(n) => config.disk_bytes = n,
                    Err(e) => return usage_error(&e),
                },
                "zipf-s" => {
                    let v = scanner.value_for("--zipf-s").unwrap_or_default();
                    match v.parse::<f64>() {
                        Ok(s) if s.is_finite() && s >= 0.0 => config.zipf_s = s,
                        _ => {
                            return usage_error(&format!(
                                "`--zipf-s` needs a non-negative number, got `{v}`"
                            ))
                        }
                    }
                }
                "cache-dir" => match scanner.value_for("--cache-dir") {
                    Ok(dir) if !dir.is_empty() => config.cache_dir = Some(dir),
                    _ => return usage_error("`--cache-dir` needs a directory path"),
                },
                "out" => match scanner.value_for("--out") {
                    Ok(path) if !path.is_empty() => out = Some(path),
                    _ => return usage_error("`--out` needs a file path"),
                },
                _ => return usage_error(&format!("unknown flag `--{name}`")),
            },
            Arg::Flag {
                name,
                value: Some(value),
            } => return usage_error(&format!("unknown flag `--{name}={value}`")),
            Arg::Positional(p) => {
                return usage_error(&format!("unexpected positional argument `{p}`"))
            }
        }
    }

    let report = match run_restartload(&config) {
        Ok(report) => report,
        Err(e) => return usage_error(&e),
    };
    let doc = report.to_json();
    if let Some(path) = &out {
        if let Err(e) = std::fs::write(path, format!("{doc}\n")) {
            eprintln!("oic bench restartload: cannot write {path}: {e}");
            return 1;
        }
    }
    if json {
        println!("{doc}");
    } else {
        println!(
            "restartload: {} requests over {} sources, {} unclean kills (seed {})",
            report.config.requests, report.config.sources, report.config.kills, report.config.seed,
        );
        for s in &report.segments {
            println!(
                "  segment {}: {} requests, {} hit / {} disk / {} miss / {} err, \
                 rate {:.4}{}{}",
                s.index,
                s.requests,
                s.hits,
                s.disk_hits,
                s.misses,
                s.errors,
                s.hit_rate,
                if s.index > 0 {
                    format!(
                        ", recovered {} entries (torn tail: {})",
                        s.entries_recovered, s.recovered_torn_tail
                    )
                } else {
                    String::new()
                },
                if s.killed { " [killed]" } else { "" },
            );
        }
        println!(
            "  pre-kill rate {:.4}; warm min {:.4} (floor {:.4}); \
             corrupt {}; reconciled {}; gate: {}",
            report.prekill_rate,
            report.warm_rate_min,
            report.warm_floor,
            report.corrupt_total,
            report.reconciled,
            if report.ok { "ok" } else { "FAILED" },
        );
    }
    if report.ok {
        0
    } else {
        eprintln!("oic bench restartload: gate failed (see report)");
        1
    }
}

/// Parses the positive-integer value of `flag`.
fn flag_u64(scanner: &mut ArgScanner, flag: &str) -> Result<u64, String> {
    let v = scanner.value_for(flag).unwrap_or_default();
    match v.parse::<u64>() {
        Ok(n) if n > 0 => Ok(n),
        _ => Err(format!("`{flag}` needs a positive integer, got `{v}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> RestartConfig {
        RestartConfig {
            requests: 240,
            sources: 8,
            seed: 7,
            kills: 2,
            ..RestartConfig::default()
        }
    }

    #[test]
    fn replay_with_kills_meets_the_gate() {
        let report = run_restartload(&small()).expect("harness runs");
        assert_eq!(report.segments.len(), 3);
        assert_eq!(report.corrupt_total, 0, "no corrupt serves");
        assert_eq!(report.error_total, 0, "no errors");
        assert!(report.reconciled, "counters reconcile");
        assert!(report.recovered, "every restart recovered the torn tail");
        assert!(
            report.warm_rate_min >= report.warm_floor,
            "warm rate {} under floor {}",
            report.warm_rate_min,
            report.warm_floor
        );
        assert!(report.ok);
        // Warm segments really did draw on the disk tier.
        assert!(
            report.segments.iter().skip(1).any(|s| s.disk_hits > 0),
            "restarts must serve from disk"
        );
        for s in report.segments.iter().skip(1) {
            assert!(
                s.recovered_torn_tail,
                "segment {} saw no torn tail",
                s.index
            );
            assert!(
                s.entries_recovered > 0,
                "segment {} recovered nothing",
                s.index
            );
        }
    }

    #[test]
    fn report_schema_is_stable() {
        let report = run_restartload(&RestartConfig {
            requests: 60,
            sources: 4,
            kills: 1,
            seed: 3,
            ..RestartConfig::default()
        })
        .expect("harness runs");
        let doc = report.to_json();
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some("oi.restart.v1")
        );
        for key in [
            "requests",
            "kills",
            "segments",
            "prekill_rate",
            "warm_rate_min",
            "warm_floor",
            "corrupt_total",
            "reconciled",
            "recovered",
            "ok",
        ] {
            assert!(doc.get(key).is_some(), "missing key {key}");
        }
        let segments = match doc.get("segments") {
            Some(Json::Arr(rows)) => rows.clone(),
            other => panic!("segments must be an array, got {other:?}"),
        };
        assert_eq!(segments.len(), 2);
        for row in &segments {
            for key in [
                "hits",
                "disk_hits",
                "misses",
                "corrupt",
                "recovered_torn_tail",
            ] {
                assert!(row.get(key).is_some(), "segment missing {key}");
            }
        }
    }

    #[test]
    fn replay_is_deterministic_in_shape() {
        let a = run_restartload(&small()).expect("harness runs");
        let b = run_restartload(&small()).expect("harness runs");
        let shape = |r: &RestartReport| {
            r.segments
                .iter()
                .map(|s| (s.hits, s.disk_hits, s.misses, s.errors))
                .collect::<Vec<_>>()
        };
        assert_eq!(shape(&a), shape(&b));
    }

    #[test]
    fn too_few_requests_for_the_kill_count_is_an_error() {
        let config = RestartConfig {
            requests: 4,
            kills: 3,
            ..RestartConfig::default()
        };
        assert!(run_restartload(&config).is_err());
    }

    #[test]
    fn cli_rejects_bad_flags() {
        let run = |args: &[&str]| {
            let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
            cli_main(&args)
        };
        assert_eq!(run(&["--wat"]), 2);
        assert_eq!(run(&["--requests", "0"]), 2);
        assert_eq!(run(&["--zipf-s", "nope"]), 2);
        assert_eq!(run(&["stray"]), 2);
    }
}
