//! A minimal wall-clock benchmarking harness with no external
//! dependencies.
//!
//! The `benches/` targets use this instead of Criterion so the workspace
//! builds and benches offline. Each measurement does one warm-up run,
//! then `sample_size` timed runs, and prints min/median/max per label in
//! a stable, greppable format:
//!
//! ```text
//! group/label  min 1.204ms  median 1.311ms  max 1.502ms  (10 samples)
//! ```
//!
//! [`Group::bench`] also *returns* the [`Measurement`] so programmatic
//! consumers (`oi-bench snapshot`, CI smoke runs) reuse the harness
//! instead of scraping stdout. The `OI_BENCH_SAMPLES` environment
//! variable overrides every group's sample count (for cheap CI runs);
//! [`parse_samples`] parses `--samples N` style values for tools that
//! take it as a flag.

use std::time::Instant;

/// The sample-count override environment variable read by [`Group::new`].
pub const SAMPLES_ENV: &str = "OI_BENCH_SAMPLES";

/// One benchmark measurement: sorted per-sample wall-clock nanoseconds
/// plus the order statistics the text format prints.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Measurement {
    /// Fastest sample, in nanoseconds.
    pub min: u128,
    /// Median sample, in nanoseconds.
    pub median: u128,
    /// Slowest sample, in nanoseconds.
    pub max: u128,
    /// Every timed sample in ascending order, in nanoseconds.
    pub samples: Vec<u128>,
}

impl Measurement {
    /// Builds a measurement from raw sample timings (any order). Empty
    /// input yields the all-zero measurement with no samples — callers
    /// render "0 samples" rather than crashing the tool.
    pub fn from_samples(mut samples: Vec<u128>) -> Measurement {
        if samples.is_empty() {
            return Measurement {
                min: 0,
                median: 0,
                max: 0,
                samples,
            };
        }
        samples.sort_unstable();
        Measurement {
            min: samples[0],
            median: samples[samples.len() / 2],
            max: samples[samples.len() - 1],
            samples,
        }
    }

    /// The robust summary of this measurement's samples (IQR rejection,
    /// median/MAD) from [`oi_support::stats`].
    pub fn stats(&self) -> oi_support::stats::TimingStats {
        oi_support::stats::TimingStats::from_nanos(self.samples.clone())
    }

    /// The stable one-line text rendering (after a `group/label` prefix).
    fn render(&self) -> String {
        format!(
            "min {}  median {}  max {}  ({} samples)",
            format_nanos(self.min),
            format_nanos(self.median),
            format_nanos(self.max),
            self.samples.len(),
        )
    }
}

/// Times `f` once, returning its value plus a one-sample
/// [`Measurement`]. The shared clock path for one-shot durations — tools
/// report these instead of reading `Instant` directly, so every duration
/// carries its sample metadata.
pub fn time_once<T>(f: impl FnOnce() -> T) -> (T, Measurement) {
    let start = Instant::now();
    let value = f();
    let nanos = start.elapsed().as_nanos();
    (value, Measurement::from_samples(vec![nanos]))
}

/// Times `f` `samples.max(1)` times with no warm-up, returning the
/// sorted [`Measurement`] plus the samples in **arrival order** —
/// noise-floor calibration ([`oi_support::stats::ab_split_floor_pct`])
/// interleaves the arrival sequence, which sorting destroys.
pub fn measure<F: FnMut()>(samples: usize, mut f: F) -> (Measurement, Vec<u128>) {
    let arrival: Vec<u128> = (0..samples.max(1))
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_nanos()
        })
        .collect();
    (Measurement::from_samples(arrival.clone()), arrival)
}

/// Parses a sample-count value (from `--samples N` or the environment);
/// zero and garbage are rejected.
pub fn parse_samples(value: &str) -> Option<usize> {
    value.parse::<usize>().ok().filter(|&n| n > 0)
}

/// The `OI_BENCH_SAMPLES` override, if set to a positive integer.
pub fn samples_from_env() -> Option<usize> {
    std::env::var(SAMPLES_ENV)
        .ok()
        .and_then(|v| parse_samples(&v))
}

/// A named group of benchmark measurements, printed as they complete.
pub struct Group {
    name: String,
    sample_size: usize,
    /// When the environment pinned the sample count, per-group defaults
    /// set in bench sources no longer apply.
    env_pinned: bool,
}

impl Group {
    /// Starts a group. `name` prefixes every printed label. If
    /// `OI_BENCH_SAMPLES` is set it pins the sample count for the whole
    /// group, overriding later [`Group::sample_size`] calls.
    pub fn new(name: &str) -> Group {
        println!("# {name}");
        let env = samples_from_env();
        Group {
            name: name.to_string(),
            sample_size: env.unwrap_or(10),
            env_pinned: env.is_some(),
        }
    }

    /// Sets how many timed samples each measurement takes (default 10).
    /// Ignored when `OI_BENCH_SAMPLES` pinned the count.
    pub fn sample_size(mut self, n: usize) -> Group {
        if !self.env_pinned {
            self.sample_size = n.max(1);
        }
        self
    }

    /// Times `f`: one untimed warm-up, then `sample_size` timed runs
    /// through the shared [`measure`] path. Prints the stable text line
    /// and returns the measurement.
    pub fn bench<F: FnMut()>(&self, label: &str, mut f: F) -> Measurement {
        f();
        let (m, _arrival) = measure(self.sample_size, f);
        println!("{}/{label}  {}", self.name, m.render());
        m
    }
}

/// Formats a nanosecond duration with an adaptive unit.
pub fn format_nanos(nanos: u128) -> String {
    if nanos >= 1_000_000_000 {
        format!("{:.3}s", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:.3}ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.3}us", nanos as f64 / 1e3)
    } else {
        format!("{nanos}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formats_adaptive_units() {
        assert_eq!(format_nanos(999), "999ns");
        assert_eq!(format_nanos(1_500), "1.500us");
        assert_eq!(format_nanos(2_000_000), "2.000ms");
        assert_eq!(format_nanos(3_500_000_000), "3.500s");
    }

    #[test]
    fn bench_runs_warmup_plus_samples() {
        let mut runs = 0;
        Group::new("test")
            .sample_size(5)
            .bench("count", || runs += 1);
        assert_eq!(runs, 6);
    }

    #[test]
    fn bench_returns_order_statistics() {
        let m = Group::new("test").sample_size(5).bench("noop", || {});
        assert_eq!(m.samples.len(), 5);
        assert!(m.min <= m.median && m.median <= m.max);
        assert!(m.samples.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn measurement_from_samples_sorts_and_selects() {
        let m = Measurement::from_samples(vec![30, 10, 20]);
        assert_eq!((m.min, m.median, m.max), (10, 20, 30));
        assert_eq!(m.samples, vec![10, 20, 30]);
    }

    #[test]
    fn measurement_from_empty_samples_is_zeroed_not_panicking() {
        let m = Measurement::from_samples(Vec::new());
        assert_eq!((m.min, m.median, m.max), (0, 0, 0));
        assert!(m.samples.is_empty());
        let s = m.stats();
        assert_eq!((s.n, s.median, s.mad), (0, 0, 0));
    }

    #[test]
    fn measurement_from_single_sample() {
        let m = Measurement::from_samples(vec![42]);
        assert_eq!((m.min, m.median, m.max), (42, 42, 42));
        assert_eq!(m.stats().rel_mad_pct, 0.0);
    }

    #[test]
    fn measurement_from_identical_samples_has_zero_spread() {
        let m = Measurement::from_samples(vec![7; 6]);
        assert_eq!((m.min, m.median, m.max), (7, 7, 7));
        let s = m.stats();
        assert_eq!((s.mad, s.rejected), (0, 0));
    }

    #[test]
    fn measurement_stats_reject_outliers_the_raw_view_keeps() {
        let m = Measurement::from_samples(vec![100, 101, 99, 102, 98, 100, 101, 5000]);
        assert_eq!(m.max, 5000, "raw order statistics keep the outlier");
        let s = m.stats();
        assert_eq!(s.rejected, 1);
        assert_eq!(s.max, 102, "robust summary drops it");
    }

    #[test]
    fn time_once_returns_the_value_and_one_sample() {
        let (value, m) = time_once(|| 40 + 2);
        assert_eq!(value, 42);
        assert_eq!(m.samples.len(), 1);
        assert_eq!(m.min, m.median);
    }

    #[test]
    fn measure_preserves_arrival_order_alongside_sorted_samples() {
        let mut n = 0u32;
        let (m, arrival) = measure(4, || n += 1);
        assert_eq!(n, 4, "no warm-up run");
        assert_eq!(arrival.len(), 4);
        assert_eq!(m.samples.len(), 4);
        let mut sorted = arrival.clone();
        sorted.sort_unstable();
        assert_eq!(m.samples, sorted);
        // Zero samples are clamped up to one: every measurement measures.
        let (m, arrival) = measure(0, || {});
        assert_eq!((m.samples.len(), arrival.len()), (1, 1));
    }

    #[test]
    fn parse_samples_rejects_zero_and_garbage() {
        assert_eq!(parse_samples("8"), Some(8));
        assert_eq!(parse_samples("0"), None);
        assert_eq!(parse_samples("eight"), None);
        assert_eq!(parse_samples(""), None);
    }
}
