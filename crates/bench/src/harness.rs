//! A minimal wall-clock benchmarking harness with no external
//! dependencies.
//!
//! The `benches/` targets use this instead of Criterion so the workspace
//! builds and benches offline. Each measurement does one warm-up run,
//! then `sample_size` timed runs, and prints min/median/max per label in
//! a stable, greppable format:
//!
//! ```text
//! group/label  min 1.204ms  median 1.311ms  max 1.502ms  (10 samples)
//! ```

use std::time::Instant;

/// A named group of benchmark measurements, printed as they complete.
pub struct Group {
    name: String,
    sample_size: usize,
}

impl Group {
    /// Starts a group. `name` prefixes every printed label.
    pub fn new(name: &str) -> Group {
        println!("# {name}");
        Group {
            name: name.to_string(),
            sample_size: 10,
        }
    }

    /// Sets how many timed samples each measurement takes (default 10).
    pub fn sample_size(mut self, n: usize) -> Group {
        self.sample_size = n.max(1);
        self
    }

    /// Times `f`: one untimed warm-up, then `sample_size` timed runs.
    pub fn bench<F: FnMut()>(&self, label: &str, mut f: F) {
        f();
        let mut nanos: Vec<u128> = (0..self.sample_size)
            .map(|_| {
                let start = Instant::now();
                f();
                start.elapsed().as_nanos()
            })
            .collect();
        nanos.sort_unstable();
        let min = nanos[0];
        let median = nanos[nanos.len() / 2];
        let max = nanos[nanos.len() - 1];
        println!(
            "{}/{label}  min {}  median {}  max {}  ({} samples)",
            self.name,
            format_nanos(min),
            format_nanos(median),
            format_nanos(max),
            self.sample_size,
        );
    }
}

/// Formats a nanosecond duration with an adaptive unit.
pub fn format_nanos(nanos: u128) -> String {
    if nanos >= 1_000_000_000 {
        format!("{:.3}s", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:.3}ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.3}us", nanos as f64 / 1e3)
    } else {
        format!("{nanos}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formats_adaptive_units() {
        assert_eq!(format_nanos(999), "999ns");
        assert_eq!(format_nanos(1_500), "1.500us");
        assert_eq!(format_nanos(2_000_000), "2.000ms");
        assert_eq!(format_nanos(3_500_000_000), "3.500s");
    }

    #[test]
    fn bench_runs_warmup_plus_samples() {
        let mut runs = 0;
        Group::new("test")
            .sample_size(5)
            .bench("count", || runs += 1);
        assert_eq!(runs, 6);
    }
}
