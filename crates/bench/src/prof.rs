//! `oic prof` — the hierarchical performance observatory for one program.
//!
//! One invocation answers "where does the time go?" on both axes at once:
//!
//! - **Compile time**: the whole pipeline runs under a root `compile`
//!   span with an in-memory trace sink; the span stream is folded back
//!   into a tree of stages, each with call count, total (inclusive) and
//!   self (exclusive) wall-clock microseconds. Same-named siblings
//!   aggregate, so repeated passes show up as one stage with `count > 1`.
//!   By construction the self times across the tree sum to the root's
//!   total (up to per-span microsecond rounding) — the report never
//!   loses or double-counts time.
//! - **Run time**: the baseline and object-inlined builds both execute
//!   under the VM's opt-in profiler, side by side: modeled metrics,
//!   per-method self cycles, per-opcode dispatch histograms, and the
//!   ranked field-access sites that name where inlining pays off.
//!
//! Output is a human report by default, the schema-stable `oi.prof.v1`
//! document under `--json`, or `--collapse` collapsed-stack lines
//! (`a;b;c value`) that flamegraph tooling consumes directly: compile
//! stages weighted by self microseconds, VM methods by self cycles.

use crate::harness;
use oi_support::cli::{Arg, ArgScanner};
use oi_support::trace::{self, Event, EventKind, MemorySink, Sink, Tracer};
use oi_support::Json;
use std::rc::Rc;

/// Schema tag of `oic prof --json` documents.
pub const PROF_SCHEMA: &str = "oi.prof.v1";

const USAGE: &str = "usage: oic prof <file.oi> [--json | --collapse] [--out FILE]

profile one program end to end: hierarchical compile-stage self/total
wall times plus baseline-vs-inlined VM execution profiles (methods,
opcode dispatch, field-access sites).

  --json      write the schema-stable oi.prof.v1 document
  --collapse  write collapsed stacks (`a;b;c value`) for flamegraph
              tooling: compile stages in self-us, VM methods in cycles
  --out FILE  write to FILE instead of stdout
";

/// One aggregated node of the compile-stage tree.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StageNode {
    /// Span name (`pipeline.analyze`, ...).
    pub name: String,
    /// How many spans with this name closed at this tree position.
    pub count: u64,
    /// Inclusive wall-clock microseconds.
    pub total_us: u64,
    /// Exclusive microseconds: total minus the children's totals.
    pub self_us: u64,
    /// Child stages in first-seen order.
    pub children: Vec<StageNode>,
}

impl StageNode {
    /// The node (and subtree) as `oi.prof.v1` JSON.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("name", self.name.as_str().into()),
            ("count", self.count.into()),
            ("total_us", self.total_us.into()),
            ("self_us", self.self_us.into()),
            (
                "children",
                Json::Arr(self.children.iter().map(StageNode::to_json).collect()),
            ),
        ])
    }

    /// Sum of `self_us` across this subtree. Equals `total_us` up to the
    /// per-span microsecond rounding the trace layer introduces.
    pub fn self_sum_us(&self) -> u64 {
        self.self_us
            + self
                .children
                .iter()
                .map(StageNode::self_sum_us)
                .sum::<u64>()
    }

    /// Number of nodes in this subtree (the rounding tolerance bound:
    /// each span can lose strictly less than 1us to truncation).
    pub fn node_count(&self) -> u64 {
        1 + self.children.iter().map(StageNode::node_count).sum::<u64>()
    }
}

/// Merges `node` into `list`, aggregating with an existing same-named
/// sibling (counts and times add; children merge recursively).
fn merge_into(list: &mut Vec<StageNode>, node: StageNode) {
    if let Some(existing) = list.iter_mut().find(|n| n.name == node.name) {
        existing.count += node.count;
        existing.total_us += node.total_us;
        existing.self_us += node.self_us;
        for child in node.children {
            merge_into(&mut existing.children, child);
        }
    } else {
        list.push(node);
    }
}

/// Folds a span event stream back into the aggregated stage tree.
///
/// Spans nest strictly (the trace layer is thread-local and guards are
/// scoped), so a start/end stack reconstructs the hierarchy exactly:
/// each `SpanEnd` carries its inclusive time, children subtract out to
/// give self time, and same-named siblings merge.
pub fn build_stage_tree(events: &[Event]) -> Vec<StageNode> {
    let mut roots: Vec<StageNode> = Vec::new();
    // One frame per open span: the children closed under it so far.
    let mut stack: Vec<Vec<StageNode>> = Vec::new();
    for event in events {
        match event.kind {
            EventKind::SpanStart => stack.push(Vec::new()),
            EventKind::SpanEnd => {
                let children = stack.pop().unwrap_or_default();
                let total_us = event.elapsed_us.unwrap_or(0);
                let child_total: u64 = children.iter().map(|c| c.total_us).sum();
                let node = StageNode {
                    name: event.name.clone(),
                    count: 1,
                    total_us,
                    // Saturating: children's rounded-down totals can
                    // exceed the parent's rounded-down total by < 1us
                    // per child.
                    self_us: total_us.saturating_sub(child_total),
                    children,
                };
                match stack.last_mut() {
                    Some(parent) => merge_into(parent, node),
                    None => merge_into(&mut roots, node),
                }
            }
            EventKind::Instant => {}
        }
    }
    // Unclosed spans (a panic mid-pipeline) leave frames behind; fold
    // their finished children up so no measured time disappears.
    while let Some(orphans) = stack.pop() {
        for node in orphans {
            match stack.last_mut() {
                Some(parent) => merge_into(parent, node),
                None => merge_into(&mut roots, node),
            }
        }
    }
    roots
}

/// One build's profiled execution.
struct VmSide {
    wall_ns: u64,
    run: oi_vm::RunResult,
}

/// Everything one `oic prof` invocation measures.
struct ProfReport {
    file: String,
    compile: StageNode,
    baseline: VmSide,
    inlined: VmSide,
}

/// Compiles and runs `source` under full instrumentation.
fn measure(path: &str, source: &str) -> Result<ProfReport, String> {
    use oi_core::pipeline::InlineConfig;

    let sink = Rc::new(MemorySink::default());
    let sinks: Vec<Rc<dyn Sink>> = vec![sink.clone()];
    let tracer = Rc::new(Tracer::new(sinks));
    let inline = InlineConfig::default();
    let (base, opt) = {
        let _guard = trace::install(tracer.clone());
        let _root = trace::span("compile");
        let program = {
            let _s = trace::span("compile.frontend");
            oi_ir::lower::compile(source).map_err(|e| format!("{path}: {}", e.render(source)))?
        };
        let base = {
            let _s = trace::span("compile.baseline");
            oi_core::pipeline::try_baseline(&program, &inline.opt)
                .map_err(|e| format!("{path}: baseline pipeline: {e}"))?
        };
        let opt = {
            let _s = trace::span("compile.inlined");
            oi_core::pipeline::try_optimize(&program, &inline)
                .map_err(|e| format!("{path}: inlining pipeline: {e}"))?
        };
        (base, opt)
    };
    let trees = build_stage_tree(&sink.snapshot());
    let compile = trees
        .into_iter()
        .find(|n| n.name == "compile")
        .ok_or_else(|| "trace produced no compile span".to_string())?;

    let profiled = oi_vm::VmConfig {
        profile: true,
        ..oi_vm::VmConfig::default()
    };
    let run_side = |program: &oi_ir::Program, what: &str| -> Result<VmSide, String> {
        let (result, wall) = harness::time_once(|| oi_vm::run(program, &profiled));
        let run = result.map_err(|e| format!("{path}: {what} runtime error: {e}"))?;
        Ok(VmSide {
            wall_ns: wall.median as u64,
            run,
        })
    };
    let baseline = run_side(&base, "baseline")?;
    let inlined = run_side(&opt.program, "inlined")?;
    if baseline.run.output != inlined.run.output {
        return Err(format!(
            "{path}: OUTPUT MISMATCH between baseline and inlined builds — this is a compiler bug"
        ));
    }
    Ok(ProfReport {
        file: path.to_string(),
        compile,
        baseline,
        inlined,
    })
}

impl ProfReport {
    /// The `oi.prof.v1` document.
    fn to_json(&self) -> Json {
        let vm_side = |side: &VmSide| {
            Json::obj(vec![
                ("wall_ns", side.wall_ns.into()),
                ("metrics", side.run.metrics.to_json()),
                (
                    "profile",
                    side.run
                        .profile
                        .as_ref()
                        .map(|p| p.to_json())
                        .unwrap_or(Json::Null),
                ),
            ])
        };
        Json::obj(vec![
            ("schema", PROF_SCHEMA.into()),
            ("file", self.file.as_str().into()),
            (
                "compile",
                Json::obj(vec![
                    ("total_us", self.compile.total_us.into()),
                    ("self_sum_us", self.compile.self_sum_us().into()),
                    ("stages", Json::Arr(vec![self.compile.to_json()])),
                ]),
            ),
            (
                "vm",
                Json::obj(vec![
                    ("baseline", vm_side(&self.baseline)),
                    ("inlined", vm_side(&self.inlined)),
                    (
                        "speedup",
                        self.inlined
                            .run
                            .metrics
                            .speedup_over(&self.baseline.run.metrics)
                            .into(),
                    ),
                ]),
            ),
        ])
    }

    /// Collapsed-stack lines: compile stages weighted by self-us, VM
    /// methods by self cycles (`vm.baseline;Class::method 1234`).
    fn to_collapse(&self) -> String {
        let mut out = String::new();
        fn walk(node: &StageNode, prefix: &str, out: &mut String) {
            let path = if prefix.is_empty() {
                node.name.clone()
            } else {
                format!("{prefix};{}", node.name)
            };
            if node.self_us > 0 {
                out.push_str(&format!("{path} {}\n", node.self_us));
            }
            for child in &node.children {
                walk(child, &path, out);
            }
        }
        walk(&self.compile, "", &mut out);
        for (tag, side) in [
            ("vm.baseline", &self.baseline),
            ("vm.inlined", &self.inlined),
        ] {
            if let Some(profile) = &side.run.profile {
                for m in &profile.methods {
                    if m.cycles > 0 {
                        out.push_str(&format!("{tag};{} {}\n", m.name, m.cycles));
                    }
                }
            }
        }
        out
    }

    /// The human report.
    fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("=== compile stages: {} ===\n", self.file));
        out.push_str(&format!(
            "{:>10} {:>10} {:>7}  stage\n",
            "total_us", "self_us", "count"
        ));
        fn walk(node: &StageNode, depth: usize, out: &mut String) {
            out.push_str(&format!(
                "{:>10} {:>10} {:>7}  {}{}\n",
                node.total_us,
                node.self_us,
                node.count,
                "  ".repeat(depth),
                node.name
            ));
            for child in &node.children {
                walk(child, depth + 1, out);
            }
        }
        walk(&self.compile, 0, &mut out);
        out.push_str(&format!(
            "=== vm: baseline vs inlined ({:.2}x cycle speedup) ===\n",
            self.inlined
                .run
                .metrics
                .speedup_over(&self.baseline.run.metrics)
        ));
        for (tag, side) in [("baseline", &self.baseline), ("inlined", &self.inlined)] {
            out.push_str(&format!(
                "--- {tag}: {} cycles, wall {} ---\n",
                side.run.metrics.cycles,
                harness::format_nanos(side.wall_ns as u128)
            ));
            if let Some(profile) = &side.run.profile {
                out.push_str(&profile.to_string());
            }
        }
        out
    }
}

/// Output format selected by flags.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Json,
    Collapse,
}

/// Runs `oic prof` on pre-split arguments; returns the process exit code
/// (0 success, 1 compile/run/IO failure, 2 usage error).
pub fn cli_main(args: &[String]) -> u8 {
    let mut format = Format::Text;
    let mut out: Option<String> = None;
    let mut files = Vec::new();
    let mut scanner = ArgScanner::new(args.to_vec());
    while let Some(arg) = scanner.next() {
        let arg = match arg {
            Ok(arg) => arg,
            Err(msg) => return usage_error(&msg),
        };
        match arg {
            Arg::Flag { name, value: None } => match name.as_str() {
                "json" if format == Format::Collapse => {
                    return usage_error("`--json` and `--collapse` are mutually exclusive")
                }
                "collapse" if format == Format::Json => {
                    return usage_error("`--json` and `--collapse` are mutually exclusive")
                }
                "json" => format = Format::Json,
                "collapse" => format = Format::Collapse,
                "out" => match scanner.value_for("--out") {
                    Ok(path) => out = Some(path),
                    Err(_) => return usage_error("`--out` needs a file path"),
                },
                "help" => {
                    print!("{USAGE}");
                    return 0;
                }
                other => return usage_error(&format!("unknown flag `--{other}`")),
            },
            Arg::Flag { name, value } => {
                return usage_error(&format!(
                    "unknown flag `--{name}={}`",
                    value.unwrap_or_default()
                ));
            }
            Arg::Positional(path) => files.push(path),
        }
    }
    let [path] = files.as_slice() else {
        return usage_error("prof needs exactly one <file.oi>");
    };
    let source = match std::fs::read_to_string(path) {
        Ok(source) => source,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return 1;
        }
    };
    let report = match measure(path, &source) {
        Ok(report) => report,
        Err(msg) => {
            eprintln!("{msg}");
            return 1;
        }
    };
    let rendered = match format {
        Format::Text => report.to_text(),
        Format::Json => format!("{}\n", report.to_json()),
        Format::Collapse => report.to_collapse(),
    };
    match out {
        Some(out_path) => {
            if let Err(e) = std::fs::write(&out_path, rendered) {
                eprintln!("cannot write {out_path}: {e}");
                return 1;
            }
            eprintln!("wrote {out_path}");
            0
        }
        None => {
            print!("{rendered}");
            0
        }
    }
}

fn usage_error(msg: &str) -> u8 {
    eprintln!("{msg}\n\n{USAGE}");
    2
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span_start(name: &str) -> Event {
        Event {
            kind: EventKind::SpanStart,
            name: name.to_string(),
            depth: 0,
            elapsed_us: None,
            fields: Vec::new(),
        }
    }

    fn span_end(name: &str, us: u64) -> Event {
        Event {
            kind: EventKind::SpanEnd,
            name: name.to_string(),
            depth: 0,
            elapsed_us: Some(us),
            fields: Vec::new(),
        }
    }

    #[test]
    fn stage_tree_computes_self_time_and_aggregates_siblings() {
        // root { a { leaf } a { leaf } b }
        let events = vec![
            span_start("root"),
            span_start("a"),
            span_start("leaf"),
            span_end("leaf", 10),
            span_end("a", 30),
            span_start("a"),
            span_start("leaf"),
            span_end("leaf", 5),
            span_end("a", 15),
            span_start("b"),
            span_end("b", 40),
            span_end("root", 100),
        ];
        let tree = build_stage_tree(&events);
        assert_eq!(tree.len(), 1);
        let root = &tree[0];
        assert_eq!(
            (root.name.as_str(), root.count, root.total_us),
            ("root", 1, 100)
        );
        // root self = 100 - (30 + 15 + 40)
        assert_eq!(root.self_us, 15);
        assert_eq!(root.children.len(), 2, "same-named siblings merge");
        let a = &root.children[0];
        assert_eq!(
            (a.name.as_str(), a.count, a.total_us, a.self_us),
            ("a", 2, 45, 30)
        );
        let leaf = &a.children[0];
        assert_eq!((leaf.count, leaf.total_us, leaf.self_us), (2, 15, 15));
        // The invariant the JSON consumers rely on: self times sum to
        // the root total exactly (no rounding in synthetic events).
        assert_eq!(root.self_sum_us(), root.total_us);
    }

    #[test]
    fn stage_tree_saturates_when_children_outround_the_parent() {
        let events = vec![
            span_start("p"),
            span_start("c"),
            span_end("c", 7),
            span_end("p", 6),
        ];
        let tree = build_stage_tree(&events);
        assert_eq!(tree[0].self_us, 0);
    }

    #[test]
    fn stage_tree_folds_orphans_of_unclosed_spans() {
        // `open` never ends (as after a contained panic): its finished
        // child must still surface at the root rather than vanish.
        let events = vec![span_start("open"), span_start("c"), span_end("c", 9)];
        let tree = build_stage_tree(&events);
        assert_eq!(tree.len(), 1);
        assert_eq!((tree[0].name.as_str(), tree[0].total_us), ("c", 9));
    }

    const PROGRAM: &str = "
class Pt { field x; method init(a) { self.x = a; } }
class Box { field p; method init(a) { self.p = new Pt(a); } }
global KEEP;
fn main() {
  var b = new Box(21);
  KEEP = b;
  print b.p.x * 2;
}
";

    fn write_temp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("oi-prof-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        std::fs::write(&path, PROGRAM).unwrap();
        path
    }

    #[test]
    fn prof_measures_a_real_program_end_to_end() {
        let path = write_temp("end_to_end.oi");
        let source = std::fs::read_to_string(&path).unwrap();
        let report = measure(path.to_str().unwrap(), &source).unwrap();
        // Hierarchy: the root span owns frontend + both pipelines.
        let names: Vec<&str> = report
            .compile
            .children
            .iter()
            .map(|c| c.name.as_str())
            .collect();
        assert_eq!(
            names,
            ["compile.frontend", "compile.baseline", "compile.inlined"]
        );
        fn subtree_has(node: &StageNode, name: &str) -> bool {
            node.name == name || node.children.iter().any(|c| subtree_has(c, name))
        }
        let inlined_stage = &report.compile.children[2];
        assert!(
            subtree_has(inlined_stage, "pipeline.analyze"),
            "inlining stage must expose pipeline phases"
        );
        // The accounting invariant: self times sum back to the total,
        // within the per-node microsecond-truncation tolerance.
        let (total, self_sum) = (report.compile.total_us, report.compile.self_sum_us());
        let tolerance = report.compile.node_count();
        assert!(
            total.abs_diff(self_sum) <= tolerance,
            "self/total accounting leaked time: total {total}us, self-sum {self_sum}us"
        );
        // Both VM sides carry full profiles and the inlined build wins.
        for side in [&report.baseline, &report.inlined] {
            let profile = side.run.profile.as_ref().unwrap();
            assert!(!profile.methods.is_empty());
            assert!(!profile.opcodes.is_empty());
            assert!(!profile.accesses.is_empty());
        }
        assert!(
            report.inlined.run.metrics.cycles <= report.baseline.run.metrics.cycles,
            "inlining should not slow this program down"
        );
    }

    #[test]
    fn prof_json_and_collapse_are_well_formed() {
        let path = write_temp("formats.oi");
        let source = std::fs::read_to_string(&path).unwrap();
        let report = measure(path.to_str().unwrap(), &source).unwrap();

        let doc = Json::parse(&report.to_json().to_string()).unwrap();
        assert_eq!(doc.get("schema").and_then(Json::as_str), Some(PROF_SCHEMA));
        let compile = doc.get("compile").unwrap();
        assert!(compile.get("total_us").and_then(Json::as_i64).is_some());
        let stages = compile.get("stages").and_then(Json::as_arr).unwrap();
        assert_eq!(
            stages[0].get("name").and_then(Json::as_str),
            Some("compile")
        );
        for build in ["baseline", "inlined"] {
            let side = doc.get("vm").unwrap().get(build).unwrap();
            assert!(side.get("metrics").unwrap().get("cycles").is_some());
            let profile = side.get("profile").unwrap();
            for table in ["methods", "sites", "opcodes", "accesses"] {
                assert!(profile.get(table).is_some(), "{build} missing {table}");
            }
        }

        let collapse = report.to_collapse();
        for line in collapse.lines() {
            let (stack, value) = line.rsplit_once(' ').expect("`stack value` shape");
            assert!(!stack.is_empty());
            value.parse::<u64>().expect("numeric sample value");
        }
        assert!(
            collapse.lines().any(|l| l.starts_with("compile;")),
            "compile stacks missing:\n{collapse}"
        );
        assert!(
            collapse.lines().any(|l| l.starts_with("vm.inlined;")),
            "vm stacks missing:\n{collapse}"
        );
    }

    #[test]
    fn cli_rejects_bad_usage() {
        let run = |args: &[&str]| {
            let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
            cli_main(&args)
        };
        assert_eq!(run(&[]), 2);
        assert_eq!(run(&["a.oi", "b.oi"]), 2);
        assert_eq!(run(&["--wat", "a.oi"]), 2);
        assert_eq!(run(&["--json", "--collapse", "a.oi"]), 2);
        assert_eq!(run(&["/no/such/file.oi"]), 1);
    }
}
