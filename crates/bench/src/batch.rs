//! Panic-isolated batch compilation: `oic batch`.
//!
//! Compiles a fleet of programs — `.oi` files, whole directories, and/or a
//! generated fuzz corpus — through the graceful-degradation ladder
//! ([`oi_core::ladder::optimize_with_ladder`]), one resource
//! [`Budget`] per job. No job can take the batch down:
//!
//! - every job runs inside [`contained`], so a panic anywhere in the
//!   pipeline is a *result* (the job is retried once starting at the
//!   `inlining-off` tier; a second panic lands it on the synthetic
//!   `"panicked"` tier) rather than a crashed driver;
//! - `--deadline-ms` arms a cooperative per-job deadline: the analysis
//!   polls it, freezes its contour set, and completes with a sound,
//!   coarser result flagged `degraded` instead of overrunning;
//! - `--max-rounds` bounds fixpoint rounds the same way;
//! - the oracle guards every inlining tier, so a miscompilation descends
//!   the ladder instead of reaching the user.
//!
//! The summary is a schema-stable `oi.batch.v1` document with per-job
//! tiers and fleet-level `tier_counts`. Exit 0 when every job landed on a
//! real tier, 1 when any finding survived (a panicked or non-compiling
//! job), 2 on usage errors.

use crate::harness::time_once;
use oi_core::cache::{config_fingerprint, Artifact, ArtifactCache, CacheKey};
use oi_core::ladder::{optimize_with_ladder, LadderConfig, LadderOutcome, Tier};
use oi_support::panic::{contained, silence_hook};
use oi_support::{Budget, Json};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::Duration;

/// Batch-driver parameters.
#[derive(Clone, Debug)]
pub struct BatchConfig {
    /// Per-job wall-clock deadline in milliseconds (`None` = unlimited).
    pub deadline_ms: Option<u64>,
    /// Per-job fixpoint-round budget (`None` = the analysis' own cap).
    pub max_rounds: Option<u64>,
    /// Worker threads. Each worker compiles its own jobs from the shared
    /// source strings (programs are not shared across threads).
    pub jobs: usize,
    /// Keep compiling after a finding instead of draining the queue.
    pub keep_going: bool,
}

impl Default for BatchConfig {
    fn default() -> Self {
        Self {
            deadline_ms: None,
            max_rounds: None,
            jobs: 1,
            keep_going: false,
        }
    }
}

/// One unit of work: a display name and the source text.
#[derive(Clone, Debug)]
pub struct BatchJob {
    /// File path or synthetic `fuzz:` name, for the report.
    pub name: String,
    /// Izzy source.
    pub source: String,
}

/// The outcome of one job.
#[derive(Clone, Debug)]
pub struct JobResult {
    /// The job's display name.
    pub name: String,
    /// Landing tier name (`"guarded-full"`, `"reduced-precision"`,
    /// `"inlining-off"`, `"identity"`), or the synthetic `"panicked"` /
    /// `"compile-error"` verdicts.
    pub tier: String,
    /// `true` when the analysis exhausted its budget and completed with
    /// globally widened contours.
    pub degraded: bool,
    /// Ladder descents taken (0 on a top-tier landing).
    pub descents: usize,
    /// Descents caused by an unrepaired oracle rejection.
    pub divergences: usize,
    /// Firewall retractions on the landing tier.
    pub retractions: usize,
    /// Ladder descents whose oracle rejection was a *sanitizer* finding
    /// (checked execution caught inline-state corruption the output
    /// comparison alone would have missed). Additive `oi.batch.v1` field.
    pub sanitizer_rejections: usize,
    /// `true` when the job needed the panic-retry at `inlining-off`.
    pub retried_after_panic: bool,
    /// `true` when the job's artifact came from the batch-wide
    /// content-addressed cache (a duplicate corpus file compiled earlier
    /// in this invocation). Additive `oi.batch.v1` field.
    pub cache_hit: bool,
    /// Wall-clock time spent on the job (measured through
    /// [`crate::harness::time_once`], like every wall sample in this
    /// workspace).
    pub wall_ms: u64,
    /// Fields inlined on the landing tier.
    pub fields_inlined: usize,
    /// Failure detail for `"panicked"` / `"compile-error"` jobs.
    pub error: String,
}

impl JobResult {
    /// `true` when the job landed on a real tier: some program was
    /// produced, even if a degraded or baseline one.
    pub fn ok(&self) -> bool {
        !matches!(self.tier.as_str(), "panicked" | "compile-error")
    }

    /// The result as schema-stable JSON.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("file", self.name.clone().into()),
            ("tier", self.tier.clone().into()),
            ("ok", self.ok().into()),
            ("degraded", self.degraded.into()),
            ("descents", self.descents.into()),
            ("divergences", self.divergences.into()),
            ("retractions", self.retractions.into()),
            ("sanitizer_rejections", self.sanitizer_rejections.into()),
            ("retried_after_panic", self.retried_after_panic.into()),
            ("cache_hit", self.cache_hit.into()),
            ("fields_inlined", self.fields_inlined.into()),
            ("wall_ms", self.wall_ms.into()),
            ("error", self.error.clone().into()),
        ])
    }
}

/// Tier names in the order `tier_counts` reports them (every key is
/// always present, so consumers can rely on the shape).
pub const TIER_NAMES: [&str; 6] = [
    "guarded-full",
    "reduced-precision",
    "inlining-off",
    "identity",
    "panicked",
    "compile-error",
];

/// The whole batch's outcome.
#[derive(Clone, Debug, Default)]
pub struct BatchReport {
    /// Per-job results, in submission order.
    pub results: Vec<JobResult>,
    /// Jobs skipped because an earlier finding stopped the queue
    /// (always 0 under `--keep-going`).
    pub skipped: usize,
}

impl BatchReport {
    /// `true` when every executed job landed on a real tier and nothing
    /// was skipped.
    pub fn ok(&self) -> bool {
        self.skipped == 0 && self.results.iter().all(JobResult::ok)
    }

    /// How many jobs landed on each tier, in [`TIER_NAMES`] order.
    pub fn tier_counts(&self) -> Vec<(&'static str, usize)> {
        TIER_NAMES
            .iter()
            .map(|&t| (t, self.results.iter().filter(|r| r.tier == t).count()))
            .collect()
    }

    /// The report as a schema-stable `oi.batch.v1` document.
    pub fn to_json(&self) -> Json {
        let degraded = self.results.iter().filter(|r| r.degraded).count();
        let sanitizer_rejections: usize = self.results.iter().map(|r| r.sanitizer_rejections).sum();
        let cache_hits = self.results.iter().filter(|r| r.cache_hit).count();
        Json::obj(vec![
            ("schema", "oi.batch.v1".into()),
            ("total", self.results.len().into()),
            ("skipped", self.skipped.into()),
            ("degraded", degraded.into()),
            // Additive fleet counter: sanitizer-caught oracle rejections.
            ("sanitizer_rejections", sanitizer_rejections.into()),
            // Additive fleet counter: jobs served from the artifact cache
            // (duplicate corpus files compile once per invocation).
            ("cache_hits", cache_hits.into()),
            (
                "tier_counts",
                Json::Obj(
                    self.tier_counts()
                        .into_iter()
                        .map(|(t, n)| (t.to_owned(), n.into()))
                        .collect(),
                ),
            ),
            (
                "jobs",
                Json::Arr(self.results.iter().map(JobResult::to_json).collect()),
            ),
            ("ok", self.ok().into()),
        ])
    }
}

/// LRU byte budget for the per-invocation artifact cache. Generous:
/// batch corpora are small programs, so this effectively means "every
/// distinct source compiles once".
const BATCH_CACHE_BYTES: usize = 64 << 20;

/// The per-job budget dictated by the batch flags.
fn job_budget(config: &BatchConfig) -> Budget {
    let mut b = Budget::unlimited();
    if let Some(ms) = config.deadline_ms {
        b = b.with_deadline(Duration::from_millis(ms));
    }
    if let Some(rounds) = config.max_rounds {
        b = b.with_rounds(rounds);
    }
    b
}

/// A job verdict derived from a ladder outcome (cached or fresh).
fn result_from_outcome(out: &LadderOutcome, cache_hit: bool) -> JobResult {
    let divergences = out
        .descents
        .iter()
        .filter(|d| d.reason.starts_with("oracle rejection"))
        .count();
    let sanitizer_rejections = out
        .descents
        .iter()
        .filter(|d| d.reason.contains("sanitizer reported"))
        .count();
    JobResult {
        name: String::new(),
        tier: out.tier_name().to_owned(),
        degraded: out.optimized.report.degraded,
        descents: out.descents.len(),
        divergences,
        retractions: out.optimized.report.retractions,
        sanitizer_rejections,
        retried_after_panic: false,
        cache_hit,
        wall_ms: 0,
        fields_inlined: out.optimized.report.fields_inlined,
        error: String::new(),
    }
}

/// A failure verdict (`"compile-error"` / `"panicked"`).
fn failed_result(tier: &str, retried: bool, error: String) -> JobResult {
    JobResult {
        name: String::new(),
        tier: tier.to_owned(),
        degraded: false,
        descents: 0,
        divergences: 0,
        retractions: 0,
        sanitizer_rejections: 0,
        retried_after_panic: retried,
        cache_hit: false,
        wall_ms: 0,
        fields_inlined: 0,
        error,
    }
}

/// Compiles and ladders one source, starting at `start`, through the
/// batch-wide artifact cache: a byte-identical source under an identical
/// configuration (start tier and budget knobs included) reuses the
/// earlier job's artifact. `Err` carries a compile diagnostic; panics are
/// the *caller's* to contain.
fn attempt(
    source: &str,
    start: Tier,
    config: &BatchConfig,
    cache: &ArtifactCache,
) -> Result<JobResult, String> {
    let ladder = LadderConfig {
        start,
        ..Default::default()
    };
    let key = CacheKey::whole_program(
        source,
        config_fingerprint(&ladder, config.max_rounds, config.deadline_ms),
    );
    if let Some(artifact) = cache.get(&key) {
        return Ok(result_from_outcome(&artifact.outcome, true));
    }
    let program = oi_ir::lower::compile(source).map_err(|e| e.render(source))?;
    let out = optimize_with_ladder(&program, &ladder, &job_budget(config));
    let result = result_from_outcome(&out, false);
    cache.insert(key, Artifact::new(out));
    Ok(result)
}

/// Runs one job with panic containment and the one-shot retry at
/// `inlining-off`.
fn run_job(job: &BatchJob, config: &BatchConfig, cache: &ArtifactCache) -> JobResult {
    // One timing path for every wall sample in the workspace: the whole
    // attempt (retry included) is measured through the bench harness.
    let (mut result, wall) = time_once(|| {
        match contained(|| attempt(&job.source, Tier::GuardedFull, config, cache)) {
            Ok(Ok(r)) => r,
            Ok(Err(diag)) => failed_result("compile-error", false, diag),
            Err(panic_msg) => {
                // The ladder contains per-tier panics itself, so reaching this
                // arm means the driver machinery panicked. Retry once from the
                // bottom rung before giving up on the job.
                match contained(|| attempt(&job.source, Tier::InliningOff, config, cache)) {
                    Ok(Ok(mut r)) => {
                        r.retried_after_panic = true;
                        r
                    }
                    Ok(Err(diag)) => failed_result("compile-error", true, diag),
                    Err(second) => failed_result(
                        "panicked",
                        true,
                        format!("first: {panic_msg}; retry: {second}"),
                    ),
                }
            }
        }
    });
    result.name = job.name.clone();
    result.wall_ms = (wall.median / 1_000_000) as u64;
    result
}

/// Runs the batch. Workers pull jobs from a shared index; results keep
/// submission order. A finding stops the queue unless `keep_going`.
pub fn run_batch(jobs: &[BatchJob], config: &BatchConfig) -> BatchReport {
    // Contained panics would otherwise print a backtrace per job.
    let _hook = silence_hook();
    // One artifact cache per invocation, shared across workers: duplicate
    // corpus files compile once, later copies are cache hits.
    let cache = ArtifactCache::new(BATCH_CACHE_BYTES);
    let next = AtomicUsize::new(0);
    let stop = AtomicBool::new(false);
    let workers = config.jobs.max(1).min(jobs.len().max(1));
    let mut slots: Vec<Option<JobResult>> = vec![None; jobs.len()];

    let claim = |_worker: usize| -> Option<usize> {
        if !config.keep_going && stop.load(Ordering::SeqCst) {
            return None;
        }
        let i = next.fetch_add(1, Ordering::SeqCst);
        (i < jobs.len()).then_some(i)
    };
    let work = |i: usize| -> JobResult {
        let r = run_job(&jobs[i], config, &cache);
        if !r.ok() {
            stop.store(true, Ordering::SeqCst);
        }
        r
    };

    if workers <= 1 {
        for (i, slot) in slots.iter_mut().enumerate() {
            if !config.keep_going && stop.load(Ordering::SeqCst) {
                break;
            }
            *slot = Some(work(i));
        }
    } else {
        let results: Vec<(usize, JobResult)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let claim = &claim;
                    let work = &work;
                    scope.spawn(move || {
                        let mut got = Vec::new();
                        while let Some(i) = claim(w) {
                            got.push((i, work(i)));
                        }
                        got
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("worker threads contain their panics"))
                .collect()
        });
        for (i, r) in results {
            slots[i] = Some(r);
        }
    }

    let mut report = BatchReport::default();
    for slot in slots {
        match slot {
            Some(r) => report.results.push(r),
            None => report.skipped += 1,
        }
    }
    report
}

/// Expands positional arguments into jobs: a directory contributes every
/// `*.oi` file inside it (sorted, non-recursive), a file contributes
/// itself.
pub fn collect_file_jobs(paths: &[String]) -> Result<Vec<BatchJob>, String> {
    let mut files: Vec<String> = Vec::new();
    for p in paths {
        let meta = std::fs::metadata(p).map_err(|e| format!("cannot read {p}: {e}"))?;
        if meta.is_dir() {
            let mut found: Vec<String> = std::fs::read_dir(p)
                .map_err(|e| format!("cannot read {p}: {e}"))?
                .filter_map(|entry| {
                    let path = entry.ok()?.path();
                    (path.extension()? == "oi").then(|| path.to_string_lossy().into_owned())
                })
                .collect();
            found.sort();
            if found.is_empty() {
                return Err(format!("no .oi files in {p}"));
            }
            files.extend(found);
        } else {
            files.push(p.clone());
        }
    }
    files
        .into_iter()
        .map(|f| {
            let source =
                std::fs::read_to_string(&f).map_err(|e| format!("cannot read {f}: {e}"))?;
            Ok(BatchJob { name: f, source })
        })
        .collect()
}

/// Generates `n` fuzz-corpus jobs from `seed` (the same derivation as
/// `oic fuzz`, so findings cross-reference).
pub fn fuzz_corpus_jobs(n: usize, seed: u64) -> Vec<BatchJob> {
    (0..n)
        .map(|case| {
            let s = crate::fuzz::case_seed(seed, case);
            BatchJob {
                name: format!("fuzz:{case}:seed-{s}"),
                source: crate::fuzz::generate_adversarial(s),
            }
        })
        .collect()
}

const USAGE: &str = "usage: oic batch [flags] [<dir-or-file.oi>...]

Compiles every input through the graceful-degradation ladder with per-job
panic isolation and resource budgets. Exit 0 when every job lands on a
tier, 1 when any finding survives, 2 on usage errors.

  --deadline-ms N   cooperative per-job analysis deadline (degrades, not
                    fails: exhausted budgets widen the analysis soundly)
  --max-rounds N    per-job fixpoint-round budget (same degradation path)
  --jobs N          worker threads (default 1)
  --keep-going      drain the queue even after a finding
  --fuzz-corpus N   add N generated adversarial programs as jobs
  --seed S          base seed for --fuzz-corpus (default 1)
  --json            emit a schema-stable oi.batch.v1 document
  --out FILE        write the report to FILE instead of stdout
";

/// Runs the `oic batch` command-line interface on pre-split arguments and
/// returns the process exit code.
pub fn cli_main(args: &[String]) -> u8 {
    use oi_support::cli::{Arg, ArgScanner};
    let mut config = BatchConfig::default();
    let mut paths: Vec<String> = Vec::new();
    let mut fuzz_corpus = 0usize;
    let mut seed = 1u64;
    let mut json_output = false;
    let mut out: Option<String> = None;
    let mut scanner = ArgScanner::new(args.to_vec());
    while let Some(arg) = scanner.next() {
        let arg = match arg {
            Ok(arg) => arg,
            Err(msg) => return usage_error(&msg),
        };
        match arg {
            Arg::Flag { name, value: None } => match name.as_str() {
                "deadline-ms" => match flag_u64(&mut scanner, "--deadline-ms") {
                    Ok(n) => config.deadline_ms = Some(n),
                    Err(msg) => return usage_error(&msg),
                },
                "max-rounds" => match flag_u64(&mut scanner, "--max-rounds") {
                    Ok(n) => config.max_rounds = Some(n),
                    Err(msg) => return usage_error(&msg),
                },
                "jobs" => match flag_u64(&mut scanner, "--jobs") {
                    Ok(n) => config.jobs = n as usize,
                    Err(msg) => return usage_error(&msg),
                },
                "fuzz-corpus" => match flag_u64(&mut scanner, "--fuzz-corpus") {
                    Ok(n) => fuzz_corpus = n as usize,
                    Err(msg) => return usage_error(&msg),
                },
                "seed" => {
                    let v = scanner.value_for("--seed").unwrap_or_default();
                    match v.parse::<u64>() {
                        Ok(s) => seed = s,
                        _ => return usage_error(&format!("`--seed` needs an integer, got `{v}`")),
                    }
                }
                "keep-going" => config.keep_going = true,
                "json" => json_output = true,
                "out" => match scanner.value_for("--out") {
                    Ok(path) => out = Some(path),
                    Err(_) => return usage_error("`--out` needs a file path"),
                },
                "help" => {
                    print!("{USAGE}");
                    return 0;
                }
                other => return usage_error(&format!("unknown flag `--{other}`")),
            },
            Arg::Flag { name, value } => {
                return usage_error(&format!(
                    "unknown flag `--{name}={}`",
                    value.unwrap_or_default()
                ));
            }
            Arg::Positional(p) => paths.push(p),
        }
    }
    if paths.is_empty() && fuzz_corpus == 0 {
        return usage_error("nothing to do: pass files, directories, or --fuzz-corpus N");
    }

    let mut jobs = match collect_file_jobs(&paths) {
        Ok(jobs) => jobs,
        Err(msg) => return usage_error(&msg),
    };
    jobs.extend(fuzz_corpus_jobs(fuzz_corpus, seed));
    eprintln!("batch: {} job(s)...", jobs.len());
    let report = run_batch(&jobs, &config);
    let rendered = if json_output {
        report.to_json().to_string()
    } else {
        render_text(&report)
    };
    let code = write_out(&rendered, out.as_deref());
    if code != 0 {
        return code;
    }
    u8::from(!report.ok())
}

fn flag_u64(scanner: &mut oi_support::cli::ArgScanner, flag: &str) -> Result<u64, String> {
    let v = scanner.value_for(flag).unwrap_or_default();
    match v.parse::<u64>() {
        Ok(n) if n > 0 => Ok(n),
        _ => Err(format!("`{flag}` needs a positive integer, got `{v}`")),
    }
}

fn usage_error(msg: &str) -> u8 {
    eprintln!("{msg}");
    2
}

fn render_text(report: &BatchReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "batch: {} job(s)", report.results.len());
    for (tier, n) in report.tier_counts() {
        if n > 0 {
            let _ = writeln!(out, "  {tier:17}: {n}");
        }
    }
    let degraded = report.results.iter().filter(|r| r.degraded).count();
    if degraded > 0 {
        let _ = writeln!(out, "  degraded         : {degraded}");
    }
    if report.skipped > 0 {
        let _ = writeln!(out, "  skipped          : {}", report.skipped);
    }
    for r in &report.results {
        let flags = format!(
            "{}{}{}",
            if r.degraded { " degraded" } else { "" },
            if r.retried_after_panic {
                " retried"
            } else {
                ""
            },
            if r.descents > 0 {
                format!(" descents={}", r.descents)
            } else {
                String::new()
            }
        );
        let _ = writeln!(
            out,
            "{:6} {:18} {:>5}ms{}  {}",
            if r.ok() { "ok" } else { "FAIL" },
            r.tier,
            r.wall_ms,
            flags,
            r.name
        );
        if !r.error.is_empty() {
            let _ = writeln!(out, "       {}", r.error.lines().next().unwrap_or_default());
        }
    }
    let _ = write!(out, "{}", if report.ok() { "OK" } else { "FINDINGS" });
    out
}

/// Writes `doc` to `path` (with a trailing newline) or stdout.
fn write_out(doc: &str, path: Option<&str>) -> u8 {
    match path {
        Some(path) => {
            if let Err(e) = std::fs::write(path, format!("{doc}\n")) {
                eprintln!("cannot write {path}: {e}");
                return 1;
            }
            eprintln!("wrote {path}");
            0
        }
        None => {
            println!("{doc}");
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(name: &str, source: &str) -> BatchJob {
        BatchJob {
            name: name.to_owned(),
            source: source.to_owned(),
        }
    }

    const HEALTHY: &str = "
        class P { field x; field y; method init(a, b) { self.x = a; self.y = b; } }
        class R { field ll; field ur;
          method init(a, b) { self.ll = new P(a, a + 1); self.ur = new P(b, b + 2); } }
        fn main() { var r = new R(1, 5); print r.ll.x + r.ur.y; }";

    #[test]
    fn healthy_jobs_land_on_the_top_tier() {
        let report = run_batch(
            &[job("a", HEALTHY), job("b", HEALTHY)],
            &BatchConfig::default(),
        );
        assert!(report.ok());
        assert_eq!(report.results.len(), 2);
        assert!(report.results.iter().all(|r| r.tier == "guarded-full"));
    }

    #[test]
    fn tiny_round_budget_degrades_every_job_but_fails_none() {
        let config = BatchConfig {
            max_rounds: Some(1),
            keep_going: true,
            ..Default::default()
        };
        let mut jobs = vec![job("healthy", HEALTHY)];
        jobs.extend(fuzz_corpus_jobs(8, 1));
        let report = run_batch(&jobs, &config);
        assert!(
            report.ok(),
            "findings: {:?}",
            report
                .results
                .iter()
                .filter(|r| !r.ok())
                .collect::<Vec<_>>()
        );
        assert!(report.results.iter().all(JobResult::ok));
        assert!(
            report.results.iter().any(|r| r.degraded),
            "a 1-round budget must exhaust on some job"
        );
    }

    #[test]
    fn compile_errors_are_findings_not_crashes() {
        let report = run_batch(
            &[job("bad", "fn main() { print }")],
            &BatchConfig::default(),
        );
        assert!(!report.ok());
        assert_eq!(report.results[0].tier, "compile-error");
        assert!(!report.results[0].error.is_empty());
    }

    #[test]
    fn queue_stops_after_a_finding_unless_keep_going() {
        let jobs = [
            job("bad", "class {"),
            job("good-1", HEALTHY),
            job("good-2", HEALTHY),
        ];
        let stopping = run_batch(&jobs, &BatchConfig::default());
        assert_eq!(stopping.results.len(), 1);
        assert_eq!(stopping.skipped, 2);
        assert!(!stopping.ok());
        let draining = run_batch(
            &jobs,
            &BatchConfig {
                keep_going: true,
                ..Default::default()
            },
        );
        assert_eq!(draining.results.len(), 3);
        assert_eq!(draining.skipped, 0);
    }

    #[test]
    fn parallel_workers_keep_submission_order() {
        let jobs: Vec<BatchJob> = (0..6).map(|i| job(&format!("j{i}"), HEALTHY)).collect();
        let report = run_batch(
            &jobs,
            &BatchConfig {
                jobs: 3,
                keep_going: true,
                ..Default::default()
            },
        );
        assert!(report.ok());
        let names: Vec<&str> = report.results.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, ["j0", "j1", "j2", "j3", "j4", "j5"]);
    }

    #[test]
    fn json_document_is_schema_stable() {
        let report = run_batch(&[job("a", HEALTHY)], &BatchConfig::default());
        let doc = report.to_json().to_string();
        let parsed = Json::parse(&doc).unwrap();
        assert_eq!(parsed.get("schema").unwrap().as_str(), Some("oi.batch.v1"));
        assert_eq!(parsed.get("ok").unwrap(), &Json::Bool(true));
        let counts = parsed.get("tier_counts").unwrap();
        for tier in TIER_NAMES {
            assert!(counts.get(tier).is_some(), "missing tier_counts.{tier}");
        }
        let jobs = parsed.get("jobs").unwrap().as_arr().unwrap();
        for key in [
            "file",
            "tier",
            "ok",
            "degraded",
            "descents",
            "divergences",
            "retractions",
            "sanitizer_rejections",
            "cache_hit",
            "wall_ms",
        ] {
            assert!(jobs[0].get(key).is_some(), "missing jobs[].{key}");
        }
        assert_eq!(
            parsed.get("sanitizer_rejections").and_then(Json::as_i64),
            Some(0),
            "healthy batch must have no sanitizer-caught rejections"
        );
        assert_eq!(
            parsed.get("cache_hits").and_then(Json::as_i64),
            Some(0),
            "a single-job batch has nothing to hit"
        );
    }

    #[test]
    fn duplicate_jobs_compile_once_and_hit_the_cache() {
        let report = run_batch(
            &[job("a", HEALTHY), job("b", HEALTHY), job("c", HEALTHY)],
            &BatchConfig::default(),
        );
        assert!(report.ok());
        let hits: Vec<bool> = report.results.iter().map(|r| r.cache_hit).collect();
        assert_eq!(hits, [false, true, true], "first compiles, copies hit");
        // Cached jobs report the same verdict as the compile they reused.
        assert!(report.results.iter().all(|r| r.tier == "guarded-full"));
        let inlined: Vec<usize> = report.results.iter().map(|r| r.fields_inlined).collect();
        assert_eq!(inlined[0], inlined[1]);
        assert_eq!(
            report.to_json().get("cache_hits").and_then(Json::as_i64),
            Some(2)
        );
    }

    #[test]
    fn cache_hits_survive_parallel_workers() {
        let jobs: Vec<BatchJob> = (0..8).map(|i| job(&format!("j{i}"), HEALTHY)).collect();
        let report = run_batch(
            &jobs,
            &BatchConfig {
                jobs: 4,
                keep_going: true,
                ..Default::default()
            },
        );
        assert!(report.ok());
        // At least one worker must have reused another's artifact; exact
        // counts depend on scheduling (several workers can miss the same
        // key concurrently and each compile it).
        assert!(
            report.results.iter().any(|r| r.cache_hit),
            "8 identical jobs over 4 workers must produce cache hits"
        );
        assert!(report.results.iter().all(|r| r.tier == "guarded-full"));
    }

    #[test]
    fn budget_knobs_partition_the_cache() {
        // The same source under a different round budget must not reuse
        // the unbudgeted artifact (it may be degraded).
        let unbudgeted = run_batch(&[job("a", HEALTHY)], &BatchConfig::default());
        assert!(!unbudgeted.results[0].cache_hit);
        let budgeted = run_batch(
            &[job("a", HEALTHY), job("b", HEALTHY)],
            &BatchConfig {
                max_rounds: Some(1),
                keep_going: true,
                ..Default::default()
            },
        );
        // Fresh invocation, fresh cache: first job misses even though an
        // earlier invocation compiled identical bytes.
        assert!(!budgeted.results[0].cache_hit);
        assert!(budgeted.results[1].cache_hit);
    }
}
