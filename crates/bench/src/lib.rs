#![warn(missing_docs)]
//! Regeneration harness for every table and figure in the paper's
//! evaluation (§6), plus ablations.
//!
//! Each `fig*` function runs the measurement and renders a text table whose
//! rows correspond to the paper's figure:
//!
//! - [`fig14`] — inlinable field counts (effectiveness),
//! - [`fig15`] — generated code size with and without inlining,
//! - [`fig16`] — method contours required per method (analysis cost),
//! - [`fig17`] — performance normalized to Concert-without-inlining,
//! - [`ablations`] — array layout, pass toggles, memory-only cost model.
//!
//! The `figures` binary prints them (`--json` emits the same tables as a
//! machine-readable `oi.figures.v1` document); `benches/` time the
//! underlying pipeline stages with the in-repo [`harness`].

pub mod batch;
pub mod brownoutload;
pub mod chaos;
pub mod cli;
pub mod client;
pub mod fuzz;
pub mod harness;
pub mod loadgen;
pub mod overload;
pub mod prof;
pub mod restartload;
pub mod sched;
pub mod serve;
pub mod snapshot;
pub mod synth;
pub mod tenantload;

use oi_benchmarks::{all_benchmarks, evaluate, BenchSize, Evaluation};
use oi_core::pipeline::InlineConfig;
use oi_ir::ArrayLayoutKind;
use oi_support::Json;
use oi_vm::VmConfig;
use std::fmt::Write as _;

/// Runs the standard evaluation over the whole suite.
pub fn evaluate_suite(size: BenchSize) -> Vec<Evaluation> {
    all_benchmarks(size)
        .iter()
        .map(|b| evaluate(b, &VmConfig::default(), &InlineConfig::default()))
        .collect()
}

/// Figure 14: inlinable field counts.
///
/// Columns: object-holding slots (fields + array-content groups), ideal
/// (hand analysis), declared inline in C++, automatically inlined. The
/// paper's claim: the automatic column matches or beats the C++ column on
/// every benchmark.
pub fn fig14(size: BenchSize) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Figure 14: Inlinable field counts");
    let _ = writeln!(
        out,
        "{:16} {:>6} {:>6} {:>9} {:>6}",
        "benchmark", "total", "ideal", "C++ decl", "auto"
    );
    for bench in all_benchmarks(size) {
        let eval = evaluate(&bench, &VmConfig::default(), &InlineConfig::default());
        let auto = eval.report.fields_inlined + eval.report.array_sites_inlined;
        let _ = writeln!(
            out,
            "{:16} {:>6} {:>6} {:>9} {:>6}",
            bench.name,
            bench.ground_truth.total,
            bench.ground_truth.ideal,
            bench.ground_truth.cxx,
            auto
        );
    }
    out
}

/// Figure 15: generated-code size (modeled KB over reachable methods),
/// without vs. with object inlining. The paper's point: inlining does not
/// grow the code — it usually shrinks a little.
pub fn fig15(size: BenchSize) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Figure 15: Object inlining code size (modeled KB)");
    let _ = writeln!(
        out,
        "{:16} {:>12} {:>12} {:>7}",
        "benchmark", "without", "with", "ratio"
    );
    for eval in evaluate_suite(size) {
        let without = eval.baseline_size.kilobytes();
        let with = eval.inlined_size.kilobytes();
        let _ = writeln!(
            out,
            "{:16} {:>10.1}KB {:>10.1}KB {:>6.2}x",
            eval.name,
            without,
            with,
            with / without
        );
    }
    out
}

/// Figure 16: method contours required per method, without vs. with the
/// object-inlining (tag) sensitivity; plus object contours, which the paper
/// reports as unchanged.
pub fn fig16(size: BenchSize) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Figure 16: Method contours required per method");
    let _ = writeln!(
        out,
        "{:16} {:>9} {:>9} | {:>11} {:>11} | {:>7}",
        "benchmark", "w/o inl", "with inl", "octx w/o", "octx with", "clones"
    );
    for eval in evaluate_suite(size) {
        let (without, with) = eval.contours;
        let _ = writeln!(
            out,
            "{:16} {:>9.2} {:>9.2} | {:>11} {:>11} | {:>7}",
            eval.name,
            without.contours_per_method,
            with.contours_per_method,
            without.object_contours,
            with.object_contours,
            eval.clone_groups
        );
    }
    out
}

/// Figure 17: performance normalized to Concert-without-inlining = 1.0.
/// `manual` stands in for the paper's `G++ -O2` bars.
pub fn fig17(size: BenchSize) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 17: Object inlining performance (baseline = 1.00)"
    );
    let _ = writeln!(
        out,
        "{:16} {:>9} {:>9} {:>9}",
        "benchmark", "baseline", "inlined", "manual"
    );
    for eval in evaluate_suite(size) {
        let _ = writeln!(
            out,
            "{:16} {:>9.2} {:>9.2} {:>9.2}",
            eval.name,
            1.0,
            eval.speedup(),
            eval.manual_speedup()
        );
    }
    out
}

/// Extra detail for Figure 17: the mechanism (allocations, dereferences,
/// cache behavior).
pub fn fig17_detail(size: BenchSize) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Figure 17 mechanism detail (baseline -> inlined)");
    let _ = writeln!(
        out,
        "{:16} {:>22} {:>24} {:>22}",
        "benchmark", "allocations", "heap reads", "cache misses"
    );
    for eval in evaluate_suite(size) {
        let _ = writeln!(
            out,
            "{:16} {:>10} -> {:>8} {:>12} -> {:>8} {:>10} -> {:>8}",
            eval.name,
            eval.baseline.allocations,
            eval.inlined.allocations,
            eval.baseline.heap_reads,
            eval.inlined.heap_reads,
            eval.baseline.cache_misses,
            eval.inlined.cache_misses
        );
    }
    out
}

/// Ablation: interleaved vs. parallel ("Fortran style") inline array
/// layout, the design choice §6.3 credits for OOPACK's cache behavior.
pub fn ablation_array_layout(size: BenchSize) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Ablation: inline array layout (speedup over baseline)");
    let _ = writeln!(
        out,
        "{:16} {:>12} {:>10}",
        "benchmark", "interleaved", "parallel"
    );
    for bench in all_benchmarks(size) {
        if !matches!(bench.name, "oopack" | "polyover-array") {
            continue;
        }
        let inter = evaluate(
            &bench,
            &VmConfig::default(),
            &InlineConfig {
                array_layout: ArrayLayoutKind::Interleaved,
                ..Default::default()
            },
        );
        let par = evaluate(
            &bench,
            &VmConfig::default(),
            &InlineConfig {
                array_layout: ArrayLayoutKind::Parallel,
                ..Default::default()
            },
        );
        let _ = writeln!(
            out,
            "{:16} {:>11.2}x {:>9.2}x",
            bench.name,
            inter.speedup(),
            par.speedup()
        );
    }
    out
}

/// Ablation: which parts of the optimization carry the win — object fields
/// only, arrays only, or both.
pub fn ablation_passes(size: BenchSize) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Ablation: optimization components (speedup over baseline)"
    );
    let _ = writeln!(
        out,
        "{:16} {:>7} {:>12} {:>12}",
        "benchmark", "full", "fields only", "arrays only"
    );
    for bench in all_benchmarks(size) {
        let full = evaluate(&bench, &VmConfig::default(), &InlineConfig::default());
        let fields_only = evaluate(
            &bench,
            &VmConfig::default(),
            &InlineConfig {
                array_elements: false,
                ..Default::default()
            },
        );
        let arrays_only = evaluate(
            &bench,
            &VmConfig::default(),
            &InlineConfig {
                object_fields: false,
                ..Default::default()
            },
        );
        let _ = writeln!(
            out,
            "{:16} {:>6.2}x {:>11.2}x {:>11.2}x",
            bench.name,
            full.speedup(),
            fields_only.speedup(),
            arrays_only.speedup()
        );
    }
    out
}

/// Ablation: the memory-only cost model isolates the data-layout effect
/// from compute.
pub fn ablation_memory_only(size: BenchSize) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Ablation: memory-only cost model (speedup over baseline)"
    );
    let _ = writeln!(
        out,
        "{:16} {:>8} {:>12}",
        "benchmark", "default", "memory-only"
    );
    let mem_vm = VmConfig {
        cost: oi_vm::CostModel::memory_only(),
        ..Default::default()
    };
    for bench in all_benchmarks(size) {
        let default = evaluate(&bench, &VmConfig::default(), &InlineConfig::default());
        let memory = evaluate(&bench, &mem_vm, &InlineConfig::default());
        let _ = writeln!(
            out,
            "{:16} {:>7.2}x {:>11.2}x",
            bench.name,
            default.speedup(),
            memory.speedup()
        );
    }
    out
}

/// All ablations.
pub fn ablations(size: BenchSize) -> String {
    let mut out = ablation_array_layout(size);
    out.push('\n');
    out.push_str(&ablation_passes(size));
    out.push('\n');
    out.push_str(&ablation_memory_only(size));
    out
}

/// Machine-readable figure tables: the `oi.figures.v1` document that
/// `figures --json` writes. One evaluation pass feeds every table.
pub fn figures_json(size: BenchSize) -> Json {
    let evals = evaluate_suite(size);
    let fig14 = evals
        .iter()
        .map(|e| {
            Json::obj(vec![
                ("benchmark", e.name.into()),
                ("total", e.report.total_object_fields.into()),
                ("ideal", e.report.ideal.into()),
                ("cxx", e.report.cxx.into()),
                (
                    "auto",
                    (e.report.fields_inlined + e.report.array_sites_inlined).into(),
                ),
            ])
        })
        .collect();
    let fig15 = evals
        .iter()
        .map(|e| {
            let without = e.baseline_size.kilobytes();
            let with = e.inlined_size.kilobytes();
            Json::obj(vec![
                ("benchmark", e.name.into()),
                ("without_kb", without.into()),
                ("with_kb", with.into()),
                ("ratio", (with / without).into()),
            ])
        })
        .collect();
    let fig16 = evals
        .iter()
        .map(|e| {
            let (without, with) = &e.contours;
            Json::obj(vec![
                ("benchmark", e.name.into()),
                (
                    "contours_per_method_without",
                    without.contours_per_method.into(),
                ),
                ("contours_per_method_with", with.contours_per_method.into()),
                ("object_contours_without", without.object_contours.into()),
                ("object_contours_with", with.object_contours.into()),
                ("clone_groups", e.clone_groups.into()),
            ])
        })
        .collect();
    let fig17 = evals
        .iter()
        .map(|e| {
            Json::obj(vec![
                ("benchmark", e.name.into()),
                ("baseline", 1.0.into()),
                ("inlined", e.speedup().into()),
                ("manual", e.manual_speedup().into()),
                ("baseline_metrics", e.baseline.to_json()),
                ("inlined_metrics", e.inlined.to_json()),
            ])
        })
        .collect();
    Json::obj(vec![
        ("schema", "oi.figures.v1".into()),
        ("size", size_name(size).into()),
        ("fig14", Json::Arr(fig14)),
        ("fig15", Json::Arr(fig15)),
        ("fig16", Json::Arr(fig16)),
        ("fig17", Json::Arr(fig17)),
    ])
}

/// The canonical name of a `--size` value (inverse of [`parse_size`]).
pub fn size_name(size: BenchSize) -> &'static str {
    match size {
        BenchSize::Small => "small",
        BenchSize::Default => "default",
        BenchSize::Large => "large",
    }
}

/// Parses a `--size` argument value.
pub fn parse_size(s: &str) -> Option<BenchSize> {
    match s {
        "small" => Some(BenchSize::Small),
        "default" => Some(BenchSize::Default),
        "large" => Some(BenchSize::Large),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig14_contains_every_benchmark() {
        let t = fig14(BenchSize::Small);
        for name in [
            "oopack",
            "richards",
            "silo",
            "polyover-array",
            "polyover-list",
        ] {
            assert!(t.contains(name), "missing {name} in:\n{t}");
        }
    }

    #[test]
    fn fig17_reports_speedups_of_at_least_one() {
        let evals = evaluate_suite(BenchSize::Small);
        for e in &evals {
            assert!(
                e.speedup() > 0.95,
                "{} regressed under inlining: {:.2}",
                e.name,
                e.speedup()
            );
        }
    }

    #[test]
    fn fig15_inlining_does_not_bloat_code() {
        for e in evaluate_suite(BenchSize::Small) {
            let ratio = e.inlined_size.kilobytes() / e.baseline_size.kilobytes();
            assert!(ratio < 1.4, "{}: code grew {ratio:.2}x", e.name);
        }
    }

    #[test]
    fn fig16_tag_sensitivity_not_cheaper() {
        for e in evaluate_suite(BenchSize::Small) {
            let (without, with) = e.contours;
            assert!(with.contours_per_method + 1e-9 >= without.contours_per_method);
        }
    }

    #[test]
    fn parse_size_roundtrip() {
        assert_eq!(parse_size("small"), Some(BenchSize::Small));
        assert_eq!(parse_size("default"), Some(BenchSize::Default));
        assert_eq!(parse_size("bogus"), None);
        for size in [BenchSize::Small, BenchSize::Default, BenchSize::Large] {
            assert_eq!(parse_size(size_name(size)), Some(size));
        }
    }

    #[test]
    fn figures_json_has_every_table_and_parses() {
        let doc = figures_json(BenchSize::Small);
        let text = doc.to_string();
        let parsed = Json::parse(&text).expect("figures output must be valid JSON");
        assert_eq!(
            parsed.get("schema").unwrap().as_str(),
            Some("oi.figures.v1")
        );
        for table in ["fig14", "fig15", "fig16", "fig17"] {
            let rows = parsed.get(table).and_then(Json::as_arr).unwrap();
            assert!(!rows.is_empty(), "{table} must have rows");
            assert!(rows.iter().all(|r| r.get("benchmark").is_some()));
        }
        let row = &parsed.get("fig17").unwrap().as_arr().unwrap()[0];
        assert!(row.get("inlined_metrics").unwrap().get("cycles").is_some());
    }
}
