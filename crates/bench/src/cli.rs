//! The `oi-bench` command-line interface (also reachable as
//! `oic bench`): `snapshot` writes an `oi.bench.v1` document, `compare`
//! diffs two of them with the noise-aware gate.
//!
//! Exit codes follow the workspace convention: `0` success (and, for
//! `compare`, no regression), `1` runtime failure or a regression, `2`
//! usage error.

use crate::harness;
use crate::snapshot::{compare, take_snapshot_with, SnapshotOptions, DEFAULT_SAMPLES};
use crate::{parse_size, size_name};
use oi_benchmarks::BenchSize;
use oi_support::cli::{Arg, ArgScanner};
use oi_support::Json;

const USAGE: &str = "usage: oi-bench <command>

commands:
  snapshot [--size small|default|large] [--samples N] [--profile]
           [--out FILE]
      run every benchmark and write one oi.bench.v1 JSON document
      (stdout by default); OI_BENCH_SAMPLES also sets the sample count;
      --profile embeds a truncated top-N execution profile per row
  compare OLD.json NEW.json [--threshold-pct P] [--wall-advisory]
          [--json] [--out FILE]
      diff two snapshots; exit 1 when a gated metric regressed.
      wall-clock gates statistically (calibrated noise floors) when both
      snapshots carry >= 2 samples; --wall-advisory disarms that gate
      for cross-machine comparisons
  loadgen [--requests N] [--sources K] [--seed S] [--zipf-s X]
          [--cache-bytes B] [--json] [--out FILE]
      replay a seeded Zipf-skewed compile trace against an in-process
      compile server and emit oi.load.v1; exit 1 when the gate fails
  tenantload [--requests N] [--tenants T] [--hogs H] [--workers W]
             [--fuel-slice F] [--seed S] [--zipf-s X]
             [--min-throughput J] [--json] [--out FILE]
      submit a Zipf-skewed burst of small programs across T tenants
      (H rigged quota-busters) to the fair scheduler and emit
      oi.tenantload.v1; exit 1 when the fairness/robustness gate fails
  restartload [--requests N] [--sources K] [--seed S] [--zipf-s X]
              [--kills M] [--cache-bytes B] [--disk-bytes B]
              [--cache-dir DIR] [--json] [--out FILE]
      replay a seeded compile trace against a --cache-dir server,
      killing it uncleanly M times and restarting over the same store;
      emit oi.restart.v1; exit 1 on any corrupt serve, reconciliation
      mismatch, missed recovery, or a warm hit rate under 0.8x cold
  brownoutload [--burst N] [--sources K] [--seed S] [--target-ms N]
               [--queue N] [--jobs N] [--retries N] [--json] [--out FILE]
      pipeline a cold-compile burst at a brownout-enabled serve session,
      retry every shed through the typed retry_after_ms contract, and
      wait for recovery; emit oi.brownout.v1; exit 1 when the overload
      gate fails (no descend, give-ups, unbounded p99, missed recovery,
      or a shed/request reconciliation mismatch)
";

/// Runs the CLI on pre-split arguments and returns the process exit
/// code. `oic bench ...` forwards here, so errors print program-agnostic
/// messages.
pub fn main(args: &[String]) -> u8 {
    match args.first().map(String::as_str) {
        Some("snapshot") => snapshot_cmd(&args[1..]),
        Some("compare") => compare_cmd(&args[1..]),
        Some("loadgen") => crate::loadgen::cli_main(&args[1..]),
        Some("tenantload") => crate::tenantload::cli_main(&args[1..]),
        Some("restartload") => crate::restartload::cli_main(&args[1..]),
        Some("brownoutload") => crate::brownoutload::cli_main(&args[1..]),
        Some("--help") | Some("help") => {
            print!("{USAGE}");
            0
        }
        Some(other) => {
            eprintln!(
                "unknown command `{other}` (snapshot|compare|loadgen|tenantload|restartload|brownoutload)"
            );
            2
        }
        None => {
            eprint!("{USAGE}");
            2
        }
    }
}

fn usage_error(msg: &str) -> u8 {
    eprintln!("{msg}");
    2
}

fn snapshot_cmd(args: &[String]) -> u8 {
    let mut size = BenchSize::Default;
    let mut samples: Option<usize> = None;
    let mut out: Option<String> = None;
    let mut profile = false;
    let mut scanner = ArgScanner::new(args.to_vec());
    while let Some(arg) = scanner.next() {
        let arg = match arg {
            Ok(arg) => arg,
            Err(msg) => return usage_error(&msg),
        };
        match arg {
            Arg::Flag { name, value: None } => match name.as_str() {
                "size" => {
                    let v = scanner.value_for("--size").unwrap_or_default();
                    match parse_size(&v) {
                        Some(s) => size = s,
                        None => {
                            return usage_error(&format!(
                                "unknown size `{v}` (small|default|large)"
                            ))
                        }
                    }
                }
                "samples" => {
                    let v = scanner.value_for("--samples").unwrap_or_default();
                    match harness::parse_samples(&v) {
                        Some(n) => samples = Some(n),
                        None => {
                            return usage_error(&format!(
                                "`--samples` needs a positive integer, got `{v}`"
                            ))
                        }
                    }
                }
                "profile" => profile = true,
                "out" => match scanner.value_for("--out") {
                    Ok(path) => out = Some(path),
                    Err(_) => return usage_error("`--out` needs a file path"),
                },
                other => return usage_error(&format!("unknown flag `--{other}`")),
            },
            Arg::Flag { name, value } => {
                return usage_error(&format!(
                    "unknown flag `--{name}={}`",
                    value.unwrap_or_default()
                ));
            }
            Arg::Positional(other) => {
                return usage_error(&format!("unexpected argument `{other}`"));
            }
        }
    }
    // Flag beats environment beats default, so CI can pin globally while
    // a one-off invocation still overrides.
    let samples = samples
        .or_else(harness::samples_from_env)
        .unwrap_or(DEFAULT_SAMPLES);

    eprintln!(
        "snapshotting {} suite ({samples} wall-clock samples per benchmark)...",
        size_name(size)
    );
    let opts = SnapshotOptions {
        profile,
        ..SnapshotOptions::default()
    };
    let doc = take_snapshot_with(size, samples, &git_rev(), &opts).to_string();
    write_out(&doc, out.as_deref())
}

fn compare_cmd(args: &[String]) -> u8 {
    let mut threshold: Option<f64> = None;
    let mut json_output = false;
    let mut wall_advisory = false;
    let mut out: Option<String> = None;
    let mut files = Vec::new();
    let mut scanner = ArgScanner::new(args.to_vec());
    while let Some(arg) = scanner.next() {
        let arg = match arg {
            Ok(arg) => arg,
            Err(msg) => return usage_error(&msg),
        };
        match arg {
            Arg::Flag { name, value: None } => match name.as_str() {
                "threshold-pct" => {
                    let v = scanner.value_for("--threshold-pct").unwrap_or_default();
                    match v.parse::<f64>() {
                        Ok(p) if p >= 0.0 && p.is_finite() => threshold = Some(p),
                        _ => {
                            return usage_error(&format!(
                                "`--threshold-pct` needs a non-negative number, got `{v}`"
                            ))
                        }
                    }
                }
                "json" => json_output = true,
                "wall-advisory" => wall_advisory = true,
                "out" => match scanner.value_for("--out") {
                    Ok(path) => out = Some(path),
                    Err(_) => return usage_error("`--out` needs a file path"),
                },
                other => return usage_error(&format!("unknown flag `--{other}`")),
            },
            Arg::Flag { name, value } => {
                return usage_error(&format!(
                    "unknown flag `--{name}={}`",
                    value.unwrap_or_default()
                ));
            }
            Arg::Positional(path) => files.push(path),
        }
    }
    let [old_path, new_path] = files.as_slice() else {
        return usage_error("compare needs exactly two snapshot files: OLD.json NEW.json");
    };

    let mut docs = Vec::new();
    for path in [old_path, new_path] {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                return 1;
            }
        };
        match Json::parse(&text) {
            Ok(doc) => docs.push(doc),
            Err(e) => {
                eprintln!("{path}: invalid JSON: {e}");
                return 1;
            }
        }
    }

    let cmp = match compare(&docs[0], &docs[1], threshold, wall_advisory) {
        Ok(cmp) => cmp,
        Err(msg) => return usage_error(&msg),
    };
    let code = if json_output {
        write_out(&cmp.diff.to_string(), out.as_deref())
    } else {
        write_out(cmp.text.trim_end(), out.as_deref())
    };
    if code != 0 {
        return code;
    }
    u8::from(cmp.regressed)
}

/// Writes `doc` to `path` (with a trailing newline) or stdout.
fn write_out(doc: &str, path: Option<&str>) -> u8 {
    match path {
        Some(path) => {
            if let Err(e) = std::fs::write(path, format!("{doc}\n")) {
                eprintln!("cannot write {path}: {e}");
                return 1;
            }
            eprintln!("wrote {path}");
            0
        }
        None => {
            println!("{doc}");
            0
        }
    }
}

/// The current git revision, for snapshot provenance. Best-effort: any
/// failure (no git, not a checkout) records `"unknown"`.
fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(args: &[&str]) -> u8 {
        let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        main(&args)
    }

    #[test]
    fn no_command_is_a_usage_error() {
        assert_eq!(run(&[]), 2);
        assert_eq!(run(&["wat"]), 2);
    }

    #[test]
    fn help_succeeds() {
        assert_eq!(run(&["--help"]), 0);
    }

    #[test]
    fn snapshot_rejects_bad_flags() {
        assert_eq!(run(&["snapshot", "--wat"]), 2);
        assert_eq!(run(&["snapshot", "--size", "huge"]), 2);
        assert_eq!(run(&["snapshot", "--samples", "0"]), 2);
        assert_eq!(run(&["snapshot", "stray"]), 2);
    }

    #[test]
    fn compare_rejects_bad_usage() {
        assert_eq!(run(&["compare"]), 2);
        assert_eq!(run(&["compare", "a.json"]), 2);
        assert_eq!(
            run(&["compare", "a.json", "b.json", "--threshold-pct", "-1"]),
            2
        );
    }

    #[test]
    fn compare_reports_unreadable_files() {
        assert_eq!(
            run(&["compare", "/no/such/old.json", "/no/such/new.json"]),
            1
        );
    }
}
