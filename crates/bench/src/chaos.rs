//! Systematic fault injection: `oic chaos`.
//!
//! Runs every [`Fault`] class against a curated sentinel corpus and
//! reports a detection table: which defense caught each fault
//! (sanitizer or differential oracle), whether the culprit decision was
//! retracted, and whether the repaired program's output was restored to
//! baseline-equal. The corpus is small by design — each sentinel is the
//! minimal program shape on which a fault class has *purchase* (a fault
//! that cannot bite a program is recorded as benign there, not escaped):
//!
//! - `rect`: non-contiguous inline layouts plus redirected loads — the
//!   bite surface for `compact-first-layout-slots`, `skip-use-redirect`,
//!   and `off-by-one-slot-rewrite`;
//! - `copy`: constructor-argument children stored by value — the bite
//!   surface for `drop-assign-copy`'s omitted field copy;
//! - `siblings`: two classes sharing a selector behind a container — the
//!   bite surface for `wrong-devirt-target`.
//!
//! A fault **escapes** when it changed the built program but neither the
//! sanitizer nor the oracle objected — the one outcome the soundness
//! story cannot tolerate. Exit 0 requires every fault class detected
//! somewhere, every detection repaired, and zero escapes anywhere.

use oi_core::firewall::{optimize_guarded, Divergence, FirewallConfig};
use oi_core::pipeline::{optimize, InlineConfig};
use oi_core::Fault;
use oi_support::Json;
use std::fmt::Write as _;

/// The sentinel corpus: `(name, source)`, one program per bite surface.
pub const SENTINELS: [(&str, &str); 3] = [
    (
        "rect",
        "global KEEP;
         class Point { field x; field y;
           method init(a, b) { self.x = a; self.y = b; }
         }
         class Rect { field ll; field ur;
           method init(a, b) { self.ll = new Point(a, a + 1); self.ur = new Point(b, b + 3); }
           method span() { return self.ur.x - self.ll.x + self.ur.y - self.ll.y; }
         }
         fn main() {
           var r = new Rect(1, 10);
           KEEP = r;
           print KEEP.ll.x;
           print KEEP.ll.y;
           print KEEP.span();
         }",
    ),
    (
        "copy",
        "global KEEP;
         class Point { field x; field y;
           method init(a, b) { self.x = a; self.y = b; }
         }
         class Rect { field ll; field ur;
           method init(a, b) { self.ll = a; self.ur = b; }
         }
         fn main() {
           var r = new Rect(new Point(1, 2), new Point(3, 4));
           KEEP = r;
           print KEEP.ll.x;
           print KEEP.ll.y;
           print KEEP.ur.x;
           print KEEP.ur.y;
         }",
    ),
    (
        "siblings",
        "global KEEP;
         class A { field v; method init(a) { self.v = a; } method get() { return self.v; } }
         class B { field w; method init(a) { self.w = a + 100; } method get() { return self.w; } }
         class Box { field a; field b;
           method init(x, y) { self.a = x; self.b = y; }
         }
         fn main() {
           var box = new Box(new A(1), new B(2));
           KEEP = box;
           print KEEP.a.get();
           print KEEP.b.get();
         }",
    ),
];

/// How one `(fault, sentinel)` cell resolved.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// Checked execution reported the corruption on the first probe.
    CaughtSanitizer,
    /// The differential oracle saw an output/status/census divergence.
    CaughtOracle,
    /// The fault had no purchase: the faulted build is identical to the
    /// clean build, so there was nothing to detect.
    Benign,
    /// The faulted build differs from the clean build and nothing
    /// objected — a hole in the detection lattice.
    Escaped,
}

impl Outcome {
    /// Stable kebab-case name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Outcome::CaughtSanitizer => "caught-sanitizer",
            Outcome::CaughtOracle => "caught-oracle",
            Outcome::Benign => "benign",
            Outcome::Escaped => "escaped",
        }
    }
}

/// One `(fault, sentinel)` cell of the matrix.
#[derive(Clone, Debug)]
pub struct Case {
    /// Sentinel name from [`SENTINELS`].
    pub program: String,
    /// How the cell resolved.
    pub outcome: Outcome,
    /// Decision keys the firewall retracted to repair the fault.
    pub retracted: Vec<String>,
    /// `true` when the returned program runs baseline-equal (always true
    /// for benign cells; for caught cells it means repair succeeded).
    pub restored: bool,
    /// The first divergence the oracle saw, for the report.
    pub first_divergence: String,
    /// Wall-clock spent on the whole cell (inject, probe, classify), in
    /// milliseconds, via the bench harness clock. Additive `oi.chaos.v1`
    /// field.
    pub wall_ms: u64,
}

/// One fault class's row: its cells plus the rollup the exit code uses.
#[derive(Clone, Debug)]
pub struct FaultRow {
    /// The injected fault.
    pub fault: Fault,
    /// Per-sentinel cells, in [`SENTINELS`] order.
    pub cases: Vec<Case>,
}

impl FaultRow {
    fn count(&self, o: Outcome) -> usize {
        self.cases.iter().filter(|c| c.outcome == o).count()
    }

    /// `true` when some sentinel detected this fault.
    pub fn detected(&self) -> bool {
        self.count(Outcome::CaughtSanitizer) + self.count(Outcome::CaughtOracle) > 0
    }

    /// Which defense caught it: `"sanitizer"`, `"oracle"`, or `"none"`.
    /// The sanitizer takes precedence when both fired on different
    /// sentinels (it is the earlier layer of the lattice).
    pub fn detected_by(&self) -> &'static str {
        if self.count(Outcome::CaughtSanitizer) > 0 {
            "sanitizer"
        } else if self.count(Outcome::CaughtOracle) > 0 {
            "oracle"
        } else {
            "none"
        }
    }

    /// `true` when the row meets the bar: detected somewhere, zero
    /// escapes, and every detection was repaired with the culprit
    /// decision retracted and output restored.
    pub fn ok(&self) -> bool {
        self.detected()
            && self.count(Outcome::Escaped) == 0
            && self.cases.iter().all(|c| {
                !matches!(c.outcome, Outcome::CaughtSanitizer | Outcome::CaughtOracle)
                    || (!c.retracted.is_empty() && c.restored)
            })
    }

    /// The row as schema-stable JSON.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("fault", self.fault.name().into()),
            ("detected", self.detected().into()),
            ("detected_by", self.detected_by().into()),
            (
                "caught_sanitizer",
                self.count(Outcome::CaughtSanitizer).into(),
            ),
            ("caught_oracle", self.count(Outcome::CaughtOracle).into()),
            ("benign", self.count(Outcome::Benign).into()),
            ("escaped", self.count(Outcome::Escaped).into()),
            ("ok", self.ok().into()),
            (
                "cases",
                Json::Arr(
                    self.cases
                        .iter()
                        .map(|c| {
                            Json::obj(vec![
                                ("program", c.program.clone().into()),
                                ("outcome", c.outcome.name().into()),
                                ("retracted", c.retracted.len().into()),
                                ("restored", c.restored.into()),
                                ("first_divergence", c.first_divergence.clone().into()),
                                ("wall_ms", c.wall_ms.into()),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// The whole matrix.
#[derive(Clone, Debug, Default)]
pub struct ChaosReport {
    /// One row per injected fault, in [`Fault::ALL`] order (or the single
    /// `--fault` row).
    pub rows: Vec<FaultRow>,
}

impl ChaosReport {
    /// `true` when every row meets the bar ([`FaultRow::ok`]).
    pub fn ok(&self) -> bool {
        !self.rows.is_empty() && self.rows.iter().all(FaultRow::ok)
    }

    /// Escapes across the whole matrix.
    pub fn escapes(&self) -> usize {
        self.rows.iter().map(|r| r.count(Outcome::Escaped)).sum()
    }

    /// The report as a schema-stable `oi.chaos.v1` document.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("schema", "oi.chaos.v1".into()),
            (
                "corpus",
                Json::Arr(SENTINELS.iter().map(|&(n, _)| n.into()).collect()),
            ),
            (
                "faults",
                Json::Arr(self.rows.iter().map(FaultRow::to_json).collect()),
            ),
            (
                "detected",
                self.rows.iter().filter(|r| r.detected()).count().into(),
            ),
            ("escaped", self.escapes().into()),
            ("ok", self.ok().into()),
        ])
    }
}

/// Runs one `(fault, sentinel)` cell: inject, probe, classify.
fn run_case(name: &str, source: &str, fault: Fault) -> Case {
    let program = oi_ir::lower::compile(source).expect("sentinel programs compile");
    let inline = InlineConfig::default();
    let fw = FirewallConfig {
        fault: Some(fault),
        ..FirewallConfig::default()
    };
    let g = match optimize_guarded(&program, &inline, &fw) {
        Ok(g) => g,
        Err(e) => {
            // The injected fault broke the build itself; the pipeline's
            // typed error is a detection by construction, but nothing was
            // retracted or restored, so report it as an unrepaired catch.
            return Case {
                program: name.to_owned(),
                outcome: Outcome::CaughtOracle,
                retracted: Vec::new(),
                restored: false,
                first_divergence: format!("pipeline error: {e}"),
                wall_ms: 0,
            };
        }
    };
    let first = g
        .initial_divergences
        .first()
        .map(|d| d.to_string())
        .unwrap_or_default();
    if !g.initial_divergences.is_empty() {
        let sanitizer = g.initial_divergences.iter().any(|d| {
            matches!(d, Divergence::Sanitizer { .. })
                || matches!(d, Divergence::Status { optimized, .. }
                    if optimized.contains("checked execution"))
        });
        return Case {
            program: name.to_owned(),
            outcome: if sanitizer {
                Outcome::CaughtSanitizer
            } else {
                Outcome::CaughtOracle
            },
            retracted: g.retracted.clone(),
            restored: g.is_equivalent(),
            first_divergence: first,
            wall_ms: 0,
        };
    }
    // Nothing objected. Since no retraction ran, `g.optimized` *is* the
    // faulted build: compare it against a clean build to tell a fault
    // with no purchase (benign) from one that silently changed the
    // program (escaped).
    let clean = optimize(&program, &inline);
    let escaped = format!("{:?}", g.optimized.program) != format!("{:?}", clean.program);
    Case {
        program: name.to_owned(),
        outcome: if escaped {
            Outcome::Escaped
        } else {
            Outcome::Benign
        },
        retracted: g.retracted.clone(),
        restored: g.is_equivalent(),
        first_divergence: first,
        wall_ms: 0,
    }
}

/// Runs the matrix: every fault in `faults` against every sentinel.
pub fn run_chaos(faults: &[Fault]) -> ChaosReport {
    let mut report = ChaosReport::default();
    for &fault in faults {
        let cases = SENTINELS
            .iter()
            .map(|&(name, source)| {
                let (mut case, wall) = crate::harness::time_once(|| run_case(name, source, fault));
                case.wall_ms = (wall.median / 1_000_000) as u64;
                case
            })
            .collect();
        report.rows.push(FaultRow { fault, cases });
    }
    report
}

const USAGE: &str = "usage: oic chaos [flags]

Injects every fault class from the systematic fault matrix into a
sentinel corpus and reports which defense layer caught each one
(heap sanitizer or differential oracle), whether the culprit decision
was retracted, and whether output was restored to baseline-equal.
Exit 0 only when every fault class is detected and repaired with zero
escapes; 1 otherwise; 2 on usage errors.

  --fault NAME      run a single fault class (see `--list`)
  --list            print the fault class names and exit
  --json            emit a schema-stable oi.chaos.v1 document
  --out FILE        write the report to FILE instead of stdout
";

/// Runs the `oic chaos` command-line interface on pre-split arguments and
/// returns the process exit code.
pub fn cli_main(args: &[String]) -> u8 {
    use oi_support::cli::{Arg, ArgScanner};
    let mut faults: Vec<Fault> = Fault::ALL.to_vec();
    let mut json_output = false;
    let mut out: Option<String> = None;
    let mut scanner = ArgScanner::new(args.to_vec());
    while let Some(arg) = scanner.next() {
        let arg = match arg {
            Ok(arg) => arg,
            Err(msg) => return usage_error(&msg),
        };
        match arg {
            Arg::Flag { name, value: None } => match name.as_str() {
                "fault" => {
                    let v = scanner.value_for("--fault").unwrap_or_default();
                    match Fault::parse(&v) {
                        Some(f) => faults = vec![f],
                        None => {
                            return usage_error(&format!(
                                "unknown fault `{v}` (try `oic chaos --list`)"
                            ))
                        }
                    }
                }
                "list" => {
                    for f in Fault::ALL {
                        println!("{}", f.name());
                    }
                    return 0;
                }
                "json" => json_output = true,
                "out" => match scanner.value_for("--out") {
                    Ok(path) => out = Some(path),
                    Err(_) => return usage_error("`--out` needs a file path"),
                },
                "help" => {
                    print!("{USAGE}");
                    return 0;
                }
                other => return usage_error(&format!("unknown flag `--{other}`")),
            },
            Arg::Flag { name, value } => {
                return usage_error(&format!(
                    "unknown flag `--{name}={}`",
                    value.unwrap_or_default()
                ));
            }
            Arg::Positional(p) => {
                return usage_error(&format!("unexpected argument `{p}`"));
            }
        }
    }
    eprintln!(
        "chaos: {} fault class(es) x {} sentinel(s)...",
        faults.len(),
        SENTINELS.len()
    );
    let report = run_chaos(&faults);
    let rendered = if json_output {
        report.to_json().to_string()
    } else {
        render_text(&report)
    };
    let code = write_out(&rendered, out.as_deref());
    if code != 0 {
        return code;
    }
    u8::from(!report.ok())
}

fn usage_error(msg: &str) -> u8 {
    eprintln!("{msg}");
    2
}

fn render_text(report: &ChaosReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:28} {:10} {:>4} {:>4} {:>4} {:>4}  verdict",
        "fault", "caught-by", "san", "orcl", "bngn", "esc"
    );
    for row in &report.rows {
        let _ = writeln!(
            out,
            "{:28} {:10} {:>4} {:>4} {:>4} {:>4}  {}",
            row.fault.name(),
            row.detected_by(),
            row.count(Outcome::CaughtSanitizer),
            row.count(Outcome::CaughtOracle),
            row.count(Outcome::Benign),
            row.count(Outcome::Escaped),
            if row.ok() { "ok" } else { "FAIL" }
        );
        for c in &row.cases {
            if matches!(c.outcome, Outcome::CaughtSanitizer | Outcome::CaughtOracle) {
                let _ = writeln!(
                    out,
                    "  {:9} {} retracted={} restored={}",
                    c.program,
                    c.outcome.name(),
                    c.retracted.len(),
                    c.restored
                );
                if !c.first_divergence.is_empty() {
                    let _ = writeln!(out, "            {}", c.first_divergence);
                }
            }
        }
    }
    let _ = write!(
        out,
        "{}/{} detected, {} escape(s): {}",
        report.rows.iter().filter(|r| r.detected()).count(),
        report.rows.len(),
        report.escapes(),
        if report.ok() { "OK" } else { "FINDINGS" }
    );
    out
}

/// Writes `doc` to `path` (with a trailing newline) or stdout.
fn write_out(doc: &str, path: Option<&str>) -> u8 {
    match path {
        Some(path) => {
            if let Err(e) = std::fs::write(path, format!("{doc}\n")) {
                eprintln!("cannot write {path}: {e}");
                return 1;
            }
            eprintln!("wrote {path}");
            0
        }
        None => {
            println!("{doc}");
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_fault_class_is_detected_and_repaired_with_zero_escapes() {
        let report = run_chaos(&Fault::ALL);
        assert_eq!(report.rows.len(), Fault::ALL.len());
        for row in &report.rows {
            assert!(
                row.detected(),
                "{} escaped every sentinel: {:?}",
                row.fault.name(),
                row.cases
            );
            assert_eq!(
                row.count(Outcome::Escaped),
                0,
                "{} escaped on some sentinel: {:?}",
                row.fault.name(),
                row.cases
            );
            assert!(row.ok(), "{} row not ok: {:?}", row.fault.name(), row.cases);
        }
        assert!(report.ok());
    }

    #[test]
    fn sanitizer_owned_faults_are_credited_to_the_sanitizer() {
        // These two corruptions are invisible to output comparison on at
        // least one sentinel and exist precisely to exercise checked
        // execution; the detection table must credit the sanitizer.
        for fault in [Fault::OffByOneSlotRewrite, Fault::DropAssignCopy] {
            let report = run_chaos(&[fault]);
            assert_eq!(
                report.rows[0].detected_by(),
                "sanitizer",
                "{}: {:?}",
                fault.name(),
                report.rows[0].cases
            );
        }
    }

    #[test]
    fn healthy_sentinels_are_benign_under_no_fault_purchase() {
        // WrongDevirtTarget has no purchase on `copy` (no sibling
        // selectors), so that cell must classify as benign, not escaped.
        let report = run_chaos(&[Fault::WrongDevirtTarget]);
        let copy = report.rows[0]
            .cases
            .iter()
            .find(|c| c.program == "copy")
            .unwrap();
        assert_eq!(copy.outcome, Outcome::Benign, "{copy:?}");
    }

    #[test]
    fn json_document_is_schema_stable() {
        let report = run_chaos(&[Fault::SkipUseRedirect]);
        let doc = report.to_json().to_string();
        let parsed = Json::parse(&doc).unwrap();
        assert_eq!(parsed.get("schema").unwrap().as_str(), Some("oi.chaos.v1"));
        for key in ["corpus", "faults", "detected", "escaped", "ok"] {
            assert!(parsed.get(key).is_some(), "missing {key}");
        }
        let rows = parsed.get("faults").unwrap().as_arr().unwrap();
        for key in [
            "fault",
            "detected",
            "detected_by",
            "caught_sanitizer",
            "caught_oracle",
            "benign",
            "escaped",
            "ok",
            "cases",
        ] {
            assert!(rows[0].get(key).is_some(), "missing faults[].{key}");
        }
        let cases = rows[0].get("cases").unwrap().as_arr().unwrap();
        for key in [
            "program",
            "outcome",
            "retracted",
            "restored",
            "first_divergence",
            "wall_ms",
        ] {
            assert!(cases[0].get(key).is_some(), "missing cases[].{key}");
        }
    }
}
