//! Systematic fault injection: `oic chaos`.
//!
//! Runs every [`Fault`] class against a curated sentinel corpus and
//! reports a detection table: which defense caught each fault
//! (sanitizer or differential oracle), whether the culprit decision was
//! retracted, and whether the repaired program's output was restored to
//! baseline-equal. The corpus is small by design — each sentinel is the
//! minimal program shape on which a fault class has *purchase* (a fault
//! that cannot bite a program is recorded as benign there, not escaped):
//!
//! - `rect`: non-contiguous inline layouts plus redirected loads — the
//!   bite surface for `compact-first-layout-slots`, `skip-use-redirect`,
//!   and `off-by-one-slot-rewrite`;
//! - `copy`: constructor-argument children stored by value — the bite
//!   surface for `drop-assign-copy`'s omitted field copy;
//! - `siblings`: two classes sharing a selector behind a container — the
//!   bite surface for `wrong-devirt-target`.
//!
//! A fault **escapes** when it changed the built program but neither the
//! sanitizer nor the oracle objected — the one outcome the soundness
//! story cannot tolerate. Exit 0 requires every fault class detected
//! somewhere, every detection repaired, and zero escapes anywhere.

use oi_core::cache::store::DiskStore;
use oi_core::firewall::{optimize_guarded, Divergence, FirewallConfig};
use oi_core::pipeline::{optimize, InlineConfig};
use oi_core::{Fault, IoFault};
use oi_support::Json;
use std::fmt::Write as _;
use std::sync::Arc;

/// The sentinel corpus: `(name, source)`, one program per bite surface.
pub const SENTINELS: [(&str, &str); 3] = [
    (
        "rect",
        "global KEEP;
         class Point { field x; field y;
           method init(a, b) { self.x = a; self.y = b; }
         }
         class Rect { field ll; field ur;
           method init(a, b) { self.ll = new Point(a, a + 1); self.ur = new Point(b, b + 3); }
           method span() { return self.ur.x - self.ll.x + self.ur.y - self.ll.y; }
         }
         fn main() {
           var r = new Rect(1, 10);
           KEEP = r;
           print KEEP.ll.x;
           print KEEP.ll.y;
           print KEEP.span();
         }",
    ),
    (
        "copy",
        "global KEEP;
         class Point { field x; field y;
           method init(a, b) { self.x = a; self.y = b; }
         }
         class Rect { field ll; field ur;
           method init(a, b) { self.ll = a; self.ur = b; }
         }
         fn main() {
           var r = new Rect(new Point(1, 2), new Point(3, 4));
           KEEP = r;
           print KEEP.ll.x;
           print KEEP.ll.y;
           print KEEP.ur.x;
           print KEEP.ur.y;
         }",
    ),
    (
        "siblings",
        "global KEEP;
         class A { field v; method init(a) { self.v = a; } method get() { return self.v; } }
         class B { field w; method init(a) { self.w = a + 100; } method get() { return self.w; } }
         class Box { field a; field b;
           method init(x, y) { self.a = x; self.b = y; }
         }
         fn main() {
           var box = new Box(new A(1), new B(2));
           KEEP = box;
           print KEEP.a.get();
           print KEEP.b.get();
         }",
    ),
];

/// How one `(fault, sentinel)` cell resolved.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// Checked execution reported the corruption on the first probe.
    CaughtSanitizer,
    /// The differential oracle saw an output/status/census divergence.
    CaughtOracle,
    /// The fault had no purchase: the faulted build is identical to the
    /// clean build, so there was nothing to detect.
    Benign,
    /// The faulted build differs from the clean build and nothing
    /// objected — a hole in the detection lattice.
    Escaped,
}

impl Outcome {
    /// Stable kebab-case name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Outcome::CaughtSanitizer => "caught-sanitizer",
            Outcome::CaughtOracle => "caught-oracle",
            Outcome::Benign => "benign",
            Outcome::Escaped => "escaped",
        }
    }
}

/// One `(fault, sentinel)` cell of the matrix.
#[derive(Clone, Debug)]
pub struct Case {
    /// Sentinel name from [`SENTINELS`].
    pub program: String,
    /// How the cell resolved.
    pub outcome: Outcome,
    /// Decision keys the firewall retracted to repair the fault.
    pub retracted: Vec<String>,
    /// `true` when the returned program runs baseline-equal (always true
    /// for benign cells; for caught cells it means repair succeeded).
    pub restored: bool,
    /// The first divergence the oracle saw, for the report.
    pub first_divergence: String,
    /// Wall-clock spent on the whole cell (inject, probe, classify), in
    /// milliseconds, via the bench harness clock. Additive `oi.chaos.v1`
    /// field.
    pub wall_ms: u64,
}

/// One fault class's row: its cells plus the rollup the exit code uses.
#[derive(Clone, Debug)]
pub struct FaultRow {
    /// The injected fault.
    pub fault: Fault,
    /// Per-sentinel cells, in [`SENTINELS`] order.
    pub cases: Vec<Case>,
}

impl FaultRow {
    fn count(&self, o: Outcome) -> usize {
        self.cases.iter().filter(|c| c.outcome == o).count()
    }

    /// `true` when some sentinel detected this fault.
    pub fn detected(&self) -> bool {
        self.count(Outcome::CaughtSanitizer) + self.count(Outcome::CaughtOracle) > 0
    }

    /// Which defense caught it: `"sanitizer"`, `"oracle"`, or `"none"`.
    /// The sanitizer takes precedence when both fired on different
    /// sentinels (it is the earlier layer of the lattice).
    pub fn detected_by(&self) -> &'static str {
        if self.count(Outcome::CaughtSanitizer) > 0 {
            "sanitizer"
        } else if self.count(Outcome::CaughtOracle) > 0 {
            "oracle"
        } else {
            "none"
        }
    }

    /// `true` when the row meets the bar: detected somewhere, zero
    /// escapes, and every detection was repaired with the culprit
    /// decision retracted and output restored.
    pub fn ok(&self) -> bool {
        self.detected()
            && self.count(Outcome::Escaped) == 0
            && self.cases.iter().all(|c| {
                !matches!(c.outcome, Outcome::CaughtSanitizer | Outcome::CaughtOracle)
                    || (!c.retracted.is_empty() && c.restored)
            })
    }

    /// The row as schema-stable JSON.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("fault", self.fault.name().into()),
            ("detected", self.detected().into()),
            ("detected_by", self.detected_by().into()),
            (
                "caught_sanitizer",
                self.count(Outcome::CaughtSanitizer).into(),
            ),
            ("caught_oracle", self.count(Outcome::CaughtOracle).into()),
            ("benign", self.count(Outcome::Benign).into()),
            ("escaped", self.count(Outcome::Escaped).into()),
            ("ok", self.ok().into()),
            (
                "cases",
                Json::Arr(
                    self.cases
                        .iter()
                        .map(|c| {
                            Json::obj(vec![
                                ("program", c.program.clone().into()),
                                ("outcome", c.outcome.name().into()),
                                ("retracted", c.retracted.len().into()),
                                ("restored", c.restored.into()),
                                ("first_divergence", c.first_divergence.clone().into()),
                                ("wall_ms", c.wall_ms.into()),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// A service-layer fault class injected into the multi-tenant execution
/// path (scheduler + `oic serve` pump) rather than the compiler.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServiceFault {
    /// A hostile request whose program never terminates on its own; the
    /// fuel-sliced scheduler must preempt it and its instruction quota
    /// must kill it, with co-scheduled neighbors untouched.
    RequestNeverYields,
    /// A burst of requests that all bust their instruction quota at
    /// once; every one must die with a typed per-tenant kill through the
    /// full serve pipeline while well-behaved neighbors complete.
    FuelExhaustionStorm,
    /// A guest panic injected mid-execution (between fuel slices) of a
    /// served request; it must be contained to that one response.
    MidRequestPanic,
    /// A repeat-offender source wedges the only worker twice (the serve
    /// chaos seam, `chaos.wedge_compile_ms`): the watchdog must answer
    /// each victim `watchdog-killed`, replace the worker both times, and
    /// the circuit breaker must quarantine the fingerprint on the second
    /// strike — while interleaved neighbors are served by the
    /// replacements.
    WedgedWorker,
    /// A single transient compile spin on one of two workers: the
    /// watchdog kills it once, the sibling worker serves every neighbor
    /// during the wedge, and one strike must NOT open the breaker — a
    /// transient spin is not a repeat offender.
    CompileSpin,
    /// A pipelined flood against a tiny admission queue: every shed must
    /// carry a typed `retry_after_ms` hint, a backoff-honoring client
    /// must converge with zero give-ups, and the shed/request counters
    /// must reconcile exactly against what the client observed.
    RetryStorm,
    /// The write-behind persister slowed to a crawl (the serve chaos
    /// seam, `chaos_persist_delay_ms`): the backlog must build without
    /// ever blocking a response, drain to zero on graceful shutdown, and
    /// a restart over the same store must warm-start every artifact.
    PersisterBacklog,
}

impl ServiceFault {
    /// Every service-layer fault class, in report order.
    pub const ALL: [ServiceFault; 7] = [
        ServiceFault::RequestNeverYields,
        ServiceFault::FuelExhaustionStorm,
        ServiceFault::MidRequestPanic,
        ServiceFault::WedgedWorker,
        ServiceFault::CompileSpin,
        ServiceFault::RetryStorm,
        ServiceFault::PersisterBacklog,
    ];

    /// Stable kebab-case name for reports.
    pub fn name(self) -> &'static str {
        match self {
            ServiceFault::RequestNeverYields => "request-never-yields",
            ServiceFault::FuelExhaustionStorm => "fuel-exhaustion-storm",
            ServiceFault::MidRequestPanic => "mid-request-panic",
            ServiceFault::WedgedWorker => "wedged-worker",
            ServiceFault::CompileSpin => "compile-spin",
            ServiceFault::RetryStorm => "retry-storm",
            ServiceFault::PersisterBacklog => "persister-backlog",
        }
    }
}

/// One service-layer fault row: containment is binary — the fault either
/// resolved into its typed verdict with neighbors unharmed and fuel
/// accounting exact, or it escaped.
#[derive(Clone, Debug)]
pub struct ServiceRow {
    /// The injected fault.
    pub fault: ServiceFault,
    /// The fault resolved into its expected typed verdict.
    pub detected: bool,
    /// Co-scheduled well-behaved work finished normally.
    pub neighbors_ok: bool,
    /// Per-tenant fuel tallies reconciled exactly (scheduler-direct
    /// rows) / service counters matched (serve rows).
    pub reconciled: bool,
    /// Human-readable evidence for the report.
    pub detail: String,
    /// Wall-clock spent on the row, in milliseconds.
    pub wall_ms: u64,
}

impl ServiceRow {
    /// `true` when the fault was fully contained.
    pub fn ok(&self) -> bool {
        self.detected && self.neighbors_ok && self.reconciled
    }

    /// The row as schema-stable JSON.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("fault", self.fault.name().into()),
            ("detected", self.detected.into()),
            ("neighbors_ok", self.neighbors_ok.into()),
            ("reconciled", self.reconciled.into()),
            ("escaped", (!self.ok()).into()),
            ("ok", self.ok().into()),
            ("detail", self.detail.clone().into()),
            ("wall_ms", self.wall_ms.into()),
        ])
    }
}

/// One I/O fault class's row — the storage half of the chaos matrix,
/// injected against a persistent artifact store between two serve
/// sessions. The bar: the damage is *detected* by recovery, *quarantined*
/// (sidelined or dropped, never resident), the restarted server reaches a
/// *serving state*, and **zero** corrupt artifacts are served.
#[derive(Clone, Debug)]
pub struct IoRow {
    /// The injected storage fault.
    pub fault: IoFault,
    /// Recovery's counters show the damage was noticed.
    pub detected: bool,
    /// The damage was isolated: files sidelined to `quarantine/`, torn
    /// journal tails truncated, stale records dropped.
    pub quarantined: bool,
    /// The restarted server reached a serving state and answered every
    /// request `ok:true` — corruption degraded the cache, never the
    /// service.
    pub recovered: bool,
    /// Served payloads that differed from the pre-fault payloads. Must be
    /// zero: a corrupt artifact is recompiled, never served.
    pub corrupt_served: usize,
    /// Human-readable evidence for the report.
    pub detail: String,
    /// Wall-clock spent on the row, in milliseconds.
    pub wall_ms: u64,
}

impl IoRow {
    /// `true` when the fault was fully contained.
    pub fn ok(&self) -> bool {
        self.detected && self.quarantined && self.recovered && self.corrupt_served == 0
    }

    /// The row as schema-stable JSON.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("fault", self.fault.name().into()),
            ("detected", self.detected.into()),
            ("quarantined", self.quarantined.into()),
            ("recovered", self.recovered.into()),
            ("corrupt_served", self.corrupt_served.into()),
            ("escaped", (!self.ok()).into()),
            ("ok", self.ok().into()),
            ("detail", self.detail.clone().into()),
            ("wall_ms", self.wall_ms.into()),
        ])
    }
}

/// The whole matrix.
#[derive(Clone, Debug, Default)]
pub struct ChaosReport {
    /// One row per injected fault, in [`Fault::ALL`] order (or the single
    /// `--fault` row).
    pub rows: Vec<FaultRow>,
    /// Service-layer fault rows, in [`ServiceFault::ALL`] order (empty
    /// when a `--fault` filter restricted the run to one compiler fault).
    pub service_rows: Vec<ServiceRow>,
    /// Storage fault rows, in [`IoFault::ALL`] order (empty when a
    /// `--fault` filter restricted the run to a compiler fault, and the
    /// only rows when it named an I/O fault).
    pub io_rows: Vec<IoRow>,
}

impl ChaosReport {
    /// `true` when every row meets the bar ([`FaultRow::ok`],
    /// [`ServiceRow::ok`], [`IoRow::ok`]).
    pub fn ok(&self) -> bool {
        (!self.rows.is_empty() || !self.io_rows.is_empty())
            && self.rows.iter().all(FaultRow::ok)
            && self.service_rows.iter().all(ServiceRow::ok)
            && self.io_rows.iter().all(IoRow::ok)
    }

    /// Escapes across the whole matrix, service and I/O rows included.
    pub fn escapes(&self) -> usize {
        self.rows
            .iter()
            .map(|r| r.count(Outcome::Escaped))
            .sum::<usize>()
            + self.service_rows.iter().filter(|r| !r.ok()).count()
            + self.io_rows.iter().filter(|r| !r.ok()).count()
    }

    /// The report as a schema-stable `oi.chaos.v1` document.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("schema", "oi.chaos.v1".into()),
            (
                "corpus",
                Json::Arr(SENTINELS.iter().map(|&(n, _)| n.into()).collect()),
            ),
            (
                "faults",
                Json::Arr(self.rows.iter().map(FaultRow::to_json).collect()),
            ),
            (
                "service_faults",
                Json::Arr(self.service_rows.iter().map(ServiceRow::to_json).collect()),
            ),
            (
                "io_faults",
                Json::Arr(self.io_rows.iter().map(IoRow::to_json).collect()),
            ),
            (
                "detected",
                self.rows.iter().filter(|r| r.detected()).count().into(),
            ),
            ("escaped", self.escapes().into()),
            ("ok", self.ok().into()),
        ])
    }
}

/// Runs one `(fault, sentinel)` cell: inject, probe, classify.
fn run_case(name: &str, source: &str, fault: Fault) -> Case {
    let program = oi_ir::lower::compile(source).expect("sentinel programs compile");
    let inline = InlineConfig::default();
    let fw = FirewallConfig {
        fault: Some(fault),
        ..FirewallConfig::default()
    };
    let g = match optimize_guarded(&program, &inline, &fw) {
        Ok(g) => g,
        Err(e) => {
            // The injected fault broke the build itself; the pipeline's
            // typed error is a detection by construction, but nothing was
            // retracted or restored, so report it as an unrepaired catch.
            return Case {
                program: name.to_owned(),
                outcome: Outcome::CaughtOracle,
                retracted: Vec::new(),
                restored: false,
                first_divergence: format!("pipeline error: {e}"),
                wall_ms: 0,
            };
        }
    };
    let first = g
        .initial_divergences
        .first()
        .map(|d| d.to_string())
        .unwrap_or_default();
    if !g.initial_divergences.is_empty() {
        let sanitizer = g.initial_divergences.iter().any(|d| {
            matches!(d, Divergence::Sanitizer { .. })
                || matches!(d, Divergence::Status { optimized, .. }
                    if optimized.contains("checked execution"))
        });
        return Case {
            program: name.to_owned(),
            outcome: if sanitizer {
                Outcome::CaughtSanitizer
            } else {
                Outcome::CaughtOracle
            },
            retracted: g.retracted.clone(),
            restored: g.is_equivalent(),
            first_divergence: first,
            wall_ms: 0,
        };
    }
    // Nothing objected. Since no retraction ran, `g.optimized` *is* the
    // faulted build: compare it against a clean build to tell a fault
    // with no purchase (benign) from one that silently changed the
    // program (escaped).
    let clean = optimize(&program, &inline);
    let escaped = format!("{:?}", g.optimized.program) != format!("{:?}", clean.program);
    Case {
        program: name.to_owned(),
        outcome: if escaped {
            Outcome::Escaped
        } else {
            Outcome::Benign
        },
        retracted: g.retracted.clone(),
        restored: g.is_equivalent(),
        first_divergence: first,
        wall_ms: 0,
    }
}

/// Runs the matrix: every fault in `faults` against every sentinel.
pub fn run_chaos(faults: &[Fault]) -> ChaosReport {
    let mut report = ChaosReport::default();
    for &fault in faults {
        let cases = SENTINELS
            .iter()
            .map(|&(name, source)| {
                let (mut case, wall) = crate::harness::time_once(|| run_case(name, source, fault));
                case.wall_ms = (wall.median / 1_000_000) as u64;
                case
            })
            .collect();
        report.rows.push(FaultRow { fault, cases });
    }
    report
}

/// Runs every [`ServiceFault`] against the multi-tenant execution path.
pub fn run_service_chaos() -> Vec<ServiceRow> {
    ServiceFault::ALL
        .iter()
        .map(|&fault| {
            let (mut row, wall) = crate::harness::time_once(|| match fault {
                ServiceFault::RequestNeverYields => service_never_yields(),
                ServiceFault::FuelExhaustionStorm => service_fuel_storm(),
                ServiceFault::MidRequestPanic => service_mid_request_panic(),
                ServiceFault::WedgedWorker => service_wedged_worker(),
                ServiceFault::CompileSpin => service_compile_spin(),
                ServiceFault::RetryStorm => service_retry_storm(),
                ServiceFault::PersisterBacklog => service_persister_backlog(),
            });
            row.wall_ms = (wall.median / 1_000_000) as u64;
            row
        })
        .collect()
}

/// A non-terminating request against the fuel-sliced scheduler: it must
/// be preempted across slices, die on its instruction quota, and leave a
/// co-scheduled neighbor's completion untouched. Drives the scheduler
/// directly — a program with no exit cannot pass through `serve`'s
/// compile path, whose firewall runs candidates empirically.
fn service_never_yields() -> ServiceRow {
    use crate::sched::{JobSpec, ProgramRef, SchedConfig, Scheduler, TenantQuota};
    let hostile = Arc::new(
        oi_ir::lower::compile("fn main() { var i = 0; while (0 < 1) { i = i + 1; } print i; }")
            .expect("hostile sentinel compiles"),
    );
    let neighbor = Arc::new(
        oi_ir::lower::compile(
            "fn main() { var i = 0; var acc = 0; while (i < 200) \
             { acc = acc + i; i = i + 1; } print acc; }",
        )
        .expect("neighbor sentinel compiles"),
    );
    let (tx, rx) = std::sync::mpsc::channel();
    drop(rx);
    let sched = Scheduler::new(
        SchedConfig {
            fuel_slice: 1_000,
            max_queue: 8,
        },
        tx,
    );
    let quota = |max_instructions: u64| TenantQuota {
        max_instructions,
        ..TenantQuota::default()
    };
    let _ = sched.submit(JobSpec {
        tenant: "hostile".into(),
        program: ProgramRef::Bare(hostile),
        quota: quota(5_000),
        fault: None,
    });
    let _ = sched.submit(JobSpec {
        tenant: "neighbor".into(),
        program: ProgramRef::Bare(neighbor),
        quota: quota(1 << 20),
        fault: None,
    });
    sched.close();
    std::thread::scope(|scope| {
        for _ in 0..2 {
            scope.spawn(|| sched.worker_loop());
        }
    });
    let summaries = sched.tenant_summaries();
    let find = |name: &str| summaries.iter().find(|s| s.tenant == name);
    let hostile_s = find("hostile");
    let neighbor_s = find("neighbor");
    let detected = hostile_s.is_some_and(|s| {
        s.quota_kills.instructions == 1 && s.completed == 0 && s.panicked == 0 && s.slices > 1
    });
    let neighbors_ok = neighbor_s.is_some_and(|s| s.completed == 1 && s.quota_kills.total() == 0);
    let reconciled = summaries.iter().all(|s| s.reconciled());
    ServiceRow {
        fault: ServiceFault::RequestNeverYields,
        detected,
        neighbors_ok,
        reconciled,
        detail: format!(
            "hostile: {} slices before instruction-quota kill; neighbor completed: {}",
            hostile_s.map_or(0, |s| s.slices),
            neighbors_ok,
        ),
        wall_ms: 0,
    }
}

/// Drives one full serve session over an in-memory transcript and
/// returns the parsed responses plus the server's final counters.
fn serve_session(
    config: crate::serve::ServeConfig,
    requests: &[String],
) -> (Vec<Json>, Json, bool) {
    let server = crate::serve::Server::new(config);
    let input = std::io::Cursor::new(requests.join("\n").into_bytes());
    let mut out: Vec<u8> = Vec::new();
    let code = crate::serve::run_serve(&server, input, &mut out);
    let responses = String::from_utf8_lossy(&out)
        .lines()
        .map(|l| Json::parse(l).unwrap_or(Json::Null))
        .collect();
    let clean_exit = code == 0 && server.metrics().gauge("serve.in_flight") == 0;
    (responses, server.metrics().to_json(), clean_exit)
}

fn counter_of(metrics: &Json, name: &str) -> i64 {
    metrics
        .get("counters")
        .and_then(|c| c.get(name))
        .and_then(Json::as_i64)
        .unwrap_or(0)
}

/// A quota-exhaustion storm through the full serve pipeline: a burst of
/// requests that all bust a tight instruction quota, interleaved across
/// tenants, with two well-behaved neighbors riding along.
fn service_fuel_storm() -> ServiceRow {
    const STORM: usize = 24;
    let storm_source = "fn main() { var i = 0; var acc = 0; while (i < 50000) \
                        { acc = acc + i; i = i + 1; } print acc; }";
    let mut requests: Vec<String> = (0..STORM)
        .map(|i| {
            Json::obj(vec![
                ("id", Json::from(i as u64 + 1)),
                ("op", "run".into()),
                ("source", storm_source.into()),
                ("tenant", format!("storm{}", i % 6).into()),
            ])
            .to_string()
        })
        .collect();
    for (i, tenant) in ["calm0", "calm1"].iter().enumerate() {
        requests.push(
            Json::obj(vec![
                ("id", Json::from(100 + i as u64)),
                ("op", "run".into()),
                ("source", "fn main() { print 1 + 1; }".into()),
                ("tenant", (*tenant).into()),
            ])
            .to_string(),
        );
    }
    let (responses, metrics, clean_exit) = serve_session(
        crate::serve::ServeConfig {
            jobs: 2,
            max_instructions: Some(1_000),
            ..crate::serve::ServeConfig::default()
        },
        &requests,
    );
    let killed = responses
        .iter()
        .take(STORM)
        .filter(|r| {
            r.get("error_kind").and_then(Json::as_str) == Some("quota-exceeded")
                && r.get("error")
                    .and_then(Json::as_str)
                    .is_some_and(|e| e.contains("storm") && e.contains("instructions"))
        })
        .count();
    let calm_ok = responses
        .iter()
        .skip(STORM)
        .filter(|r| {
            r.get("ok").and_then(Json::as_bool) == Some(true)
                && r.get("payload")
                    .and_then(|p| p.get("output"))
                    .and_then(Json::as_str)
                    == Some("2\n")
        })
        .count();
    let detected = responses.len() == STORM + 2 && killed == STORM;
    let neighbors_ok = calm_ok == 2;
    let reconciled = clean_exit && counter_of(&metrics, "serve.quota_kills_total") == STORM as i64;
    ServiceRow {
        fault: ServiceFault::FuelExhaustionStorm,
        detected,
        neighbors_ok,
        reconciled,
        detail: format!(
            "{killed}/{STORM} storm requests died with typed per-tenant kills; \
             {calm_ok}/2 neighbors served"
        ),
        wall_ms: 0,
    }
}

/// A panic injected between fuel slices of a served request (the serve
/// chaos seam, `chaos.panic_at_slice`): the blast radius must be exactly
/// one `ok:false panic` response.
fn service_mid_request_panic() -> ServiceRow {
    let _quiet = oi_support::panic::silence_hook();
    let source = "fn main() { var i = 0; var acc = 0; while (i < 5000) \
                  { acc = acc + i; i = i + 1; } print acc; }";
    let requests = vec![
        Json::obj(vec![
            ("id", Json::from(1u64)),
            ("op", "run".into()),
            ("source", source.into()),
            ("tenant", "victim".into()),
            (
                "chaos",
                Json::obj(vec![("panic_at_slice", Json::from(1u64))]),
            ),
        ])
        .to_string(),
        Json::obj(vec![
            ("id", Json::from(2u64)),
            ("op", "run".into()),
            ("source", source.into()),
            ("tenant", "bystander".into()),
        ])
        .to_string(),
    ];
    let (responses, metrics, clean_exit) = serve_session(
        crate::serve::ServeConfig {
            allow_chaos_faults: true,
            fuel_slice: 1_000,
            ..crate::serve::ServeConfig::default()
        },
        &requests,
    );
    let detected = responses.len() == 2
        && responses[0].get("ok").and_then(Json::as_bool) == Some(false)
        && responses[0].get("error_kind").and_then(Json::as_str) == Some("panic");
    let neighbors_ok = responses.len() == 2
        && responses[1].get("ok").and_then(Json::as_bool) == Some(true)
        && responses[1]
            .get("payload")
            .and_then(|p| p.get("output"))
            .and_then(Json::as_str)
            .is_some();
    let reconciled = clean_exit && counter_of(&metrics, "serve.errors") == 1;
    ServiceRow {
        fault: ServiceFault::MidRequestPanic,
        detected,
        neighbors_ok,
        reconciled,
        detail: format!(
            "victim response: {}; bystander served afterwards: {neighbors_ok}",
            responses
                .first()
                .and_then(|r| r.get("error"))
                .and_then(Json::as_str)
                .unwrap_or("<missing>"),
        ),
        wall_ms: 0,
    }
}

fn gauge_of(metrics: &Json, name: &str) -> i64 {
    metrics
        .get("gauges")
        .and_then(|g| g.get(name))
        .and_then(Json::as_i64)
        .unwrap_or(0)
}

fn chaos_compile(id: u64, source: &str) -> String {
    Json::obj(vec![
        ("id", Json::from(id)),
        ("op", "compile".into()),
        ("source", source.into()),
    ])
    .to_string()
}

fn chaos_wedge(id: u64, source: &str, wedge_ms: u64) -> String {
    Json::obj(vec![
        ("id", Json::from(id)),
        ("op", "compile".into()),
        ("source", source.into()),
        (
            "chaos",
            Json::obj(vec![("wedge_compile_ms", wedge_ms.into())]),
        ),
    ])
    .to_string()
}

/// A repeat-offender source wedges the single worker twice: each victim
/// must be answered `watchdog-killed` by the watchdog (not the worker),
/// the worker must be replaced both times so interleaved neighbors keep
/// getting served, and the second strike must trip the circuit breaker —
/// the third submission of the same source is refused `quarantined` with
/// a `retry_after_ms` probe hint instead of wedging a third worker.
fn service_wedged_worker() -> ServiceRow {
    let offender = "class W { field a; method init(x) { self.a = x; } } \
                    fn main() { var w = new W(7); print w.a; }";
    let requests = vec![
        chaos_wedge(1, offender, 200),
        chaos_compile(2, "fn main() { print 1 + 1; }"),
        chaos_wedge(3, offender, 200),
        chaos_compile(4, offender),
        chaos_compile(5, "fn main() { print 2 + 2; }"),
    ];
    let (responses, metrics, clean_exit) = serve_session(
        crate::serve::ServeConfig {
            jobs: 1,
            allow_chaos_faults: true,
            watchdog_ms: Some(25),
            watchdog_strikes: 2,
            quarantine_cooldown_ms: 60_000,
            ..crate::serve::ServeConfig::default()
        },
        &requests,
    );
    let kind = |i: usize| {
        responses
            .get(i)
            .and_then(|r| r.get("error_kind"))
            .and_then(Json::as_str)
            .unwrap_or("")
    };
    let served = |i: usize| {
        responses
            .get(i)
            .and_then(|r| r.get("ok"))
            .and_then(Json::as_bool)
            == Some(true)
    };
    let hint = responses
        .get(3)
        .and_then(|r| r.get("retry_after_ms"))
        .and_then(Json::as_i64)
        .unwrap_or(0);
    let kills = counter_of(&metrics, "serve.watchdog_kills_total");
    let replacements = counter_of(&metrics, "serve.worker_replacements_total");
    let detected = responses.len() == 5
        && kind(0) == "watchdog-killed"
        && kind(2) == "watchdog-killed"
        && kind(3) == "quarantined"
        && hint > 0;
    let neighbors_ok = served(1) && served(4);
    let reconciled = clean_exit
        && kills == 2
        && replacements == 2
        && counter_of(&metrics, "serve.breaker_opened_total") == 1
        && counter_of(&metrics, "serve.quarantined_total") == 1;
    ServiceRow {
        fault: ServiceFault::WedgedWorker,
        detected,
        neighbors_ok,
        reconciled,
        detail: format!(
            "victims: [{}, {}]; strike-2 verdict: {} (probe in {hint}ms); \
             kills/replacements: {kills}/{replacements}",
            kind(0),
            kind(2),
            kind(3),
        ),
        wall_ms: 0,
    }
}

/// One transient compile spin on one of two workers: the watchdog kills
/// it once and a replacement joins, the sibling worker serves every
/// neighbor during the wedge, one strike must NOT open the breaker, and
/// the wedged worker's late return is suppressed and accounted exactly
/// once (`serve.errors == 1`).
fn service_compile_spin() -> ServiceRow {
    let spinner = "class S { field a; method init(x) { self.a = x; } } \
                   fn main() { var s = new S(3); print s.a; }";
    let requests = vec![
        chaos_wedge(1, spinner, 250),
        chaos_compile(2, "fn main() { print 10 + 1; }"),
        chaos_compile(3, "fn main() { print 10 + 2; }"),
        chaos_compile(4, "fn main() { print 10 + 3; }"),
    ];
    let (responses, metrics, clean_exit) = serve_session(
        crate::serve::ServeConfig {
            jobs: 2,
            allow_chaos_faults: true,
            watchdog_ms: Some(30),
            watchdog_strikes: 10,
            ..crate::serve::ServeConfig::default()
        },
        &requests,
    );
    let victim_kind = responses
        .first()
        .and_then(|r| r.get("error_kind"))
        .and_then(Json::as_str)
        .unwrap_or("");
    let neighbors = responses
        .iter()
        .skip(1)
        .filter(|r| r.get("ok").and_then(Json::as_bool) == Some(true))
        .count();
    let detected = responses.len() == 4 && victim_kind == "watchdog-killed";
    let neighbors_ok = neighbors == 3;
    let reconciled = clean_exit
        && counter_of(&metrics, "serve.watchdog_kills_total") == 1
        && counter_of(&metrics, "serve.worker_replacements_total") == 1
        && counter_of(&metrics, "serve.breaker_opened_total") == 0
        && counter_of(&metrics, "serve.quarantined_total") == 0
        && counter_of(&metrics, "serve.errors") == 1;
    ServiceRow {
        fault: ServiceFault::CompileSpin,
        detected,
        neighbors_ok,
        reconciled,
        detail: format!(
            "victim verdict: {victim_kind}; {neighbors}/3 neighbors served during the \
             wedge; one strike left the breaker closed: {}",
            counter_of(&metrics, "serve.breaker_opened_total") == 0,
        ),
        wall_ms: 0,
    }
}

/// A pipelined flood against a two-slot admission queue: every shed in
/// the first wave must carry a typed `retry_after_ms` hint, a
/// backoff-honoring client must converge every shed with zero give-ups,
/// and the shed/request counters must reconcile exactly against what the
/// client observed (sheds answered at the reader are id-less and never
/// reach dispatch).
fn service_retry_storm() -> ServiceRow {
    use crate::client::{request_with_retries, with_pump_client, RETRYABLE_KINDS};
    use crate::overload::{RetryPolicy, RetrySession};
    const FLOOD: usize = 24;
    let source = |i: usize| {
        let n = i % 6;
        format!(
            "class R{n} {{ field a; field b; \
               method init(x) {{ self.a = x; self.b = x + {n}; }} }} \
             fn main() {{ var r = new R{n}(5); print r.a + r.b; }}"
        )
    };
    let lines: Vec<String> = (0..FLOOD)
        .map(|i| chaos_compile(i as u64 + 1, &source(i)))
        .collect();
    let server = crate::serve::Server::new(crate::serve::ServeConfig {
        queue: 2,
        jobs: 1,
        ..crate::serve::ServeConfig::default()
    });
    let mut attempts = 0u64;
    let mut reader_sheds = 0u64;
    let mut shed_responses = 0u64;
    let mut hinted = 0u64;
    let mut first_wave_sheds = 0u64;
    let mut completed = 0u64;
    let mut give_ups = 0u64;
    let mut protocol_errors = 0u64;
    with_pump_client(&server, |client| {
        for line in &lines {
            client.send_line(line);
        }
        let mut needs_retry: Vec<usize> = Vec::new();
        for i in 0..FLOOD {
            attempts += 1;
            let Some(resp) = client.recv_line() else {
                protocol_errors += 1;
                continue;
            };
            let kind = resp
                .get("error_kind")
                .and_then(Json::as_str)
                .unwrap_or("")
                .to_string();
            if resp.get("ok").and_then(Json::as_bool) == Some(true) {
                completed += 1;
            } else if RETRYABLE_KINDS.contains(&kind.as_str()) {
                shed_responses += 1;
                first_wave_sheds += 1;
                if resp
                    .get("retry_after_ms")
                    .and_then(Json::as_i64)
                    .unwrap_or(0)
                    > 0
                {
                    hinted += 1;
                }
                if resp.get("id").is_none_or(|id| *id == Json::Null) {
                    reader_sheds += 1;
                }
                needs_retry.push(i);
            } else {
                protocol_errors += 1;
            }
        }
        // Lock-step retries: one request in flight at a time, so retry
        // traffic can never itself overflow the two-slot queue (no
        // id-less reader sheds past the first wave).
        let policy = RetryPolicy {
            max_attempts: 10,
            base_ms: 5,
            cap_ms: 50,
            budget_ms: 2_000,
        };
        for &i in &needs_retry {
            let mut session = RetrySession::new(policy, 7 ^ (i as u64).wrapping_mul(0x9e37_79b9));
            let outcome = request_with_retries(client, &lines[i], &mut session);
            attempts += u64::from(outcome.attempts);
            let final_retryable = outcome
                .response
                .as_ref()
                .map(|r| {
                    RETRYABLE_KINDS
                        .contains(&r.get("error_kind").and_then(Json::as_str).unwrap_or(""))
                })
                .unwrap_or(false);
            shed_responses +=
                u64::from(outcome.attempts.saturating_sub(1)) + u64::from(final_retryable);
            match &outcome.response {
                None => protocol_errors += 1,
                Some(resp) if resp.get("ok").and_then(Json::as_bool) == Some(true) => {
                    completed += 1;
                }
                Some(_) if final_retryable => give_ups += 1,
                Some(_) => protocol_errors += 1,
            }
        }
    });
    let m = server.metrics();
    let detected = first_wave_sheds >= 1 && hinted == first_wave_sheds;
    let neighbors_ok = completed == FLOOD as u64 && give_ups == 0 && protocol_errors == 0;
    let reconciled = m.counter("serve.requests") == attempts - reader_sheds
        && m.counter("serve.shed_total") == shed_responses
        && m.gauge("serve.in_flight") == 0;
    ServiceRow {
        fault: ServiceFault::RetryStorm,
        detected,
        neighbors_ok,
        reconciled,
        detail: format!(
            "{first_wave_sheds} first-wave sheds ({hinted} hinted, {reader_sheds} at the \
             reader); {completed}/{FLOOD} converged in {attempts} attempts, {give_ups} give-ups"
        ),
        wall_ms: 0,
    }
}

/// The write-behind persister slowed to a crawl: the backlog must build
/// (proof the requests did not wait for disk), drain to zero on graceful
/// shutdown with every artifact persisted, and a restart over the same
/// store must warm-start all of them from disk.
fn service_persister_backlog() -> ServiceRow {
    const FLEET: usize = 12;
    let dir =
        std::env::temp_dir().join(format!("oi-chaos-persister-backlog-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let source = |i: usize| {
        format!(
            "class P{i} {{ field a; method init(x) {{ self.a = x + {i}; }} }} \
             fn main() {{ var p = new P{i}(1); print p.a; }}"
        )
    };
    let config = |delay: Option<u64>| crate::serve::ServeConfig {
        cache_dir: Some(dir.to_string_lossy().into_owned()),
        chaos_persist_delay_ms: delay,
        ..crate::serve::ServeConfig::default()
    };
    let cold_requests: Vec<String> = (0..FLEET)
        .map(|i| chaos_compile(i as u64 + 1, &source(i)))
        .collect();
    let (cold, cold_metrics, cold_clean) = serve_session(config(Some(5)), &cold_requests);
    let warm_requests: Vec<String> = (0..FLEET)
        .map(|i| chaos_compile(i as u64 + 101, &source(i)))
        .collect();
    let (warm, warm_metrics, warm_clean) = serve_session(config(None), &warm_requests);
    let _ = std::fs::remove_dir_all(&dir);
    let ok_count = |rs: &[Json]| {
        rs.iter()
            .filter(|r| r.get("ok").and_then(Json::as_bool) == Some(true))
            .count()
    };
    let peak = counter_of(&cold_metrics, "serve.persist_backlog_peak");
    let residual = gauge_of(&cold_metrics, "serve.persist_backlog");
    let persisted = counter_of(&cold_metrics, "disk.persists");
    let warm_disk_hits = counter_of(&warm_metrics, "disk.load_hits");
    let (cold_ok, warm_ok) = (ok_count(&cold), ok_count(&warm));
    let detected = peak >= 2 && residual == 0 && persisted == FLEET as i64;
    let neighbors_ok = cold_ok == FLEET && warm_ok == FLEET;
    let reconciled = cold_clean
        && warm_clean
        && counter_of(&cold_metrics, "disk.persist_failures") == 0
        && warm_disk_hits == FLEET as i64;
    ServiceRow {
        fault: ServiceFault::PersisterBacklog,
        detected,
        neighbors_ok,
        reconciled,
        detail: format!(
            "backlog peaked at {peak} and drained to {residual}; {persisted}/{FLEET} \
             persisted; warm restart served {warm_ok}/{FLEET} ({warm_disk_hits} from disk)"
        ),
        wall_ms: 0,
    }
}

/// Runs every [`IoFault`] against the persistent artifact store: seed a
/// store through a real serve session, kill it cleanly, corrupt the
/// directory, restart, and require detected + quarantined + serving state
/// + zero corrupt serves.
pub fn run_io_chaos() -> Vec<IoRow> {
    IoFault::ALL
        .iter()
        .map(|&fault| {
            let (mut row, wall) = crate::harness::time_once(|| run_io_case(fault));
            row.wall_ms = (wall.median / 1_000_000) as u64;
            row
        })
        .collect()
}

/// A fresh per-case store directory under the system temp dir.
fn io_case_dir(fault: IoFault) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "oi-chaos-io-{}-{}-{n}",
        std::process::id(),
        fault.name()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One I/O fault cell: seed, inject, restart, classify.
fn run_io_case(fault: IoFault) -> IoRow {
    let dir = io_case_dir(fault);
    let config = || crate::serve::ServeConfig {
        cache_dir: Some(dir.to_string_lossy().into_owned()),
        ..crate::serve::ServeConfig::default()
    };
    // The same transcript drives both sessions: compile two sentinels,
    // then shut down (which drains the write-behind persister and
    // compacts the journal — the clean store the fault corrupts).
    let requests: Vec<String> = SENTINELS
        .iter()
        .take(2)
        .enumerate()
        .map(|(i, &(_, source))| {
            Json::obj(vec![
                ("id", Json::from(i as u64 + 1)),
                ("op", "compile".into()),
                ("source", source.into()),
            ])
            .to_string()
        })
        .chain(std::iter::once(
            Json::obj(vec![("id", 99u64.into()), ("op", "shutdown".into())]).to_string(),
        ))
        .collect();
    let (seeded, _, seed_clean) = serve_session(config(), &requests);
    let expected: Vec<String> = seeded
        .iter()
        .take(2)
        .map(|r| r.get("payload").map(Json::to_string).unwrap_or_default())
        .collect();

    let injected = match DiskStore::inject_io_fault(&dir, fault) {
        Ok(desc) => desc,
        Err(e) => {
            let _ = std::fs::remove_dir_all(&dir);
            return IoRow {
                fault,
                detected: false,
                quarantined: false,
                recovered: false,
                corrupt_served: 0,
                detail: format!("injection failed: {e}"),
                wall_ms: 0,
            };
        }
    };

    let (responses, metrics, clean_exit) = serve_session(config(), &requests);
    let all_ok = responses.len() == requests.len()
        && responses
            .iter()
            .all(|r| r.get("ok").and_then(Json::as_bool) == Some(true));
    let recovered = seed_clean && clean_exit && all_ok;
    // Zero corrupt serves: every compile answer must carry the exact
    // pre-fault payload, whether it came from disk or a recompile.
    let corrupt_served = responses
        .iter()
        .take(2)
        .zip(&expected)
        .filter(|(r, want)| r.get("payload").map(Json::to_string).as_deref() != Some(want.as_str()))
        .count();
    let served_states: Vec<&str> = responses
        .iter()
        .take(2)
        .map(|r| r.get("cache").and_then(Json::as_str).unwrap_or("?"))
        .collect();

    let c = |name: &str| counter_of(&metrics, name);
    let quarantine_files = std::fs::read_dir(dir.join("quarantine"))
        .map(|d| d.count())
        .unwrap_or(0);
    let (detected, quarantined, evidence) = match fault {
        IoFault::TornWrite
        | IoFault::BitFlipBody
        | IoFault::BitFlipHeader
        | IoFault::VersionSkew => {
            let n = c("serve.recovery_quarantined");
            (
                n >= 1,
                quarantine_files >= 1,
                format!("recovery quarantined {n} entry(s), {quarantine_files} file(s) sidelined"),
            )
        }
        IoFault::TruncatedJournalTail => {
            let torn = c("serve.recovery_journal_truncated") == 1;
            let adopted = c("serve.recovery_orphans_adopted");
            (
                torn,
                torn,
                format!("torn tail truncated, {adopted} orphan(s) re-adopted"),
            )
        }
        IoFault::StaleManifestRecord => {
            let stale = c("serve.recovery_stale_records");
            let dup = c("serve.recovery_duplicate_records");
            (
                stale >= 1,
                stale >= 1 && dup >= 1,
                format!("{stale} stale + {dup} duplicate record(s) dropped"),
            )
        }
        IoFault::EnospcMidWrite => {
            let temps = c("serve.recovery_torn_temps");
            (
                temps >= 1,
                quarantine_files >= 1,
                format!("{temps} orphan temp(s) sidelined"),
            )
        }
    };
    let _ = std::fs::remove_dir_all(&dir);
    IoRow {
        fault,
        detected,
        quarantined,
        recovered,
        corrupt_served,
        detail: format!(
            "{injected}; {evidence}; restart served [{}]",
            served_states.join(", ")
        ),
        wall_ms: 0,
    }
}

const USAGE: &str = "usage: oic chaos [flags]

Injects every fault class from the systematic fault matrix into a
sentinel corpus and reports which defense layer caught each one
(heap sanitizer or differential oracle), whether the culprit decision
was retracted, and whether output was restored to baseline-equal.
Also runs the service-layer matrix (request-never-yields,
fuel-exhaustion-storm, mid-request-panic, wedged-worker, compile-spin,
retry-storm, persister-backlog) against the multi-tenant scheduler,
the serve pump, its watchdog/breaker self-healing and overload-control
paths, and the storage matrix (torn writes, torn
journal tails, bit flips, stale manifest records, device-full writes,
version skew) against the persistent artifact store across a
kill-and-restart, unless `--fault` restricts the run.
Exit 0 only when every fault class is detected and contained with zero
escapes and zero corrupt artifacts served; 1 otherwise; 2 on usage
errors.

  --fault NAME      run a single fault class, compiler or I/O
                    (see `--list`)
  --list            print the fault class names and exit
  --json            emit a schema-stable oi.chaos.v1 document
  --out FILE        write the report to FILE instead of stdout
";

/// Runs the `oic chaos` command-line interface on pre-split arguments and
/// returns the process exit code.
pub fn cli_main(args: &[String]) -> u8 {
    use oi_support::cli::{Arg, ArgScanner};
    let mut faults: Vec<Fault> = Fault::ALL.to_vec();
    let mut io_only: Option<IoFault> = None;
    let mut filtered = false;
    let mut json_output = false;
    let mut out: Option<String> = None;
    let mut scanner = ArgScanner::new(args.to_vec());
    while let Some(arg) = scanner.next() {
        let arg = match arg {
            Ok(arg) => arg,
            Err(msg) => return usage_error(&msg),
        };
        match arg {
            Arg::Flag { name, value: None } => match name.as_str() {
                "fault" => {
                    let v = scanner.value_for("--fault").unwrap_or_default();
                    match (Fault::parse(&v), IoFault::parse(&v)) {
                        (Some(f), _) => {
                            faults = vec![f];
                            filtered = true;
                        }
                        (None, Some(f)) => {
                            faults = Vec::new();
                            io_only = Some(f);
                            filtered = true;
                        }
                        (None, None) => {
                            return usage_error(&format!(
                                "unknown fault `{v}` (try `oic chaos --list`)"
                            ))
                        }
                    }
                }
                "list" => {
                    for f in Fault::ALL {
                        println!("{}", f.name());
                    }
                    for f in IoFault::ALL {
                        println!("{}", f.name());
                    }
                    return 0;
                }
                "json" => json_output = true,
                "out" => match scanner.value_for("--out") {
                    Ok(path) => out = Some(path),
                    Err(_) => return usage_error("`--out` needs a file path"),
                },
                "help" => {
                    print!("{USAGE}");
                    return 0;
                }
                other => return usage_error(&format!("unknown flag `--{other}`")),
            },
            Arg::Flag { name, value } => {
                return usage_error(&format!(
                    "unknown flag `--{name}={}`",
                    value.unwrap_or_default()
                ));
            }
            Arg::Positional(p) => {
                return usage_error(&format!("unexpected argument `{p}`"));
            }
        }
    }
    eprintln!(
        "chaos: {} fault class(es) x {} sentinel(s){}...",
        faults.len() + usize::from(io_only.is_some()),
        SENTINELS.len(),
        if filtered {
            ""
        } else {
            ", plus the service-layer and storage matrices"
        }
    );
    let mut report = run_chaos(&faults);
    if !filtered {
        report.service_rows = run_service_chaos();
        report.io_rows = run_io_chaos();
    } else if let Some(fault) = io_only {
        let (mut row, wall) = crate::harness::time_once(|| run_io_case(fault));
        row.wall_ms = (wall.median / 1_000_000) as u64;
        report.io_rows = vec![row];
    }
    let rendered = if json_output {
        report.to_json().to_string()
    } else {
        render_text(&report)
    };
    let code = write_out(&rendered, out.as_deref());
    if code != 0 {
        return code;
    }
    u8::from(!report.ok())
}

fn usage_error(msg: &str) -> u8 {
    eprintln!("{msg}");
    2
}

fn render_text(report: &ChaosReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:28} {:10} {:>4} {:>4} {:>4} {:>4}  verdict",
        "fault", "caught-by", "san", "orcl", "bngn", "esc"
    );
    for row in &report.rows {
        let _ = writeln!(
            out,
            "{:28} {:10} {:>4} {:>4} {:>4} {:>4}  {}",
            row.fault.name(),
            row.detected_by(),
            row.count(Outcome::CaughtSanitizer),
            row.count(Outcome::CaughtOracle),
            row.count(Outcome::Benign),
            row.count(Outcome::Escaped),
            if row.ok() { "ok" } else { "FAIL" }
        );
        for c in &row.cases {
            if matches!(c.outcome, Outcome::CaughtSanitizer | Outcome::CaughtOracle) {
                let _ = writeln!(
                    out,
                    "  {:9} {} retracted={} restored={}",
                    c.program,
                    c.outcome.name(),
                    c.retracted.len(),
                    c.restored
                );
                if !c.first_divergence.is_empty() {
                    let _ = writeln!(out, "            {}", c.first_divergence);
                }
            }
        }
    }
    for row in &report.service_rows {
        let _ = writeln!(
            out,
            "{:28} {:10} {:>19}  {}",
            row.fault.name(),
            "service",
            format!(
                "detected={} nbrs={}",
                u8::from(row.detected),
                u8::from(row.neighbors_ok)
            ),
            if row.ok() { "ok" } else { "FAIL" }
        );
        let _ = writeln!(out, "            {}", row.detail);
    }
    for row in &report.io_rows {
        let _ = writeln!(
            out,
            "{:28} {:10} {:>19}  {}",
            row.fault.name(),
            "storage",
            format!(
                "detected={} quar={} corrupt={}",
                u8::from(row.detected),
                u8::from(row.quarantined),
                row.corrupt_served
            ),
            if row.ok() { "ok" } else { "FAIL" }
        );
        let _ = writeln!(out, "            {}", row.detail);
    }
    let _ = write!(
        out,
        "{}/{} detected, {} escape(s): {}",
        report.rows.iter().filter(|r| r.detected()).count()
            + report.service_rows.iter().filter(|r| r.detected).count()
            + report.io_rows.iter().filter(|r| r.detected).count(),
        report.rows.len() + report.service_rows.len() + report.io_rows.len(),
        report.escapes(),
        if report.ok() { "OK" } else { "FINDINGS" }
    );
    out
}

/// Writes `doc` to `path` (with a trailing newline) or stdout.
fn write_out(doc: &str, path: Option<&str>) -> u8 {
    match path {
        Some(path) => {
            if let Err(e) = std::fs::write(path, format!("{doc}\n")) {
                eprintln!("cannot write {path}: {e}");
                return 1;
            }
            eprintln!("wrote {path}");
            0
        }
        None => {
            println!("{doc}");
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_fault_class_is_detected_and_repaired_with_zero_escapes() {
        let report = run_chaos(&Fault::ALL);
        assert_eq!(report.rows.len(), Fault::ALL.len());
        for row in &report.rows {
            assert!(
                row.detected(),
                "{} escaped every sentinel: {:?}",
                row.fault.name(),
                row.cases
            );
            assert_eq!(
                row.count(Outcome::Escaped),
                0,
                "{} escaped on some sentinel: {:?}",
                row.fault.name(),
                row.cases
            );
            assert!(row.ok(), "{} row not ok: {:?}", row.fault.name(), row.cases);
        }
        assert!(report.ok());
    }

    #[test]
    fn sanitizer_owned_faults_are_credited_to_the_sanitizer() {
        // These two corruptions are invisible to output comparison on at
        // least one sentinel and exist precisely to exercise checked
        // execution; the detection table must credit the sanitizer.
        for fault in [Fault::OffByOneSlotRewrite, Fault::DropAssignCopy] {
            let report = run_chaos(&[fault]);
            assert_eq!(
                report.rows[0].detected_by(),
                "sanitizer",
                "{}: {:?}",
                fault.name(),
                report.rows[0].cases
            );
        }
    }

    #[test]
    fn healthy_sentinels_are_benign_under_no_fault_purchase() {
        // WrongDevirtTarget has no purchase on `copy` (no sibling
        // selectors), so that cell must classify as benign, not escaped.
        let report = run_chaos(&[Fault::WrongDevirtTarget]);
        let copy = report.rows[0]
            .cases
            .iter()
            .find(|c| c.program == "copy")
            .unwrap();
        assert_eq!(copy.outcome, Outcome::Benign, "{copy:?}");
    }

    #[test]
    fn service_faults_are_all_contained_with_zero_escapes() {
        let rows = run_service_chaos();
        assert_eq!(rows.len(), ServiceFault::ALL.len());
        for row in &rows {
            assert!(
                row.detected,
                "{} not detected: {}",
                row.fault.name(),
                row.detail
            );
            assert!(
                row.neighbors_ok,
                "{} hurt neighbors: {}",
                row.fault.name(),
                row.detail
            );
            assert!(
                row.reconciled,
                "{} did not reconcile: {}",
                row.fault.name(),
                row.detail
            );
            assert!(row.ok(), "{} escaped: {}", row.fault.name(), row.detail);
        }
        let mut report = run_chaos(&[Fault::SkipUseRedirect]);
        report.service_rows = rows;
        let doc = report.to_json();
        assert_eq!(doc.get("escaped").and_then(Json::as_i64), Some(0));
        let service = doc.get("service_faults").unwrap().as_arr().unwrap();
        assert_eq!(service.len(), ServiceFault::ALL.len());
        for key in [
            "fault",
            "detected",
            "neighbors_ok",
            "reconciled",
            "escaped",
            "ok",
            "detail",
            "wall_ms",
        ] {
            assert!(
                service[0].get(key).is_some(),
                "missing service_faults[].{key}"
            );
        }
    }

    #[test]
    fn io_fault_matrix_detects_quarantines_and_serves_zero_corrupt() {
        let rows = run_io_chaos();
        assert_eq!(rows.len(), IoFault::ALL.len());
        for row in &rows {
            assert!(
                row.detected,
                "{} not detected: {}",
                row.fault.name(),
                row.detail
            );
            assert!(
                row.quarantined,
                "{} not quarantined: {}",
                row.fault.name(),
                row.detail
            );
            assert!(
                row.recovered,
                "{} did not reach a serving state: {}",
                row.fault.name(),
                row.detail
            );
            assert_eq!(
                row.corrupt_served,
                0,
                "{} served corrupt artifacts: {}",
                row.fault.name(),
                row.detail
            );
            assert!(row.ok(), "{} escaped: {}", row.fault.name(), row.detail);
        }
        // The io rows slot into the document additively.
        let mut report = run_chaos(&[Fault::SkipUseRedirect]);
        report.io_rows = rows;
        let doc = report.to_json();
        assert!(report.ok());
        assert_eq!(doc.get("escaped").and_then(Json::as_i64), Some(0));
        let io = doc.get("io_faults").unwrap().as_arr().unwrap();
        assert_eq!(io.len(), IoFault::ALL.len());
        for key in [
            "fault",
            "detected",
            "quarantined",
            "recovered",
            "corrupt_served",
            "escaped",
            "ok",
            "detail",
            "wall_ms",
        ] {
            assert!(io[0].get(key).is_some(), "missing io_faults[].{key}");
        }
    }

    #[test]
    fn a_failing_io_row_fails_the_whole_report() {
        let mut report = run_chaos(&[Fault::SkipUseRedirect]);
        assert!(report.ok());
        report.io_rows.push(IoRow {
            fault: IoFault::TornWrite,
            detected: true,
            quarantined: true,
            recovered: true,
            corrupt_served: 1,
            detail: "synthetic corrupt serve".into(),
            wall_ms: 0,
        });
        assert!(!report.ok());
        assert_eq!(report.escapes(), 1);
    }

    #[test]
    fn a_failing_service_row_fails_the_whole_report() {
        let mut report = run_chaos(&[Fault::SkipUseRedirect]);
        assert!(report.ok());
        report.service_rows.push(ServiceRow {
            fault: ServiceFault::MidRequestPanic,
            detected: false,
            neighbors_ok: true,
            reconciled: true,
            detail: "synthetic escape".into(),
            wall_ms: 0,
        });
        assert!(!report.ok());
        assert_eq!(report.escapes(), 1);
    }

    #[test]
    fn json_document_is_schema_stable() {
        let report = run_chaos(&[Fault::SkipUseRedirect]);
        let doc = report.to_json().to_string();
        let parsed = Json::parse(&doc).unwrap();
        assert_eq!(parsed.get("schema").unwrap().as_str(), Some("oi.chaos.v1"));
        for key in [
            "corpus",
            "faults",
            "service_faults",
            "detected",
            "escaped",
            "ok",
        ] {
            assert!(parsed.get(key).is_some(), "missing {key}");
        }
        let rows = parsed.get("faults").unwrap().as_arr().unwrap();
        for key in [
            "fault",
            "detected",
            "detected_by",
            "caught_sanitizer",
            "caught_oracle",
            "benign",
            "escaped",
            "ok",
            "cases",
        ] {
            assert!(rows[0].get(key).is_some(), "missing faults[].{key}");
        }
        let cases = rows[0].get("cases").unwrap().as_arr().unwrap();
        for key in [
            "program",
            "outcome",
            "retracted",
            "restored",
            "first_divergence",
            "wall_ms",
        ] {
            assert!(cases[0].get(key).is_some(), "missing cases[].{key}");
        }
    }
}
