//! End-to-end tests of the `oi-bench` binary: snapshot round-trips,
//! the regression gate's exit codes, and the `oi.bench.v1` /
//! `oi.benchdiff.v1` schema pins.

use oi_support::Json;
use std::path::PathBuf;
use std::process::Command;

fn oi_bench() -> Command {
    Command::new(env!("CARGO_BIN_EXE_oi-bench"))
}

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("oi-bench-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn snapshot_to(name: &str) -> PathBuf {
    let path = temp_path(name);
    let out = oi_bench()
        .args([
            "snapshot",
            "--size",
            "small",
            "--samples",
            "1",
            "--out",
            path.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "snapshot failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    path
}

/// Pins the `oi.bench.v1` schema: key removals or renames here break
/// committed baselines and downstream tooling.
#[test]
fn snapshot_schema_is_stable() {
    let path = snapshot_to("schema.json");
    let doc = Json::parse(&std::fs::read_to_string(&path).unwrap()).expect("valid JSON");
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some("oi.bench.v1")
    );
    assert_eq!(doc.get("size").and_then(Json::as_str), Some("small"));
    assert!(doc.get("samples").and_then(Json::as_i64).unwrap() >= 1);
    assert!(doc.get("cost_model").and_then(Json::as_str).is_some());
    assert!(doc.get("git_rev").and_then(Json::as_str).is_some());
    let rows = doc.get("benchmarks").and_then(Json::as_arr).unwrap();
    assert_eq!(rows.len(), 5, "whole suite snapshotted");
    for row in rows {
        for key in [
            "benchmark",
            "baseline",
            "inlined",
            "speedup",
            "effectiveness",
            "heap_census",
            "analysis_cost",
            "wall_clock_ns",
        ] {
            assert!(row.get(key).is_some(), "row missing {key}");
        }
        let census = row.get("heap_census").unwrap();
        for key in [
            "header_words_eliminated",
            "inline_coverage",
            "inline_locality",
        ] {
            assert!(census.get(key).is_some(), "heap_census missing {key}");
        }
        let cost = row.get("analysis_cost").unwrap();
        assert!(cost
            .get("counters")
            .and_then(|c| c.get("analysis.rounds"))
            .is_some());
        assert!(cost
            .get("phases")
            .and_then(|p| p.get("pipeline.analyze"))
            .is_some());
    }
}

#[test]
fn snapshot_twice_then_self_compare_is_clean() {
    let a = snapshot_to("clean_a.json");
    let b = snapshot_to("clean_b.json");
    let out = oi_bench()
        .args(["compare", a.to_str().unwrap(), b.to_str().unwrap()])
        .output()
        .unwrap();
    let text = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        out.status.code(),
        Some(0),
        "self-compare must be clean:\n{text}{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(text.contains("verdict: ok"), "{text}");
}

/// Bumping a cycle count past the threshold must fail the gate and name
/// both the benchmark and the metric.
#[test]
fn edited_cycle_count_fails_the_gate() {
    let a = snapshot_to("edit_a.json");
    let mut doc = Json::parse(&std::fs::read_to_string(&a).unwrap()).unwrap();

    // Hand-edit: +40% on the first benchmark's inlined cycle count.
    let mut victim = String::new();
    if let Json::Obj(pairs) = &mut doc {
        let rows = pairs.iter_mut().find(|(k, _)| k == "benchmarks").unwrap();
        let Json::Arr(rows) = &mut rows.1 else {
            panic!()
        };
        let Json::Obj(row) = &mut rows[0] else {
            panic!()
        };
        victim = row
            .iter()
            .find(|(k, _)| k == "benchmark")
            .and_then(|(_, v)| v.as_str())
            .unwrap()
            .to_string();
        let inlined = row.iter_mut().find(|(k, _)| k == "inlined").unwrap();
        let Json::Obj(metrics) = &mut inlined.1 else {
            panic!()
        };
        let cycles = metrics.iter_mut().find(|(k, _)| k == "cycles").unwrap();
        let old = cycles.1.as_f64().unwrap();
        cycles.1 = Json::UInt((old * 1.4) as u64);
    }
    let b = temp_path("edit_b.json");
    std::fs::write(&b, doc.to_string()).unwrap();

    let out = oi_bench()
        .args(["compare", a.to_str().unwrap(), b.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "gate must fail on the edit");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains(&victim), "must name the benchmark:\n{text}");
    assert!(
        text.contains("inlined.cycles"),
        "must name the metric:\n{text}"
    );
    assert!(text.contains("REGRESSED"), "{text}");

    // A loose enough threshold waves the same edit through.
    let out = oi_bench()
        .args([
            "compare",
            a.to_str().unwrap(),
            b.to_str().unwrap(),
            "--threshold-pct",
            "50",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0));
}

/// Pins the `oi.benchdiff.v1` schema emitted by `compare --json`.
#[test]
fn compare_json_schema_is_stable() {
    let a = snapshot_to("diff_a.json");
    let out = oi_bench()
        .args([
            "compare",
            "--json",
            a.to_str().unwrap(),
            a.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0));
    let doc = Json::parse(&String::from_utf8_lossy(&out.stdout)).expect("valid JSON");
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some("oi.benchdiff.v1")
    );
    assert_eq!(doc.get("size").and_then(Json::as_str), Some("small"));
    assert_eq!(doc.get("regressed"), Some(&Json::Bool(false)));
    let rows = doc.get("benchmarks").and_then(Json::as_arr).unwrap();
    assert_eq!(rows.len(), 5);
    for row in rows {
        assert_eq!(
            row.get("verdict").and_then(Json::as_str),
            Some("within_noise")
        );
        let metrics = row.get("metrics").and_then(Json::as_arr).unwrap();
        assert!(!metrics.is_empty());
        for m in metrics {
            for key in [
                "metric",
                "old",
                "new",
                "delta_pct",
                "threshold_pct",
                "verdict",
            ] {
                assert!(m.get(key).is_some(), "metric entry missing {key}");
            }
        }
        // Wall-clock lives in the advisory section, never the gate.
        let advisory = row.get("advisory").and_then(Json::as_arr).unwrap();
        assert!(advisory
            .iter()
            .any(|m| m.get("metric").and_then(Json::as_str) == Some("wall_clock_ns.median")));
        assert!(metrics.iter().all(|m| !m
            .get("metric")
            .unwrap()
            .as_str()
            .unwrap()
            .starts_with("wall_clock")));
    }
}

#[test]
fn usage_errors_exit_two() {
    let out = oi_bench().output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("snapshot"), "{err}");
    assert!(err.contains("compare"), "{err}");

    let out = oi_bench().args(["snapshot", "--wat"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown flag `--wat`"));
}

#[test]
fn size_mismatch_is_a_usage_error() {
    let a = snapshot_to("size_a.json");
    let mut doc = Json::parse(&std::fs::read_to_string(&a).unwrap()).unwrap();
    if let Json::Obj(pairs) = &mut doc {
        let size = pairs.iter_mut().find(|(k, _)| k == "size").unwrap();
        size.1 = Json::Str("large".to_string());
    }
    let b = temp_path("size_b.json");
    std::fs::write(&b, doc.to_string()).unwrap();
    let out = oi_bench()
        .args(["compare", a.to_str().unwrap(), b.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("size mismatch"));
}
