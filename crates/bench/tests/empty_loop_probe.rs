//! Regression probe: a ladder-optimized empty `while` loop must stay
//! under fuel metering. The loop body compiles to zero instructions, so
//! if the backward jump itself were not metered the fuel-sliced VM would
//! spin forever and starve every other tenant on the scheduler.

use std::sync::{mpsc, Arc};

#[test]
fn ladder_optimized_empty_loop_yields_under_fuel() {
    let p = oi_ir::lower::compile("fn main() { var c = 0 < 1; while (c) { } }").unwrap();
    // The ladder's differential oracle *executes* the program; against an
    // infinite loop the default 2e9-instruction VM quota turns this test
    // into minutes of spinning. Bound the oracle's VM instead — both
    // oracle runs quota-kill identically, which is all the oracle needs.
    let config = oi_core::LadderConfig {
        firewall: oi_core::FirewallConfig {
            vm: oi_vm::VmConfig {
                max_instructions: 10_000,
                ..Default::default()
            },
            ..Default::default()
        },
        ..Default::default()
    };
    let out = oi_core::ladder::optimize_with_ladder(&p, &config, &oi_support::Budget::unlimited());
    let prog = Arc::new(out.optimized.program);
    let cfg = oi_vm::VmConfig {
        max_instructions: 1000,
        ..Default::default()
    };
    let mut sess = oi_vm::VmSession::new(&prog, &cfg).unwrap();

    // Run one slice on a helper thread so a metering escape shows up as
    // a recv timeout instead of wedging the whole test binary.
    let (tx, rx) = mpsc::channel();
    let p2 = Arc::clone(&prog);
    let worker = std::thread::spawn(move || {
        let _ = tx.send(sess.run_fuel(&p2, 100));
    });
    let outcome = rx
        .recv_timeout(std::time::Duration::from_secs(5))
        .expect("ladder-optimized empty loop escaped fuel metering (slice never returned)");
    worker.join().expect("fuel worker panicked");

    // An infinite loop on a 100-instruction slice must yield — never
    // complete, and never spin past the slice.
    match outcome {
        oi_vm::FuelOutcome::Yielded { fuel_spent } => {
            assert!(
                fuel_spent <= 100,
                "slice overran its fuel budget: spent {fuel_spent}"
            );
            assert!(fuel_spent > 0, "yielded without executing anything");
        }
        other => panic!("expected Yielded from an infinite loop, got {other:?}"),
    }
}
