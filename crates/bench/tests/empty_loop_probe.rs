use std::sync::{mpsc, Arc};
#[test]
fn empty_loop_via_ladder() {
    let p = oi_ir::lower::compile("fn main() { var c = 0 < 1; while (c) { } }").unwrap();
    let out = oi_core::ladder::optimize_with_ladder(&p, &Default::default(), &oi_support::Budget::unlimited());
    let prog = Arc::new(out.optimized.program);
    let m = &prog.methods[prog.entry];
    for (i, b) in m.blocks.iter().enumerate() {
        eprintln!("block {}: {} instrs, term {:?}", i, b.instrs.len(), b.term);
    }
    let cfg = oi_vm::VmConfig { max_instructions: 1000, ..Default::default() };
    let mut sess = oi_vm::VmSession::new(&prog, &cfg).unwrap();
    let (tx, rx) = mpsc::channel();
    let p2 = Arc::clone(&prog);
    std::thread::spawn(move || {
        let r = sess.run_fuel(&p2, 100);
        let _ = tx.send(format!("{r:?}"));
    });
    match rx.recv_timeout(std::time::Duration::from_secs(5)) {
        Ok(s) => eprintln!("outcome: {s}"),
        Err(_) => eprintln!("HANG: ladder-optimized program escaped fuel metering"),
    }
}
