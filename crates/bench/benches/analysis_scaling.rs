//! Scalability of the analysis and the full pipeline with program size
//! (complements Figure 16's sensitivity metric with wall-clock cost).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use oi_analysis::{analyze, AnalysisConfig};
use oi_bench::synth::{generate, SynthParams};
use oi_core::pipeline::{optimize, InlineConfig};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("analysis_scaling");
    group.sample_size(10);
    for pairs in [2usize, 8, 24] {
        let src = generate(SynthParams { class_pairs: pairs, ..Default::default() });
        let program = oi_ir::lower::compile(&src).unwrap();
        group.bench_with_input(BenchmarkId::new("analyze", pairs), &program, |b, p| {
            b.iter(|| analyze(p, &AnalysisConfig::default()));
        });
        group.bench_with_input(BenchmarkId::new("optimize", pairs), &program, |b, p| {
            b.iter(|| optimize(p, &InlineConfig::default()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
