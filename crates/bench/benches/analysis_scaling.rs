//! Scalability of the analysis and the full pipeline with program size
//! (complements Figure 16's sensitivity metric with wall-clock cost).

use oi_analysis::{analyze, AnalysisConfig};
use oi_bench::harness::Group;
use oi_bench::synth::{generate, SynthParams};
use oi_core::pipeline::{try_optimize, InlineConfig};

fn main() {
    let group = Group::new("analysis_scaling").sample_size(10);
    for pairs in [2usize, 8, 24] {
        let src = generate(SynthParams {
            class_pairs: pairs,
            ..Default::default()
        });
        let program = oi_ir::lower::compile(&src).unwrap();
        group.bench(&format!("analyze/{pairs}"), || {
            analyze(&program, &AnalysisConfig::default());
        });
        group.bench(&format!("optimize/{pairs}"), || {
            try_optimize(&program, &InlineConfig::default()).expect("pipeline error");
        });
    }
}
