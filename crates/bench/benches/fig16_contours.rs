//! Times the analysis with and without the object-inlining sensitivity
//! (Figure 16's cost metric is contour counts; this measures the wall-clock
//! cost of the extra sensitivity).

use oi_analysis::{analyze, AnalysisConfig};
use oi_bench::harness::Group;
use oi_benchmarks::{all_benchmarks, BenchSize};

fn main() {
    let group = Group::new("fig16_contours").sample_size(10);
    for b in all_benchmarks(BenchSize::Small) {
        let program = oi_ir::lower::compile(&b.source).unwrap();
        group.bench(&format!("{}/without_tags", b.name), || {
            analyze(&program, &AnalysisConfig::without_tags());
        });
        group.bench(&format!("{}/with_tags", b.name), || {
            analyze(&program, &AnalysisConfig::default());
        });
    }
}
