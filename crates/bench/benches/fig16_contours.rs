//! Times the analysis with and without the object-inlining sensitivity
//! (Figure 16's cost metric is contour counts; this measures the wall-clock
//! cost of the extra sensitivity).

use criterion::{criterion_group, criterion_main, Criterion};
use oi_analysis::{analyze, AnalysisConfig};
use oi_benchmarks::{all_benchmarks, BenchSize};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig16_contours");
    group.sample_size(10);
    for b in all_benchmarks(BenchSize::Small) {
        let program = oi_ir::lower::compile(&b.source).unwrap();
        group.bench_function(format!("{}/without_tags", b.name), |bencher| {
            bencher.iter(|| analyze(&program, &AnalysisConfig::without_tags()));
        });
        group.bench_function(format!("{}/with_tags", b.name), |bencher| {
            bencher.iter(|| analyze(&program, &AnalysisConfig::default()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
