//! Times the simulated execution of each benchmark in baseline and inlined
//! form (Figure 17's underlying measurement).

use oi_bench::harness::Group;
use oi_benchmarks::{all_benchmarks, BenchSize};
use oi_core::pipeline::{baseline, try_optimize, InlineConfig};
use oi_vm::VmConfig;

fn main() {
    let group = Group::new("fig17_performance").sample_size(10);
    for b in all_benchmarks(BenchSize::Small) {
        let program = oi_ir::lower::compile(&b.source).unwrap();
        let base = baseline(&program, &Default::default());
        let opt = try_optimize(&program, &InlineConfig::default())
            .expect("pipeline error")
            .program;
        group.bench(&format!("{}/baseline", b.name), || {
            oi_vm::run(&base, &VmConfig::default()).unwrap();
        });
        group.bench(&format!("{}/inlined", b.name), || {
            oi_vm::run(&opt, &VmConfig::default()).unwrap();
        });
    }
}
