//! Times the simulated execution of each benchmark in baseline and inlined
//! form (Figure 17's underlying measurement).

use criterion::{criterion_group, criterion_main, Criterion};
use oi_benchmarks::{all_benchmarks, BenchSize};
use oi_core::pipeline::{baseline, optimize, InlineConfig};
use oi_vm::VmConfig;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig17_performance");
    group.sample_size(10);
    for b in all_benchmarks(BenchSize::Small) {
        let program = oi_ir::lower::compile(&b.source).unwrap();
        let base = baseline(&program, &Default::default());
        let opt = optimize(&program, &InlineConfig::default()).program;
        group.bench_function(format!("{}/baseline", b.name), |bencher| {
            bencher.iter(|| oi_vm::run(&base, &VmConfig::default()).unwrap());
        });
        group.bench_function(format!("{}/inlined", b.name), |bencher| {
            bencher.iter(|| oi_vm::run(&opt, &VmConfig::default()).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
