//! Ablation: contribution of object-field vs. array-element inlining.

use oi_bench::harness::Group;
use oi_benchmarks::{all_benchmarks, BenchSize};
use oi_core::pipeline::{try_optimize, InlineConfig};
use oi_vm::VmConfig;

fn main() {
    let group = Group::new("ablation_passes").sample_size(10);
    for b in all_benchmarks(BenchSize::Small) {
        let program = oi_ir::lower::compile(&b.source).unwrap();
        let configs = [
            ("full", InlineConfig::default()),
            (
                "fields_only",
                InlineConfig {
                    array_elements: false,
                    ..Default::default()
                },
            ),
            (
                "arrays_only",
                InlineConfig {
                    object_fields: false,
                    ..Default::default()
                },
            ),
        ];
        for (label, config) in configs {
            let opt = try_optimize(&program, &config)
                .expect("pipeline error")
                .program;
            group.bench(&format!("{}/{}", b.name, label), || {
                oi_vm::run(&opt, &VmConfig::default()).unwrap();
            });
        }
    }
}
