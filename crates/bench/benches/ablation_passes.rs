//! Ablation: contribution of object-field vs. array-element inlining.

use criterion::{criterion_group, criterion_main, Criterion};
use oi_benchmarks::{all_benchmarks, BenchSize};
use oi_core::pipeline::{optimize, InlineConfig};
use oi_vm::VmConfig;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_passes");
    group.sample_size(10);
    for b in all_benchmarks(BenchSize::Small) {
        let program = oi_ir::lower::compile(&b.source).unwrap();
        let configs = [
            ("full", InlineConfig::default()),
            ("fields_only", InlineConfig { array_elements: false, ..Default::default() }),
            ("arrays_only", InlineConfig { object_fields: false, ..Default::default() }),
        ];
        for (label, config) in configs {
            let opt = optimize(&program, &config).program;
            group.bench_function(format!("{}/{}", b.name, label), |bencher| {
                bencher.iter(|| oi_vm::run(&opt, &VmConfig::default()).unwrap());
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
