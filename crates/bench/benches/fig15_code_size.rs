//! Measures code size with/without inlining (Figure 15) and times the
//! size model itself.

use criterion::{criterion_group, criterion_main, Criterion};
use oi_benchmarks::{all_benchmarks, BenchSize};
use oi_core::pipeline::{baseline, optimize, InlineConfig};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig15_code_size");
    group.sample_size(10);
    for b in all_benchmarks(BenchSize::Small) {
        let program = oi_ir::lower::compile(&b.source).unwrap();
        let base = baseline(&program, &Default::default());
        let opt = optimize(&program, &InlineConfig::default()).program;
        let without = oi_ir::size::measure(&base).kilobytes();
        let with = oi_ir::size::measure(&opt).kilobytes();
        assert!(with / without < 1.4, "{}: {with:.1}KB vs {without:.1}KB", b.name);
        group.bench_function(b.name, |bencher| {
            bencher.iter(|| oi_ir::size::measure(&opt));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
