//! Measures code size with/without inlining (Figure 15) and times the
//! size model itself.

use oi_bench::harness::Group;
use oi_benchmarks::{all_benchmarks, BenchSize};
use oi_core::pipeline::{baseline, try_optimize, InlineConfig};

fn main() {
    let group = Group::new("fig15_code_size").sample_size(10);
    for b in all_benchmarks(BenchSize::Small) {
        let program = oi_ir::lower::compile(&b.source).unwrap();
        let base = baseline(&program, &Default::default());
        let opt = try_optimize(&program, &InlineConfig::default())
            .expect("pipeline error")
            .program;
        let without = oi_ir::size::measure(&base).kilobytes();
        let with = oi_ir::size::measure(&opt).kilobytes();
        assert!(
            with / without < 1.4,
            "{}: {with:.1}KB vs {without:.1}KB",
            b.name
        );
        group.bench(b.name, || {
            oi_ir::size::measure(&opt);
        });
    }
}
