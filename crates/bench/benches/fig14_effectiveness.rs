//! Times the effectiveness measurement (analysis + decision) per benchmark
//! and checks the Figure 14 counts as a side effect.

use criterion::{criterion_group, criterion_main, Criterion};
use oi_benchmarks::{all_benchmarks, BenchSize};
use oi_core::pipeline::{optimize, InlineConfig};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig14_effectiveness");
    group.sample_size(10);
    for b in all_benchmarks(BenchSize::Small) {
        let program = oi_ir::lower::compile(&b.source).unwrap();
        group.bench_function(b.name, |bencher| {
            bencher.iter(|| {
                let opt = optimize(&program, &InlineConfig::default());
                assert_eq!(
                    opt.report.fields_inlined + opt.report.array_sites_inlined,
                    b.ground_truth.expected_auto
                );
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
