//! Times the effectiveness measurement (analysis + decision) per benchmark
//! and checks the Figure 14 counts as a side effect.

use oi_bench::harness::Group;
use oi_benchmarks::{all_benchmarks, BenchSize};
use oi_core::pipeline::{try_optimize, InlineConfig};

fn main() {
    let group = Group::new("fig14_effectiveness").sample_size(10);
    for b in all_benchmarks(BenchSize::Small) {
        let program = oi_ir::lower::compile(&b.source).unwrap();
        group.bench(b.name, || {
            let opt = try_optimize(&program, &InlineConfig::default()).expect("pipeline error");
            assert_eq!(
                opt.report.fields_inlined + opt.report.array_sites_inlined,
                b.ground_truth.expected_auto
            );
        });
    }
}
