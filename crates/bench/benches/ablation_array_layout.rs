//! Ablation: interleaved vs. parallel inline array layout (§6.3's OOPACK
//! discussion).

use criterion::{criterion_group, criterion_main, Criterion};
use oi_benchmarks::{all_benchmarks, BenchSize};
use oi_core::pipeline::{optimize, InlineConfig};
use oi_ir::ArrayLayoutKind;
use oi_vm::VmConfig;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_array_layout");
    group.sample_size(10);
    for b in all_benchmarks(BenchSize::Small) {
        if b.name != "oopack" {
            continue;
        }
        let program = oi_ir::lower::compile(&b.source).unwrap();
        for (label, kind) in [
            ("interleaved", ArrayLayoutKind::Interleaved),
            ("parallel", ArrayLayoutKind::Parallel),
        ] {
            let opt = optimize(
                &program,
                &InlineConfig { array_layout: kind, ..Default::default() },
            )
            .program;
            group.bench_function(format!("{}/{}", b.name, label), |bencher| {
                bencher.iter(|| oi_vm::run(&opt, &VmConfig::default()).unwrap());
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
