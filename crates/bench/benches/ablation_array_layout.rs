//! Ablation: interleaved vs. parallel inline array layout (§6.3's OOPACK
//! discussion).

use oi_bench::harness::Group;
use oi_benchmarks::{all_benchmarks, BenchSize};
use oi_core::pipeline::{optimize, InlineConfig};
use oi_ir::ArrayLayoutKind;
use oi_vm::VmConfig;

fn main() {
    let group = Group::new("ablation_array_layout").sample_size(10);
    for b in all_benchmarks(BenchSize::Small) {
        if b.name != "oopack" {
            continue;
        }
        let program = oi_ir::lower::compile(&b.source).unwrap();
        for (label, kind) in [
            ("interleaved", ArrayLayoutKind::Interleaved),
            ("parallel", ArrayLayoutKind::Parallel),
        ] {
            let opt = optimize(
                &program,
                &InlineConfig {
                    array_layout: kind,
                    ..Default::default()
                },
            )
            .program;
            group.bench(&format!("{}/{}", b.name, label), || {
                oi_vm::run(&opt, &VmConfig::default()).unwrap();
            });
        }
    }
}
