//! Binary serialization of [`Program`] for the persistent artifact store.
//!
//! The compile service persists optimized programs to disk
//! (`oi_core::cache::store`) so a restart can serve warm artifacts instead
//! of recompiling. This module is the IR half of that: a deterministic,
//! dependency-free binary encoding of every IR structure, built on
//! [`oi_support::codec`].
//!
//! Determinism matters because the on-disk envelope checksums the encoded
//! bytes: the same `Program` value must always produce the same byte
//! string. The only iteration-order hazard is `Class::methods` (a
//! `HashMap`), which is sorted by raw symbol index before encoding.
//!
//! Symbols are encoded as their raw `u32` indices, and the interner as its
//! string table in symbol order; decoding re-interns the strings in order,
//! which reproduces identical symbols (interning is sequential and the
//! table is deduplicated by construction). Table sizes are written in a
//! header before any table so every cross-reference (class, method, field,
//! global, layout, block ids) can be range-checked as it is read.
//!
//! Decoding is panic-free on arbitrary bytes: all reads are bounds-checked
//! by the codec, and a corrupt artifact becomes a [`DecodeError`], never
//! an out-of-bounds index at use time.
//!
//! # Examples
//!
//! ```
//! let program = oi_ir::lower::compile("fn main() { print 2 + 3; }")?;
//! let bytes = oi_ir::serial::encode_program(&program);
//! let back = oi_ir::serial::decode_program(&bytes).unwrap();
//! assert_eq!(oi_ir::printer::print_program(&back), oi_ir::printer::print_program(&program));
//! # Ok::<(), oi_support::Diagnostic>(())
//! ```

use crate::instr::{BinOp, Builtin, ConstValue, Instr, Terminator, UnOp};
use crate::program::{
    ArrayLayoutKind, Block, BlockId, Class, ClassId, Field, FieldId, Global, GlobalId,
    InlineLayout, LayoutId, Method, MethodId, Program, SiteId, Temp,
};
use oi_support::codec::{DecodeError, Reader, Writer};
use oi_support::{Interner, Symbol};
use std::collections::HashMap;

/// Encodes a program to a deterministic byte string.
pub fn encode_program(p: &Program) -> Vec<u8> {
    let mut w = Writer::new();
    // Header: table sizes, so the decoder can range-check forward
    // references (e.g. an instruction naming a global before the global
    // table has been read).
    w.usize(p.interner.len());
    w.usize(p.classes.as_slice().len());
    w.usize(p.methods.as_slice().len());
    w.usize(p.fields.as_slice().len());
    w.usize(p.globals.as_slice().len());
    w.usize(p.layouts.as_slice().len());
    // Interner: string table in symbol order.
    for s in p.interner.strings() {
        w.str(s);
    }
    // Classes.
    for c in p.classes.iter() {
        w.u32(c.name.raw());
        match c.parent {
            Some(id) => {
                w.bool(true);
                w.u32(id.index() as u32);
            }
            None => w.bool(false),
        }
        w.usize(c.own_fields.len());
        for f in &c.own_fields {
            w.u32(f.index() as u32);
        }
        // HashMap: sort by raw symbol so identical values encode identically.
        let mut methods: Vec<(u32, u32)> = c
            .methods
            .iter()
            .map(|(sym, m)| (sym.raw(), m.index() as u32))
            .collect();
        methods.sort_unstable();
        w.usize(methods.len());
        for (sym, m) in methods {
            w.u32(sym);
            w.u32(m);
        }
    }
    // Methods.
    for m in p.methods.iter() {
        w.u32(m.name.raw());
        w.u32(m.class.index() as u32);
        w.u32(m.param_count);
        w.u32(m.temp_count);
        w.usize(m.blocks.as_slice().len());
        for b in m.blocks.iter() {
            w.usize(b.instrs.len());
            for i in &b.instrs {
                encode_instr(&mut w, i);
            }
            encode_terminator(&mut w, &b.term);
        }
    }
    // Fields.
    for f in p.fields.iter() {
        w.u32(f.name.raw());
        w.u32(f.owner.index() as u32);
        w.usize(f.annotations.len());
        for a in &f.annotations {
            w.u32(a.raw());
        }
    }
    // Globals.
    for g in p.globals.iter() {
        w.u32(g.name.raw());
    }
    // Inline layouts.
    for l in p.layouts.iter() {
        w.u32(l.child_class.index() as u32);
        w.usize(l.child_fields.len());
        for s in &l.child_fields {
            w.u32(s.raw());
        }
        w.usize(l.slots.len());
        for s in &l.slots {
            w.usize(*s);
        }
        w.u8(match l.array_kind {
            None => 0,
            Some(ArrayLayoutKind::Interleaved) => 1,
            Some(ArrayLayoutKind::Parallel) => 2,
        });
    }
    w.u32(p.site_count);
    w.u32(p.entry.index() as u32);
    w.into_bytes()
}

/// Decodes a program from bytes produced by [`encode_program`].
///
/// Returns a [`DecodeError`] (never panics) on truncated, malformed, or
/// internally inconsistent input.
pub fn decode_program(bytes: &[u8]) -> Result<Program, DecodeError> {
    let mut r = Reader::new(bytes);
    let d = Decoder::header(&mut r)?;
    let interner = d.interner(&mut r)?;

    let mut classes = Vec::with_capacity(d.n_classes);
    for _ in 0..d.n_classes {
        classes.push(d.class(&mut r)?);
    }
    let mut methods = Vec::with_capacity(d.n_methods);
    for _ in 0..d.n_methods {
        methods.push(d.method(&mut r)?);
    }
    let mut fields = Vec::with_capacity(d.n_fields);
    for _ in 0..d.n_fields {
        fields.push(d.field(&mut r)?);
    }
    let mut globals = Vec::with_capacity(d.n_globals);
    for _ in 0..d.n_globals {
        globals.push(Global {
            name: d.symbol(&mut r)?,
        });
    }
    let mut layouts = Vec::with_capacity(d.n_layouts);
    for _ in 0..d.n_layouts {
        layouts.push(d.layout(&mut r)?);
    }
    let site_count = r.u32()?;
    let entry = d.method_id(&mut r)?;
    if !r.is_done() {
        return Err(err(&r, "trailing bytes after program"));
    }
    Ok(Program {
        interner,
        classes: classes.into_iter().collect(),
        methods: methods.into_iter().collect(),
        fields: fields.into_iter().collect(),
        globals: globals.into_iter().collect(),
        layouts: layouts.into_iter().collect(),
        site_count,
        entry,
    })
}

fn err(r: &Reader<'_>, what: &'static str) -> DecodeError {
    DecodeError {
        at: r.position(),
        what,
    }
}

/// Table sizes from the header; every cross-reference is checked against
/// them as it decodes.
struct Decoder {
    n_symbols: usize,
    n_classes: usize,
    n_methods: usize,
    n_fields: usize,
    n_globals: usize,
    n_layouts: usize,
}

impl Decoder {
    fn header(r: &mut Reader<'_>) -> Result<Decoder, DecodeError> {
        // `seq_len` bounds each count by the remaining input, so a corrupt
        // header cannot demand a multi-gigabyte allocation up front.
        Ok(Decoder {
            n_symbols: r.seq_len()?,
            n_classes: r.seq_len()?,
            n_methods: r.seq_len()?,
            n_fields: r.seq_len()?,
            n_globals: r.seq_len()?,
            n_layouts: r.seq_len()?,
        })
    }

    fn interner(&self, r: &mut Reader<'_>) -> Result<Interner, DecodeError> {
        let mut interner = Interner::new();
        for i in 0..self.n_symbols {
            let s = r.str()?;
            let sym = interner.intern(&s);
            if sym.raw() as usize != i {
                return Err(err(r, "duplicate string in interner table"));
            }
        }
        Ok(interner)
    }

    fn symbol(&self, r: &mut Reader<'_>) -> Result<Symbol, DecodeError> {
        let raw = r.u32()? as usize;
        if raw >= self.n_symbols {
            return Err(err(r, "symbol out of range"));
        }
        // Symbols are re-created by index position; the interner built in
        // `interner()` from the same table assigns exactly these ids.
        Ok(Symbol::from_raw(raw as u32))
    }

    fn idx(r: &mut Reader<'_>, bound: usize, what: &'static str) -> Result<usize, DecodeError> {
        let raw = r.u32()? as usize;
        if raw >= bound {
            return Err(err(r, what));
        }
        Ok(raw)
    }

    fn class_id(&self, r: &mut Reader<'_>) -> Result<ClassId, DecodeError> {
        Self::idx(r, self.n_classes, "class id out of range").map(ClassId::new)
    }

    fn method_id(&self, r: &mut Reader<'_>) -> Result<MethodId, DecodeError> {
        Self::idx(r, self.n_methods, "method id out of range").map(MethodId::new)
    }

    fn field_id(&self, r: &mut Reader<'_>) -> Result<FieldId, DecodeError> {
        Self::idx(r, self.n_fields, "field id out of range").map(FieldId::new)
    }

    fn global_id(&self, r: &mut Reader<'_>) -> Result<GlobalId, DecodeError> {
        Self::idx(r, self.n_globals, "global id out of range").map(GlobalId::new)
    }

    fn layout_id(&self, r: &mut Reader<'_>) -> Result<LayoutId, DecodeError> {
        Self::idx(r, self.n_layouts, "layout id out of range").map(LayoutId::new)
    }

    fn class(&self, r: &mut Reader<'_>) -> Result<Class, DecodeError> {
        let name = self.symbol(r)?;
        let parent = if r.bool()? {
            Some(self.class_id(r)?)
        } else {
            None
        };
        let nf = r.seq_len()?;
        let mut own_fields = Vec::with_capacity(nf);
        for _ in 0..nf {
            own_fields.push(self.field_id(r)?);
        }
        let nm = r.seq_len()?;
        let mut methods = HashMap::with_capacity(nm);
        for _ in 0..nm {
            let sym = self.symbol(r)?;
            methods.insert(sym, self.method_id(r)?);
        }
        Ok(Class {
            name,
            parent,
            own_fields,
            methods,
        })
    }

    fn method(&self, r: &mut Reader<'_>) -> Result<Method, DecodeError> {
        let name = self.symbol(r)?;
        let class = self.class_id(r)?;
        let param_count = r.u32()?;
        let temp_count = r.u32()?;
        let nb = r.seq_len()?;
        let mut blocks = Vec::with_capacity(nb);
        for _ in 0..nb {
            let ni = r.seq_len()?;
            let mut instrs = Vec::with_capacity(ni);
            for _ in 0..ni {
                instrs.push(self.instr(r)?);
            }
            let term = self.terminator(r, nb)?;
            blocks.push(Block { instrs, term });
        }
        Ok(Method {
            name,
            class,
            param_count,
            temp_count,
            blocks: blocks.into_iter().collect(),
        })
    }

    fn field(&self, r: &mut Reader<'_>) -> Result<Field, DecodeError> {
        let name = self.symbol(r)?;
        let owner = self.class_id(r)?;
        let na = r.seq_len()?;
        let mut annotations = Vec::with_capacity(na);
        for _ in 0..na {
            annotations.push(self.symbol(r)?);
        }
        Ok(Field {
            name,
            owner,
            annotations,
        })
    }

    fn layout(&self, r: &mut Reader<'_>) -> Result<InlineLayout, DecodeError> {
        let child_class = self.class_id(r)?;
        let nf = r.seq_len()?;
        let mut child_fields = Vec::with_capacity(nf);
        for _ in 0..nf {
            child_fields.push(self.symbol(r)?);
        }
        let ns = r.seq_len()?;
        let mut slots = Vec::with_capacity(ns);
        for _ in 0..ns {
            slots.push(r.usize()?);
        }
        let array_kind = match r.u8()? {
            0 => None,
            1 => Some(ArrayLayoutKind::Interleaved),
            2 => Some(ArrayLayoutKind::Parallel),
            _ => return Err(err(r, "array layout kind out of range")),
        };
        Ok(InlineLayout {
            child_class,
            child_fields,
            slots,
            array_kind,
        })
    }

    fn temp(&self, r: &mut Reader<'_>) -> Result<Temp, DecodeError> {
        Ok(Temp::new(r.u32()? as usize))
    }

    fn temps(&self, r: &mut Reader<'_>) -> Result<Vec<Temp>, DecodeError> {
        let n = r.seq_len()?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.temp(r)?);
        }
        Ok(out)
    }

    fn site(&self, r: &mut Reader<'_>) -> Result<SiteId, DecodeError> {
        Ok(SiteId::new(r.u32()? as usize))
    }

    fn instr(&self, r: &mut Reader<'_>) -> Result<Instr, DecodeError> {
        Ok(match r.u8()? {
            0 => Instr::Const {
                dst: self.temp(r)?,
                value: self.const_value(r)?,
            },
            1 => Instr::Move {
                dst: self.temp(r)?,
                src: self.temp(r)?,
            },
            2 => Instr::Unary {
                dst: self.temp(r)?,
                op: match r.u8()? {
                    0 => UnOp::Neg,
                    1 => UnOp::Not,
                    _ => return Err(err(r, "unary op out of range")),
                },
                src: self.temp(r)?,
            },
            3 => Instr::Binary {
                dst: self.temp(r)?,
                op: decode_binop(r)?,
                lhs: self.temp(r)?,
                rhs: self.temp(r)?,
            },
            4 => Instr::New {
                dst: self.temp(r)?,
                class: self.class_id(r)?,
                args: self.temps(r)?,
                site: self.site(r)?,
            },
            5 => Instr::NewArray {
                dst: self.temp(r)?,
                len: self.temp(r)?,
                site: self.site(r)?,
            },
            6 => Instr::NewArrayInline {
                dst: self.temp(r)?,
                len: self.temp(r)?,
                layout: self.layout_id(r)?,
                site: self.site(r)?,
            },
            7 => Instr::GetField {
                dst: self.temp(r)?,
                obj: self.temp(r)?,
                field: self.symbol(r)?,
            },
            8 => Instr::SetField {
                obj: self.temp(r)?,
                field: self.symbol(r)?,
                src: self.temp(r)?,
            },
            9 => Instr::ArrayGet {
                dst: self.temp(r)?,
                arr: self.temp(r)?,
                idx: self.temp(r)?,
            },
            10 => Instr::ArraySet {
                arr: self.temp(r)?,
                idx: self.temp(r)?,
                src: self.temp(r)?,
            },
            11 => Instr::GetGlobal {
                dst: self.temp(r)?,
                global: self.global_id(r)?,
            },
            12 => Instr::SetGlobal {
                global: self.global_id(r)?,
                src: self.temp(r)?,
            },
            13 => Instr::Send {
                dst: self.temp(r)?,
                recv: self.temp(r)?,
                selector: self.symbol(r)?,
                args: self.temps(r)?,
            },
            14 => Instr::CallStatic {
                dst: self.temp(r)?,
                method: self.method_id(r)?,
                recv: self.temp(r)?,
                args: self.temps(r)?,
            },
            15 => Instr::CallBuiltin {
                dst: self.temp(r)?,
                builtin: match r.u8()? {
                    0 => Builtin::Sqrt,
                    1 => Builtin::Len,
                    2 => Builtin::ToFloat,
                    3 => Builtin::ToInt,
                    _ => return Err(err(r, "builtin out of range")),
                },
                args: self.temps(r)?,
            },
            16 => Instr::MakeInterior {
                dst: self.temp(r)?,
                obj: self.temp(r)?,
                layout: self.layout_id(r)?,
            },
            17 => Instr::MakeInteriorElem {
                dst: self.temp(r)?,
                arr: self.temp(r)?,
                idx: self.temp(r)?,
                layout: self.layout_id(r)?,
            },
            18 => Instr::Print { src: self.temp(r)? },
            _ => return Err(err(r, "instruction tag out of range")),
        })
    }

    fn const_value(&self, r: &mut Reader<'_>) -> Result<ConstValue, DecodeError> {
        Ok(match r.u8()? {
            0 => ConstValue::Int(r.i64()?),
            1 => ConstValue::Float(r.f64()?),
            2 => ConstValue::Bool(r.bool()?),
            3 => ConstValue::Nil,
            4 => ConstValue::Str(self.symbol(r)?),
            _ => return Err(err(r, "constant tag out of range")),
        })
    }

    fn terminator(&self, r: &mut Reader<'_>, n_blocks: usize) -> Result<Terminator, DecodeError> {
        let block = |r: &mut Reader<'_>| -> Result<BlockId, DecodeError> {
            Self::idx(r, n_blocks, "block id out of range").map(BlockId::new)
        };
        Ok(match r.u8()? {
            0 => Terminator::Jump(block(r)?),
            1 => Terminator::Branch {
                cond: self.temp(r)?,
                then_bb: block(r)?,
                else_bb: block(r)?,
            },
            2 => Terminator::Return(self.temp(r)?),
            3 => Terminator::Unterminated,
            _ => return Err(err(r, "terminator tag out of range")),
        })
    }
}

fn encode_instr(w: &mut Writer, i: &Instr) {
    let temp = |w: &mut Writer, t: Temp| w.u32(t.index() as u32);
    let temps = |w: &mut Writer, ts: &[Temp]| {
        w.usize(ts.len());
        for t in ts {
            w.u32(t.index() as u32);
        }
    };
    match *i {
        Instr::Const { dst, value } => {
            w.u8(0);
            temp(w, dst);
            match value {
                ConstValue::Int(v) => {
                    w.u8(0);
                    w.i64(v);
                }
                ConstValue::Float(v) => {
                    w.u8(1);
                    w.f64(v);
                }
                ConstValue::Bool(v) => {
                    w.u8(2);
                    w.bool(v);
                }
                ConstValue::Nil => w.u8(3),
                ConstValue::Str(s) => {
                    w.u8(4);
                    w.u32(s.raw());
                }
            }
        }
        Instr::Move { dst, src } => {
            w.u8(1);
            temp(w, dst);
            temp(w, src);
        }
        Instr::Unary { dst, op, src } => {
            w.u8(2);
            temp(w, dst);
            w.u8(match op {
                UnOp::Neg => 0,
                UnOp::Not => 1,
            });
            temp(w, src);
        }
        Instr::Binary { dst, op, lhs, rhs } => {
            w.u8(3);
            temp(w, dst);
            w.u8(encode_binop(op));
            temp(w, lhs);
            temp(w, rhs);
        }
        Instr::New {
            dst,
            class,
            ref args,
            site,
        } => {
            w.u8(4);
            temp(w, dst);
            w.u32(class.index() as u32);
            temps(w, args);
            w.u32(site.index() as u32);
        }
        Instr::NewArray { dst, len, site } => {
            w.u8(5);
            temp(w, dst);
            temp(w, len);
            w.u32(site.index() as u32);
        }
        Instr::NewArrayInline {
            dst,
            len,
            layout,
            site,
        } => {
            w.u8(6);
            temp(w, dst);
            temp(w, len);
            w.u32(layout.index() as u32);
            w.u32(site.index() as u32);
        }
        Instr::GetField { dst, obj, field } => {
            w.u8(7);
            temp(w, dst);
            temp(w, obj);
            w.u32(field.raw());
        }
        Instr::SetField { obj, field, src } => {
            w.u8(8);
            temp(w, obj);
            w.u32(field.raw());
            temp(w, src);
        }
        Instr::ArrayGet { dst, arr, idx } => {
            w.u8(9);
            temp(w, dst);
            temp(w, arr);
            temp(w, idx);
        }
        Instr::ArraySet { arr, idx, src } => {
            w.u8(10);
            temp(w, arr);
            temp(w, idx);
            temp(w, src);
        }
        Instr::GetGlobal { dst, global } => {
            w.u8(11);
            temp(w, dst);
            w.u32(global.index() as u32);
        }
        Instr::SetGlobal { global, src } => {
            w.u8(12);
            w.u32(global.index() as u32);
            temp(w, src);
        }
        Instr::Send {
            dst,
            recv,
            selector,
            ref args,
        } => {
            w.u8(13);
            temp(w, dst);
            temp(w, recv);
            w.u32(selector.raw());
            temps(w, args);
        }
        Instr::CallStatic {
            dst,
            method,
            recv,
            ref args,
        } => {
            w.u8(14);
            temp(w, dst);
            w.u32(method.index() as u32);
            temp(w, recv);
            temps(w, args);
        }
        Instr::CallBuiltin {
            dst,
            builtin,
            ref args,
        } => {
            w.u8(15);
            temp(w, dst);
            w.u8(match builtin {
                Builtin::Sqrt => 0,
                Builtin::Len => 1,
                Builtin::ToFloat => 2,
                Builtin::ToInt => 3,
            });
            temps(w, args);
        }
        Instr::MakeInterior { dst, obj, layout } => {
            w.u8(16);
            temp(w, dst);
            temp(w, obj);
            w.u32(layout.index() as u32);
        }
        Instr::MakeInteriorElem {
            dst,
            arr,
            idx,
            layout,
        } => {
            w.u8(17);
            temp(w, dst);
            temp(w, arr);
            temp(w, idx);
            w.u32(layout.index() as u32);
        }
        Instr::Print { src } => {
            w.u8(18);
            temp(w, src);
        }
    }
}

fn encode_terminator(w: &mut Writer, t: &Terminator) {
    match *t {
        Terminator::Jump(bb) => {
            w.u8(0);
            w.u32(bb.index() as u32);
        }
        Terminator::Branch {
            cond,
            then_bb,
            else_bb,
        } => {
            w.u8(1);
            w.u32(cond.index() as u32);
            w.u32(then_bb.index() as u32);
            w.u32(else_bb.index() as u32);
        }
        Terminator::Return(t) => {
            w.u8(2);
            w.u32(t.index() as u32);
        }
        Terminator::Unterminated => w.u8(3),
    }
}

fn encode_binop(op: BinOp) -> u8 {
    match op {
        BinOp::Add => 0,
        BinOp::Sub => 1,
        BinOp::Mul => 2,
        BinOp::Div => 3,
        BinOp::Rem => 4,
        BinOp::Eq => 5,
        BinOp::Ne => 6,
        BinOp::RefEq => 7,
        BinOp::Lt => 8,
        BinOp::Le => 9,
        BinOp::Gt => 10,
        BinOp::Ge => 11,
    }
}

fn decode_binop(r: &mut Reader<'_>) -> Result<BinOp, DecodeError> {
    Ok(match r.u8()? {
        0 => BinOp::Add,
        1 => BinOp::Sub,
        2 => BinOp::Mul,
        3 => BinOp::Div,
        4 => BinOp::Rem,
        5 => BinOp::Eq,
        6 => BinOp::Ne,
        7 => BinOp::RefEq,
        8 => BinOp::Lt,
        9 => BinOp::Le,
        10 => BinOp::Gt,
        11 => BinOp::Ge,
        _ => {
            return Err(DecodeError {
                at: r.position(),
                what: "binary op out of range",
            })
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SOURCE: &str = "class Point { field x; field y;
           method init(a, b) { self.x = a; self.y = b; }
           method sum() { return self.x + self.y; }
         }
         class Rect { field ll @inline_cxx; field ur;
           method init(a, b) { self.ll = a; self.ur = b; }
         }
         fn main() {
           var r = new Rect(new Point(1.0, 2.0), new Point(3.0, 4.0));
           print r.ll.x + r.ur.y;
         }";

    fn lowered_program() -> Program {
        crate::lower::compile(SOURCE).unwrap()
    }

    #[test]
    fn lowered_program_round_trips_exactly() {
        let p = lowered_program();
        let bytes = encode_program(&p);
        let back = decode_program(&bytes).unwrap();
        assert_eq!(
            crate::printer::print_program(&back),
            crate::printer::print_program(&p)
        );
        assert_eq!(back.site_count, p.site_count);
        assert_eq!(back.entry, p.entry);
        assert_eq!(back.interner.len(), p.interner.len());
        crate::verify::verify(&back).expect("decoded program is well-formed");
    }

    #[test]
    fn encoding_is_deterministic_across_clones() {
        // Class::methods is a HashMap; the sort on encode must make byte
        // strings identical even when map iteration order differs.
        let p = lowered_program();
        let a = encode_program(&p);
        let b = encode_program(&p.clone());
        assert_eq!(a, b);
    }

    #[test]
    fn symbols_survive_the_round_trip_by_index() {
        let p = lowered_program();
        let back = decode_program(&encode_program(&p)).unwrap();
        for (a, b) in p.interner.strings().zip(back.interner.strings()) {
            assert_eq!(a, b);
        }
        for (ca, cb) in p.classes.iter().zip(back.classes.iter()) {
            assert_eq!(ca.name, cb.name);
            assert_eq!(ca.methods.len(), cb.methods.len());
        }
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let p = lowered_program();
        let bytes = encode_program(&p);
        for cut in 0..bytes.len() {
            assert!(
                decode_program(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes must not decode"
            );
        }
    }

    #[test]
    fn bit_flips_never_panic_the_decoder() {
        let p = lowered_program();
        let bytes = encode_program(&p);
        for i in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0x40;
            let _ = decode_program(&corrupt); // must not panic; may error
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let p = lowered_program();
        let mut bytes = encode_program(&p);
        bytes.push(0);
        assert!(decode_program(&bytes).is_err());
    }
}
