//! Lowering from the Izzy AST to IR.
//!
//! Performs name resolution (classes, fields, locals, globals, free
//! functions, builtins), allocates program-unique allocation sites for `new`
//! expressions, and translates structured control flow to basic blocks.

use crate::builder::FunctionBuilder;
use crate::instr::{BinOp, Builtin, ConstValue, Instr, Terminator, UnOp};
use crate::program::{
    Block as IrBlock, Class, ClassId, Field, Global, GlobalId, Method, MethodId, Program, Temp,
};
use oi_lang::ast;
use oi_support::{Diagnostic, IdxVec, Interner, Span, Symbol};
use std::collections::HashMap;

/// Lowers a parsed program to IR.
///
/// # Errors
///
/// Returns a [`Diagnostic`] for resolution errors: duplicate or unknown
/// classes, inheritance cycles, duplicate fields/methods, unknown variables,
/// missing `main`, or arity mismatches detectable statically.
///
/// # Examples
///
/// ```
/// let ast = oi_lang::parse("fn main() { var x = 1; print x + 1; }")?;
/// let program = oi_ir::lower::lower_program(&ast)?;
/// assert_eq!(program.methods[program.entry].param_count, 0);
/// # Ok::<(), oi_support::Diagnostic>(())
/// ```
pub fn lower_program(ast: &ast::Program) -> Result<Program, Diagnostic> {
    Lowerer::new().run(ast)
}

/// Parses and lowers in one step.
///
/// # Errors
///
/// Propagates parse and lowering diagnostics.
pub fn compile(source: &str) -> Result<Program, Diagnostic> {
    let ast = oi_lang::parse(source)?;
    lower_program(&ast)
}

struct Lowerer {
    interner: Interner,
    classes: IdxVec<ClassId, Class>,
    class_names: HashMap<Symbol, ClassId>,
    fields: IdxVec<crate::program::FieldId, Field>,
    globals: IdxVec<GlobalId, Global>,
    global_names: HashMap<Symbol, GlobalId>,
    methods: IdxVec<MethodId, Method>,
    /// Free-function name → method id (methods of `$Main`).
    free_fns: HashMap<Symbol, MethodId>,
    site_count: u32,
}

impl Lowerer {
    fn new() -> Self {
        let mut interner = Interner::new();
        let main_name = interner.intern("$Main");
        // Reserved sentinel used by assignment specialization to denote
        // array-element stores (never a real field name).
        interner.intern("$elem");
        let mut classes = IdxVec::new();
        classes.push(Class {
            name: main_name,
            parent: None,
            own_fields: vec![],
            methods: HashMap::new(),
        });
        Self {
            interner,
            classes,
            class_names: HashMap::new(),
            fields: IdxVec::new(),
            globals: IdxVec::new(),
            global_names: HashMap::new(),
            methods: IdxVec::new(),
            free_fns: HashMap::new(),
            site_count: 0,
        }
    }

    fn run(mut self, ast: &ast::Program) -> Result<Program, Diagnostic> {
        self.declare_classes(ast)?;
        self.declare_globals(ast)?;
        let method_plan = self.declare_methods(ast)?;

        // Lower bodies.
        for (mid, body) in method_plan {
            let lowered = self.lower_body(mid, body)?;
            self.methods[mid] = lowered;
        }

        let main_sym = self.interner.intern("main");
        let entry = *self
            .free_fns
            .get(&main_sym)
            .ok_or_else(|| Diagnostic::error("program has no `fn main`", Span::dummy()))?;
        if self.methods[entry].param_count != 0 {
            return Err(Diagnostic::error(
                "`fn main` must take no parameters",
                Span::dummy(),
            ));
        }

        Ok(Program {
            interner: self.interner,
            classes: self.classes,
            methods: self.methods,
            fields: self.fields,
            globals: self.globals,
            layouts: IdxVec::new(),
            site_count: self.site_count,
            entry,
        })
    }

    fn declare_classes(&mut self, ast: &ast::Program) -> Result<(), Diagnostic> {
        // First pass: ids for every class.
        for class in &ast.classes {
            let name = self.interner.intern(&class.name);
            if self.class_names.contains_key(&name) || class.name == "$Main" {
                return Err(Diagnostic::error(
                    format!("duplicate class `{}`", class.name),
                    class.span,
                ));
            }
            let id = self.classes.push(Class {
                name,
                parent: None,
                own_fields: vec![],
                methods: HashMap::new(),
            });
            self.class_names.insert(name, id);
        }
        // Second pass: parents and fields.
        for class in &ast.classes {
            let name = self.interner.intern(&class.name);
            let id = self.class_names[&name];
            if let Some(parent) = &class.parent {
                let psym = self.interner.intern(parent);
                let pid = *self.class_names.get(&psym).ok_or_else(|| {
                    Diagnostic::error(format!("unknown superclass `{parent}`"), class.span)
                })?;
                self.classes[id].parent = Some(pid);
            }
            for field in &class.fields {
                let fname = self.interner.intern(&field.name);
                let annotations = field
                    .annotations
                    .iter()
                    .map(|a| self.interner.intern(a))
                    .collect();
                let fid = self.fields.push(Field {
                    name: fname,
                    owner: id,
                    annotations,
                });
                if self.classes[id]
                    .own_fields
                    .iter()
                    .any(|&f| self.fields[f].name == fname)
                {
                    return Err(Diagnostic::error(
                        format!("duplicate field `{}` in class `{}`", field.name, class.name),
                        field.span,
                    ));
                }
                self.classes[id].own_fields.push(fid);
            }
        }
        // Cycle check.
        for id in self.classes.ids() {
            let mut slow = Some(id);
            let mut fast = self.classes[id].parent;
            while let Some(f) = fast {
                if Some(f) == slow {
                    return Err(Diagnostic::error(
                        format!(
                            "inheritance cycle involving class `{}`",
                            self.interner.resolve(self.classes[id].name)
                        ),
                        Span::dummy(),
                    ));
                }
                slow = self.classes[slow.unwrap()].parent;
                fast = self.classes[f].parent.and_then(|n| self.classes[n].parent);
            }
        }
        // Duplicate field names along the hierarchy (fields must be unique
        // per chain so by-name access is unambiguous).
        for id in self.classes.ids() {
            let mut seen: HashMap<Symbol, ClassId> = HashMap::new();
            let mut cur = Some(id);
            while let Some(c) = cur {
                for &f in &self.classes[c].own_fields {
                    let fname = self.fields[f].name;
                    if let Some(&other) = seen.get(&fname) {
                        if other != c {
                            return Err(Diagnostic::error(
                                format!(
                                    "field `{}` declared in both `{}` and its superclass `{}`",
                                    self.interner.resolve(fname),
                                    self.interner.resolve(self.classes[other].name),
                                    self.interner.resolve(self.classes[c].name),
                                ),
                                Span::dummy(),
                            ));
                        }
                    }
                    seen.insert(fname, c);
                }
                cur = self.classes[c].parent;
            }
        }
        Ok(())
    }

    fn declare_globals(&mut self, ast: &ast::Program) -> Result<(), Diagnostic> {
        for g in &ast.globals {
            let name = self.interner.intern(&g.name);
            if self.global_names.contains_key(&name) {
                return Err(Diagnostic::error(
                    format!("duplicate global `{}`", g.name),
                    g.span,
                ));
            }
            let id = self.globals.push(Global { name });
            self.global_names.insert(name, id);
        }
        Ok(())
    }

    /// Creates placeholder [`Method`]s for every declaration and returns the
    /// bodies to lower once all signatures are known.
    fn declare_methods<'a>(
        &mut self,
        ast: &'a ast::Program,
    ) -> Result<Vec<(MethodId, BodyRef<'a>)>, Diagnostic> {
        let mut plan = Vec::new();
        for class in &ast.classes {
            let cname = self.interner.intern(&class.name);
            let cid = self.class_names[&cname];
            for m in &class.methods {
                let mname = self.interner.intern(&m.name);
                if self.classes[cid].methods.contains_key(&mname) {
                    return Err(Diagnostic::error(
                        format!("duplicate method `{}` in class `{}`", m.name, class.name),
                        m.span,
                    ));
                }
                let mid = self
                    .methods
                    .push(placeholder_method(mname, cid, m.params.len() as u32));
                self.classes[cid].methods.insert(mname, mid);
                plan.push((
                    mid,
                    BodyRef {
                        params: &m.params,
                        body: &m.body,
                        span: m.span,
                    },
                ));
            }
        }
        let main_class = ClassId::new(0);
        for f in &ast.functions {
            let fname = self.interner.intern(&f.name);
            if self.free_fns.contains_key(&fname) {
                return Err(Diagnostic::error(
                    format!("duplicate function `{}`", f.name),
                    f.span,
                ));
            }
            if Builtin::by_name(&f.name).is_some() {
                return Err(Diagnostic::error(
                    format!("function `{}` shadows a builtin", f.name),
                    f.span,
                ));
            }
            let mid =
                self.methods
                    .push(placeholder_method(fname, main_class, f.params.len() as u32));
            self.free_fns.insert(fname, mid);
            self.classes[main_class].methods.insert(fname, mid);
            plan.push((
                mid,
                BodyRef {
                    params: &f.params,
                    body: &f.body,
                    span: f.span,
                },
            ));
        }
        Ok(plan)
    }

    fn lower_body(&mut self, mid: MethodId, body: BodyRef<'_>) -> Result<Method, Diagnostic> {
        let sig = &self.methods[mid];
        let mut ctx = BodyCtx {
            builder: FunctionBuilder::new(sig.name, sig.class, sig.param_count),
            scopes: vec![HashMap::new()],
            in_class: sig.class,
        };
        for (i, p) in body.params.iter().enumerate() {
            let sym = self.interner.intern(p);
            let t = ctx.builder.param_temp(i as u32);
            if ctx.scopes[0].insert(sym, t).is_some() {
                return Err(Diagnostic::error(
                    format!("duplicate parameter `{p}`"),
                    body.span,
                ));
            }
        }
        self.lower_block(&mut ctx, body.body)?;
        Ok(ctx.builder.finish())
    }

    fn lower_block(&mut self, ctx: &mut BodyCtx, block: &ast::Block) -> Result<(), Diagnostic> {
        ctx.scopes.push(HashMap::new());
        for stmt in &block.stmts {
            self.lower_stmt(ctx, stmt)?;
        }
        ctx.scopes.pop();
        Ok(())
    }

    fn lower_stmt(&mut self, ctx: &mut BodyCtx, stmt: &ast::Stmt) -> Result<(), Diagnostic> {
        match stmt {
            ast::Stmt::Var { name, init, span } => {
                let value = self.lower_expr(ctx, init)?;
                let sym = self.interner.intern(name);
                let scope = ctx.scopes.last_mut().expect("scope stack nonempty");
                if scope.contains_key(&sym) {
                    return Err(Diagnostic::error(
                        format!("variable `{name}` already declared in this scope"),
                        *span,
                    ));
                }
                let slot = ctx.builder.new_temp();
                ctx.builder.push(Instr::Move {
                    dst: slot,
                    src: value,
                });
                ctx.scopes.last_mut().unwrap().insert(sym, slot);
            }
            ast::Stmt::Assign {
                target,
                value,
                span,
            } => {
                self.lower_assign(ctx, target, value, *span)?;
            }
            ast::Stmt::Expr(e) => {
                self.lower_expr(ctx, e)?;
            }
            ast::Stmt::If {
                cond,
                then_block,
                else_block,
                ..
            } => {
                let c = self.lower_expr(ctx, cond)?;
                let then_bb = ctx.builder.new_block();
                let else_bb = ctx.builder.new_block();
                let join_bb = ctx.builder.new_block();
                ctx.builder.terminate(Terminator::Branch {
                    cond: c,
                    then_bb,
                    else_bb,
                });
                ctx.builder.switch_to(then_bb);
                self.lower_block(ctx, then_block)?;
                ctx.builder.terminate(Terminator::Jump(join_bb));
                ctx.builder.switch_to(else_bb);
                if let Some(else_block) = else_block {
                    self.lower_block(ctx, else_block)?;
                }
                ctx.builder.terminate(Terminator::Jump(join_bb));
                ctx.builder.switch_to(join_bb);
            }
            ast::Stmt::While { cond, body, .. } => {
                let head_bb = ctx.builder.new_block();
                let body_bb = ctx.builder.new_block();
                let exit_bb = ctx.builder.new_block();
                ctx.builder.terminate(Terminator::Jump(head_bb));
                ctx.builder.switch_to(head_bb);
                let c = self.lower_expr(ctx, cond)?;
                ctx.builder.terminate(Terminator::Branch {
                    cond: c,
                    then_bb: body_bb,
                    else_bb: exit_bb,
                });
                ctx.builder.switch_to(body_bb);
                self.lower_block(ctx, body)?;
                ctx.builder.terminate(Terminator::Jump(head_bb));
                ctx.builder.switch_to(exit_bb);
            }
            ast::Stmt::Return { value, .. } => {
                let t = match value {
                    Some(e) => self.lower_expr(ctx, e)?,
                    None => ctx.builder.push_const(ConstValue::Nil),
                };
                ctx.builder.terminate(Terminator::Return(t));
            }
            ast::Stmt::Print { value, .. } => {
                let t = self.lower_expr(ctx, value)?;
                ctx.builder.push(Instr::Print { src: t });
            }
        }
        Ok(())
    }

    fn lower_assign(
        &mut self,
        ctx: &mut BodyCtx,
        target: &ast::Expr,
        value: &ast::Expr,
        span: Span,
    ) -> Result<(), Diagnostic> {
        match &target.kind {
            ast::ExprKind::Var(name) => {
                let sym = self.interner.intern(name);
                if let Some(slot) = ctx.lookup(sym) {
                    let v = self.lower_expr(ctx, value)?;
                    ctx.builder.push(Instr::Move { dst: slot, src: v });
                } else if let Some(&g) = self.global_names.get(&sym) {
                    let v = self.lower_expr(ctx, value)?;
                    ctx.builder.push(Instr::SetGlobal { global: g, src: v });
                } else {
                    return Err(Diagnostic::error(
                        format!("assignment to undeclared variable `{name}`"),
                        span,
                    ));
                }
            }
            ast::ExprKind::Field { obj, field } => {
                let o = self.lower_expr(ctx, obj)?;
                let v = self.lower_expr(ctx, value)?;
                let f = self.interner.intern(field);
                ctx.builder.push(Instr::SetField {
                    obj: o,
                    field: f,
                    src: v,
                });
            }
            ast::ExprKind::Index { arr, index } => {
                let a = self.lower_expr(ctx, arr)?;
                let i = self.lower_expr(ctx, index)?;
                let v = self.lower_expr(ctx, value)?;
                ctx.builder.push(Instr::ArraySet {
                    arr: a,
                    idx: i,
                    src: v,
                });
            }
            _ => {
                return Err(Diagnostic::error("invalid assignment target", target.span));
            }
        }
        Ok(())
    }

    fn lower_expr(&mut self, ctx: &mut BodyCtx, e: &ast::Expr) -> Result<Temp, Diagnostic> {
        match &e.kind {
            ast::ExprKind::Int(n) => Ok(ctx.builder.push_const(ConstValue::Int(*n))),
            ast::ExprKind::Float(x) => Ok(ctx.builder.push_const(ConstValue::Float(*x))),
            ast::ExprKind::Bool(b) => Ok(ctx.builder.push_const(ConstValue::Bool(*b))),
            ast::ExprKind::Nil => Ok(ctx.builder.push_const(ConstValue::Nil)),
            ast::ExprKind::Str(s) => {
                let sym = self.interner.intern(s);
                Ok(ctx.builder.push_const(ConstValue::Str(sym)))
            }
            ast::ExprKind::SelfRef => {
                if ctx.in_class == ClassId::new(0) {
                    return Err(Diagnostic::error("`self` used outside a method", e.span));
                }
                Ok(ctx.builder.self_temp())
            }
            ast::ExprKind::Var(name) => {
                let sym = self.interner.intern(name);
                if let Some(t) = ctx.lookup(sym) {
                    Ok(t)
                } else if let Some(&g) = self.global_names.get(&sym) {
                    let dst = ctx.builder.new_temp();
                    ctx.builder.push(Instr::GetGlobal { dst, global: g });
                    Ok(dst)
                } else {
                    Err(Diagnostic::error(
                        format!("unknown variable `{name}`"),
                        e.span,
                    ))
                }
            }
            ast::ExprKind::Field { obj, field } => {
                let o = self.lower_expr(ctx, obj)?;
                let f = self.interner.intern(field);
                let dst = ctx.builder.new_temp();
                ctx.builder.push(Instr::GetField {
                    dst,
                    obj: o,
                    field: f,
                });
                Ok(dst)
            }
            ast::ExprKind::Index { arr, index } => {
                let a = self.lower_expr(ctx, arr)?;
                let i = self.lower_expr(ctx, index)?;
                let dst = ctx.builder.new_temp();
                ctx.builder.push(Instr::ArrayGet {
                    dst,
                    arr: a,
                    idx: i,
                });
                Ok(dst)
            }
            ast::ExprKind::New { class, args } => {
                let csym = self.interner.intern(class);
                let cid = *self
                    .class_names
                    .get(&csym)
                    .ok_or_else(|| Diagnostic::error(format!("unknown class `{class}`"), e.span))?;
                let init_sym = self.interner.intern("init");
                let init = self.lookup_method_early(cid, init_sym);
                match init {
                    Some(m) if self.methods[m].param_count as usize != args.len() => {
                        return Err(Diagnostic::error(
                            format!(
                                "class `{class}` constructor takes {} arguments, got {}",
                                self.methods[m].param_count,
                                args.len()
                            ),
                            e.span,
                        ));
                    }
                    None if !args.is_empty() => {
                        return Err(Diagnostic::error(
                            format!("class `{class}` has no `init` but arguments were given"),
                            e.span,
                        ));
                    }
                    _ => {}
                }
                let arg_temps = self.lower_args(ctx, args)?;
                let dst = ctx.builder.new_temp();
                let site = crate::program::SiteId::new(self.site_count as usize);
                self.site_count += 1;
                ctx.builder.push(Instr::New {
                    dst,
                    class: cid,
                    args: arg_temps,
                    site,
                });
                Ok(dst)
            }
            ast::ExprKind::NewArray { len } => {
                let l = self.lower_expr(ctx, len)?;
                let dst = ctx.builder.new_temp();
                let site = crate::program::SiteId::new(self.site_count as usize);
                self.site_count += 1;
                ctx.builder.push(Instr::NewArray { dst, len: l, site });
                Ok(dst)
            }
            ast::ExprKind::ArrayLit(elems) => {
                let n = ctx.builder.push_const(ConstValue::Int(elems.len() as i64));
                let dst = ctx.builder.new_temp();
                let site = crate::program::SiteId::new(self.site_count as usize);
                self.site_count += 1;
                ctx.builder.push(Instr::NewArray { dst, len: n, site });
                for (i, elem) in elems.iter().enumerate() {
                    let v = self.lower_expr(ctx, elem)?;
                    let idx = ctx.builder.push_const(ConstValue::Int(i as i64));
                    ctx.builder.push(Instr::ArraySet {
                        arr: dst,
                        idx,
                        src: v,
                    });
                }
                Ok(dst)
            }
            ast::ExprKind::Call {
                recv: Some(recv),
                name,
                args,
            } => {
                let r = self.lower_expr(ctx, recv)?;
                let arg_temps = self.lower_args(ctx, args)?;
                let sel = self.interner.intern(name);
                let dst = ctx.builder.new_temp();
                ctx.builder.push(Instr::Send {
                    dst,
                    recv: r,
                    selector: sel,
                    args: arg_temps,
                });
                Ok(dst)
            }
            ast::ExprKind::Call {
                recv: None,
                name,
                args,
            } => {
                if let Some(builtin) = Builtin::by_name(name) {
                    if args.len() != builtin.arity() {
                        return Err(Diagnostic::error(
                            format!("builtin `{name}` takes {} argument(s)", builtin.arity()),
                            e.span,
                        ));
                    }
                    let arg_temps = self.lower_args(ctx, args)?;
                    let dst = ctx.builder.new_temp();
                    ctx.builder.push(Instr::CallBuiltin {
                        dst,
                        builtin,
                        args: arg_temps,
                    });
                    return Ok(dst);
                }
                let sym = self.interner.intern(name);
                // A free call inside a class method may also target a method
                // of the enclosing class (implicit self), like `area(ur)`.
                if ctx.in_class != ClassId::new(0)
                    && self.lookup_method_early(ctx.in_class, sym).is_some()
                {
                    let arg_temps = self.lower_args(ctx, args)?;
                    let dst = ctx.builder.new_temp();
                    ctx.builder.push(Instr::Send {
                        dst,
                        recv: ctx.builder.self_temp(),
                        selector: sym,
                        args: arg_temps,
                    });
                    return Ok(dst);
                }
                let mid = *self.free_fns.get(&sym).ok_or_else(|| {
                    Diagnostic::error(format!("unknown function `{name}`"), e.span)
                })?;
                if self.methods[mid].param_count as usize != args.len() {
                    return Err(Diagnostic::error(
                        format!(
                            "function `{name}` takes {} arguments, got {}",
                            self.methods[mid].param_count,
                            args.len()
                        ),
                        e.span,
                    ));
                }
                let arg_temps = self.lower_args(ctx, args)?;
                let nil = ctx.builder.push_const(ConstValue::Nil);
                let dst = ctx.builder.new_temp();
                ctx.builder.push(Instr::CallStatic {
                    dst,
                    method: mid,
                    recv: nil,
                    args: arg_temps,
                });
                Ok(dst)
            }
            ast::ExprKind::Unary { op, operand } => {
                let s = self.lower_expr(ctx, operand)?;
                let dst = ctx.builder.new_temp();
                let op = match op {
                    ast::UnOp::Neg => UnOp::Neg,
                    ast::UnOp::Not => UnOp::Not,
                };
                ctx.builder.push(Instr::Unary { dst, op, src: s });
                Ok(dst)
            }
            ast::ExprKind::Binary {
                op: ast::BinOp::And,
                lhs,
                rhs,
            } => self.lower_short_circuit(ctx, lhs, rhs, true),
            ast::ExprKind::Binary {
                op: ast::BinOp::Or,
                lhs,
                rhs,
            } => self.lower_short_circuit(ctx, lhs, rhs, false),
            ast::ExprKind::Binary { op, lhs, rhs } => {
                let l = self.lower_expr(ctx, lhs)?;
                let r = self.lower_expr(ctx, rhs)?;
                let dst = ctx.builder.new_temp();
                let op = match op {
                    ast::BinOp::Add => BinOp::Add,
                    ast::BinOp::Sub => BinOp::Sub,
                    ast::BinOp::Mul => BinOp::Mul,
                    ast::BinOp::Div => BinOp::Div,
                    ast::BinOp::Rem => BinOp::Rem,
                    ast::BinOp::Eq => BinOp::Eq,
                    ast::BinOp::Ne => BinOp::Ne,
                    ast::BinOp::RefEq => BinOp::RefEq,
                    ast::BinOp::Lt => BinOp::Lt,
                    ast::BinOp::Le => BinOp::Le,
                    ast::BinOp::Gt => BinOp::Gt,
                    ast::BinOp::Ge => BinOp::Ge,
                    ast::BinOp::And | ast::BinOp::Or => unreachable!("handled above"),
                };
                ctx.builder.push(Instr::Binary {
                    dst,
                    op,
                    lhs: l,
                    rhs: r,
                });
                Ok(dst)
            }
        }
    }

    /// Lowers `lhs && rhs` / `lhs || rhs` with short-circuit control flow.
    fn lower_short_circuit(
        &mut self,
        ctx: &mut BodyCtx,
        lhs: &ast::Expr,
        rhs: &ast::Expr,
        is_and: bool,
    ) -> Result<Temp, Diagnostic> {
        let result = ctx.builder.new_temp();
        let l = self.lower_expr(ctx, lhs)?;
        ctx.builder.push(Instr::Move {
            dst: result,
            src: l,
        });
        let rhs_bb = ctx.builder.new_block();
        let join_bb = ctx.builder.new_block();
        let (then_bb, else_bb) = if is_and {
            (rhs_bb, join_bb)
        } else {
            (join_bb, rhs_bb)
        };
        ctx.builder.terminate(Terminator::Branch {
            cond: l,
            then_bb,
            else_bb,
        });
        ctx.builder.switch_to(rhs_bb);
        let r = self.lower_expr(ctx, rhs)?;
        ctx.builder.push(Instr::Move {
            dst: result,
            src: r,
        });
        ctx.builder.terminate(Terminator::Jump(join_bb));
        ctx.builder.switch_to(join_bb);
        Ok(result)
    }

    fn lower_args(
        &mut self,
        ctx: &mut BodyCtx,
        args: &[ast::Expr],
    ) -> Result<Vec<Temp>, Diagnostic> {
        args.iter().map(|a| self.lower_expr(ctx, a)).collect()
    }

    /// Method lookup that works while signatures are being declared.
    fn lookup_method_early(&self, class: ClassId, selector: Symbol) -> Option<MethodId> {
        let mut cur = Some(class);
        while let Some(c) = cur {
            if let Some(&m) = self.classes[c].methods.get(&selector) {
                return Some(m);
            }
            cur = self.classes[c].parent;
        }
        None
    }
}

struct BodyRef<'a> {
    params: &'a [String],
    body: &'a ast::Block,
    span: Span,
}

struct BodyCtx {
    builder: FunctionBuilder,
    scopes: Vec<HashMap<Symbol, Temp>>,
    in_class: ClassId,
}

impl BodyCtx {
    fn lookup(&self, sym: Symbol) -> Option<Temp> {
        self.scopes.iter().rev().find_map(|s| s.get(&sym).copied())
    }
}

fn placeholder_method(name: Symbol, class: ClassId, param_count: u32) -> Method {
    Method {
        name,
        class,
        param_count,
        temp_count: param_count + 1,
        blocks: std::iter::once(IrBlock::default()).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lower_ok(src: &str) -> Program {
        match compile(src) {
            Ok(p) => p,
            Err(e) => panic!("lowering failed: {}", e.render(src)),
        }
    }

    #[test]
    fn lowers_minimal_main() {
        let p = lower_ok("fn main() { print 1; }");
        assert_eq!(p.methods[p.entry].param_count, 0);
        assert!(p.methods[p.entry].instr_count() >= 2);
    }

    #[test]
    fn missing_main_is_error() {
        assert!(compile("fn other() { }").is_err());
    }

    #[test]
    fn lowers_rectangle_program() {
        let p = lower_ok(
            "class Point { field x; field y;
               method init(a, b) { self.x = a; self.y = b; }
             }
             class Rectangle { field lower_left; field upper_right;
               method init(ll, ur) { self.lower_left = ll; self.upper_right = ur; }
             }
             fn main() {
               var r = new Rectangle(new Point(1.0, 2.0), new Point(3.0, 4.0));
               print r.lower_left.x;
             }",
        );
        assert_eq!(p.classes.len(), 3); // $Main + 2
        assert_eq!(p.site_count, 3);
        let rect = p.class_by_name("Rectangle").unwrap();
        assert_eq!(p.layout_of(rect).len(), 2);
    }

    #[test]
    fn while_loop_shapes_cfg() {
        let p = lower_ok("fn main() { var i = 0; while (i < 10) { i = i + 1; } print i; }");
        let m = &p.methods[p.entry];
        assert!(
            m.blocks.len() >= 4,
            "expected head/body/exit blocks, got {}",
            m.blocks.len()
        );
    }

    #[test]
    fn short_circuit_and() {
        let p = lower_ok("fn main() { var a = true; if (a && false) { print 1; } }");
        let m = &p.methods[p.entry];
        // Branches exist for both the && and the if.
        let branches = m
            .blocks
            .iter()
            .filter(|b| matches!(b.term, Terminator::Branch { .. }))
            .count();
        assert!(branches >= 2);
    }

    #[test]
    fn unknown_variable_is_error() {
        let err = compile("fn main() { print missing; }").unwrap_err();
        assert!(err.message.contains("unknown variable"));
    }

    #[test]
    fn globals_resolve() {
        let p = lower_ok("global COUNTER; fn main() { COUNTER = 1; print COUNTER; }");
        assert_eq!(p.globals.len(), 1);
    }

    #[test]
    fn self_outside_method_is_error() {
        let err = compile("fn main() { print self; }").unwrap_err();
        assert!(err.message.contains("self"));
    }

    #[test]
    fn constructor_arity_checked() {
        let err = compile(
            "class P { field x; method init(a) { self.x = a; } }
             fn main() { var p = new P(); }",
        )
        .unwrap_err();
        assert!(err.message.contains("constructor"));
    }

    #[test]
    fn new_without_init_rejects_args() {
        let err = compile("class P { field x; } fn main() { var p = new P(1); }").unwrap_err();
        assert!(err.message.contains("no `init`"));
    }

    #[test]
    fn implicit_self_send_in_method() {
        let p = lower_ok(
            "class A { field v;
               method get() { return self.v; }
               method twice() { return get() + get(); }
             }
             fn main() { var a = new A(); a.v = 21; print a.twice(); }",
        );
        let twice = p.method_by_name("A", "twice").unwrap();
        let sends = p.methods[twice]
            .instrs()
            .filter(|(_, _, i)| matches!(i, Instr::Send { .. }))
            .count();
        assert_eq!(sends, 2);
    }

    #[test]
    fn duplicate_class_is_error() {
        assert!(compile("class A { } class A { } fn main() { }").is_err());
    }

    #[test]
    fn inheritance_cycle_is_error() {
        assert!(compile("class A : B { } class B : A { } fn main() { }").is_err());
    }

    #[test]
    fn field_shadowing_across_hierarchy_is_error() {
        assert!(compile("class A { field f; } class B : A { field f; } fn main() { }").is_err());
    }

    #[test]
    fn array_literal_lowering() {
        let p = lower_ok("fn main() { var a = [1, 2]; print a[0] + a[1]; }");
        let m = &p.methods[p.entry];
        let sets = m
            .instrs()
            .filter(|(_, _, i)| matches!(i, Instr::ArraySet { .. }))
            .count();
        assert_eq!(sets, 2);
    }

    #[test]
    fn builtin_arity_checked() {
        assert!(compile("fn main() { print sqrt(1, 2); }").is_err());
    }

    #[test]
    fn block_scoping_allows_shadowing() {
        let p = lower_ok("fn main() { var x = 1; if (true) { var x = 2; print x; } print x; }");
        assert!(p.methods[p.entry].temp_count > 3);
    }
}
