//! Control-flow-graph utilities over [`Method`] bodies.

use crate::instr::Terminator;
use crate::program::{BlockId, Method, MethodId, Program};
use std::collections::HashSet;

/// Successor blocks of `bb` in `method`.
pub fn successors(method: &Method, bb: BlockId) -> Vec<BlockId> {
    method.blocks[bb].term.successors()
}

/// Predecessor lists for every block.
pub fn predecessors(method: &Method) -> Vec<Vec<BlockId>> {
    let mut preds = vec![Vec::new(); method.blocks.len()];
    for (bb, block) in method.blocks.iter_enumerated() {
        for succ in block.term.successors() {
            preds[succ.index()].push(bb);
        }
    }
    preds
}

/// Blocks reachable from the entry, in depth-first discovery order.
pub fn reachable_blocks(method: &Method) -> Vec<BlockId> {
    let mut seen = HashSet::new();
    let mut order = Vec::new();
    let mut stack = vec![method.entry()];
    while let Some(bb) = stack.pop() {
        if !seen.insert(bb) {
            continue;
        }
        order.push(bb);
        for succ in method.blocks[bb].term.successors() {
            // Out-of-bounds targets are a verifier error; stay robust here.
            if method.blocks.contains_id(succ) {
                stack.push(succ);
            }
        }
    }
    order
}

/// Reverse postorder of reachable blocks — the canonical iteration order for
/// forward dataflow.
pub fn reverse_postorder(method: &Method) -> Vec<BlockId> {
    let mut visited = HashSet::new();
    let mut postorder = Vec::new();
    // Iterative DFS with an explicit phase marker to emit postorder.
    let mut stack = vec![(method.entry(), false)];
    while let Some((bb, processed)) = stack.pop() {
        if processed {
            postorder.push(bb);
            continue;
        }
        if !visited.insert(bb) {
            continue;
        }
        stack.push((bb, true));
        for succ in method.blocks[bb].term.successors() {
            if !visited.contains(&succ) {
                stack.push((succ, false));
            }
        }
    }
    postorder.reverse();
    postorder
}

/// Returns `true` if every path from entry reaches a `Return` (i.e. no
/// unterminated blocks are reachable).
pub fn all_paths_return(method: &Method) -> bool {
    reachable_blocks(method)
        .into_iter()
        .all(|bb| !matches!(method.blocks[bb].term, Terminator::Unterminated))
}

/// Methods reachable from the program entry following `CallStatic`, `Send`
/// (all possible receivers by selector) and `New` (constructor) edges.
///
/// Used by the code-size model: only generated (reachable) methods count.
pub fn reachable_methods(program: &Program) -> Vec<MethodId> {
    use crate::instr::Instr;
    let mut seen: HashSet<MethodId> = HashSet::new();
    let mut stack = vec![program.entry];
    let init_sym = program.interner.get("init");
    while let Some(m) = stack.pop() {
        if !seen.insert(m) {
            continue;
        }
        for (_, _, instr) in program.methods[m].instrs() {
            match instr {
                Instr::CallStatic { method, .. } => stack.push(*method),
                Instr::Send { selector, .. } => {
                    // Without type information, any class's method with this
                    // selector is a candidate.
                    for class in program.classes.ids() {
                        if let Some(&target) = program.classes[class].methods.get(selector) {
                            stack.push(target);
                        }
                    }
                }
                Instr::New { class, .. } => {
                    if let Some(init) = init_sym.and_then(|s| program.lookup_method(*class, s)) {
                        stack.push(init);
                    }
                }
                _ => {}
            }
        }
    }
    let mut out: Vec<_> = seen.into_iter().collect();
    out.sort_by_key(|m| m.index());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::compile;

    #[test]
    fn straight_line_has_single_block_reachable() {
        let p = compile("fn main() { print 1; }").unwrap();
        let m = &p.methods[p.entry];
        assert_eq!(reachable_blocks(m).len(), 1);
        assert!(all_paths_return(m));
    }

    #[test]
    fn loop_rpo_starts_at_entry() {
        let p = compile("fn main() { var i = 0; while (i < 3) { i = i + 1; } }").unwrap();
        let m = &p.methods[p.entry];
        let rpo = reverse_postorder(m);
        assert_eq!(rpo[0], m.entry());
        assert_eq!(rpo.len(), reachable_blocks(m).len());
    }

    #[test]
    fn predecessors_inverse_of_successors() {
        let p = compile("fn main() { if (true) { print 1; } else { print 2; } }").unwrap();
        let m = &p.methods[p.entry];
        let preds = predecessors(m);
        for (bb, _) in m.blocks.iter_enumerated() {
            for succ in successors(m, bb) {
                assert!(preds[succ.index()].contains(&bb));
            }
        }
    }

    #[test]
    fn reachable_methods_follows_calls() {
        let p = compile(
            "class A { method ping() { return 1; } }
             fn helper() { return 2; }
             fn unused() { return 3; }
             fn main() { var a = new A(); print a.ping() + helper(); }",
        )
        .unwrap();
        let reach = reachable_methods(&p);
        let ping = p.method_by_name("A", "ping").unwrap();
        let helper = p.method_by_name("$Main", "helper").unwrap();
        let unused = p.method_by_name("$Main", "unused").unwrap();
        assert!(reach.contains(&ping));
        assert!(reach.contains(&helper));
        assert!(!reach.contains(&unused));
    }
}
