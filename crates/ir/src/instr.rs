//! IR instructions and terminators.

use crate::program::{BlockId, ClassId, GlobalId, LayoutId, MethodId, SiteId, Temp};
use oi_support::Symbol;
use std::fmt;

/// A compile-time constant.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ConstValue {
    /// Integer constant.
    Int(i64),
    /// Float constant.
    Float(f64),
    /// Boolean constant.
    Bool(bool),
    /// The nil reference.
    Nil,
    /// A string constant (interned).
    Str(Symbol),
}

/// Binary operators (arithmetic, comparison, identity).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// Remainder.
    Rem,
    /// Equality (structural on primitives, identity on references).
    Eq,
    /// Inequality.
    Ne,
    /// Reference identity (`===`). Operands must be proven un-inlined.
    RefEq,
    /// Less-than.
    Lt,
    /// Less-or-equal.
    Le,
    /// Greater-than.
    Gt,
    /// Greater-or-equal.
    Ge,
}

impl BinOp {
    /// Returns `true` for comparison operators (result is boolean).
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::RefEq | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }
}

/// Unary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Boolean not.
    Not,
}

/// Intrinsic operations implemented by the runtime.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Builtin {
    /// `sqrt(x)` on floats (ints are converted).
    Sqrt,
    /// `len(a)`: array length.
    Len,
    /// `float(x)`: int → float conversion (identity on floats).
    ToFloat,
    /// `int(x)`: float → int truncation (identity on ints).
    ToInt,
}

impl Builtin {
    /// Resolves a builtin by source name.
    pub fn by_name(name: &str) -> Option<Builtin> {
        Some(match name {
            "sqrt" => Builtin::Sqrt,
            "len" => Builtin::Len,
            "float" => Builtin::ToFloat,
            "int" => Builtin::ToInt,
            _ => return None,
        })
    }

    /// Number of arguments the builtin takes.
    pub fn arity(self) -> usize {
        1
    }
}

/// A non-terminator instruction.
///
/// Field access is by name ([`Symbol`]); the receiver's class (or interior
/// layout) determines the slot at runtime, and analysis resolves it
/// statically. This mirrors the paper's model where "all access to fields go
/// thru accessor functions".
#[derive(Clone, Debug, PartialEq)]
pub enum Instr {
    /// `dst = const`
    Const {
        /// Destination temp.
        dst: Temp,
        /// The constant.
        value: ConstValue,
    },
    /// `dst = src`
    Move {
        /// Destination temp.
        dst: Temp,
        /// Source temp.
        src: Temp,
    },
    /// `dst = op src`
    Unary {
        /// Destination temp.
        dst: Temp,
        /// Operator.
        op: UnOp,
        /// Operand.
        src: Temp,
    },
    /// `dst = lhs op rhs`
    Binary {
        /// Destination temp.
        dst: Temp,
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Temp,
        /// Right operand.
        rhs: Temp,
    },
    /// `dst = new Class(args)` — allocates and runs `init` if defined.
    New {
        /// Destination temp.
        dst: Temp,
        /// Class to instantiate.
        class: ClassId,
        /// Constructor arguments.
        args: Vec<Temp>,
        /// Program-unique allocation site.
        site: SiteId,
    },
    /// `dst = array(len)` — nil-filled reference array.
    NewArray {
        /// Destination temp.
        dst: Temp,
        /// Length (integer).
        len: Temp,
        /// Program-unique allocation site.
        site: SiteId,
    },
    /// `dst = array-inline(len, layout)` — array of inline object state
    /// (introduced by the transformation, paper §5.3 / Figure 13).
    NewArrayInline {
        /// Destination temp.
        dst: Temp,
        /// Length (integer).
        len: Temp,
        /// Element layout.
        layout: LayoutId,
        /// Program-unique allocation site.
        site: SiteId,
    },
    /// `dst = obj.field`
    GetField {
        /// Destination temp.
        dst: Temp,
        /// Object reference.
        obj: Temp,
        /// Field name.
        field: Symbol,
    },
    /// `obj.field = src`
    SetField {
        /// Object reference.
        obj: Temp,
        /// Field name.
        field: Symbol,
        /// Stored value.
        src: Temp,
    },
    /// `dst = arr[idx]`
    ArrayGet {
        /// Destination temp.
        dst: Temp,
        /// Array reference.
        arr: Temp,
        /// Index (integer).
        idx: Temp,
    },
    /// `arr[idx] = src`
    ArraySet {
        /// Array reference.
        arr: Temp,
        /// Index (integer).
        idx: Temp,
        /// Stored value.
        src: Temp,
    },
    /// `dst = global`
    GetGlobal {
        /// Destination temp.
        dst: Temp,
        /// Global variable.
        global: GlobalId,
    },
    /// `global = src`
    SetGlobal {
        /// Global variable.
        global: GlobalId,
        /// Stored value.
        src: Temp,
    },
    /// `dst = recv.selector(args)` — dynamic dispatch.
    Send {
        /// Destination temp.
        dst: Temp,
        /// Receiver.
        recv: Temp,
        /// Selector.
        selector: Symbol,
        /// Arguments.
        args: Vec<Temp>,
    },
    /// `dst = method(recv, args)` — statically bound call (free functions,
    /// and devirtualized sends after analysis).
    CallStatic {
        /// Destination temp.
        dst: Temp,
        /// Callee.
        method: MethodId,
        /// Receiver value (nil for free functions).
        recv: Temp,
        /// Arguments.
        args: Vec<Temp>,
    },
    /// `dst = builtin(args)`
    CallBuiltin {
        /// Destination temp.
        dst: Temp,
        /// The intrinsic.
        builtin: Builtin,
        /// Arguments.
        args: Vec<Temp>,
    },
    /// `dst = &obj.<layout>` — interior reference to inline child state
    /// (address arithmetic; **no heap load**). Introduced by the
    /// transformation's use specialization (paper §5.3).
    MakeInterior {
        /// Destination temp.
        dst: Temp,
        /// Container object.
        obj: Temp,
        /// Where the child's state lives in the container.
        layout: LayoutId,
    },
    /// `dst = &arr[idx].<layout>` — interior reference to an inline array
    /// element; the element index is threaded along as the paper describes
    /// for arrays (§5.3, Figure 13).
    MakeInteriorElem {
        /// Destination temp.
        dst: Temp,
        /// Container array.
        arr: Temp,
        /// Element index.
        idx: Temp,
        /// Element layout.
        layout: LayoutId,
    },
    /// `print src` — writes to the program's output stream.
    Print {
        /// Printed value.
        src: Temp,
    },
}

impl Instr {
    /// The destination temp, if the instruction defines one.
    pub fn dst(&self) -> Option<Temp> {
        match *self {
            Instr::Const { dst, .. }
            | Instr::Move { dst, .. }
            | Instr::Unary { dst, .. }
            | Instr::Binary { dst, .. }
            | Instr::New { dst, .. }
            | Instr::NewArray { dst, .. }
            | Instr::NewArrayInline { dst, .. }
            | Instr::GetField { dst, .. }
            | Instr::ArrayGet { dst, .. }
            | Instr::GetGlobal { dst, .. }
            | Instr::Send { dst, .. }
            | Instr::CallStatic { dst, .. }
            | Instr::CallBuiltin { dst, .. }
            | Instr::MakeInterior { dst, .. }
            | Instr::MakeInteriorElem { dst, .. } => Some(dst),
            Instr::SetField { .. }
            | Instr::ArraySet { .. }
            | Instr::SetGlobal { .. }
            | Instr::Print { .. } => None,
        }
    }

    /// Collects the temps this instruction reads.
    pub fn uses(&self, out: &mut Vec<Temp>) {
        match self {
            Instr::Const { .. } | Instr::GetGlobal { .. } => {}
            Instr::Move { src, .. } | Instr::Unary { src, .. } => out.push(*src),
            Instr::Binary { lhs, rhs, .. } => {
                out.push(*lhs);
                out.push(*rhs);
            }
            Instr::New { args, .. } => out.extend(args.iter().copied()),
            Instr::NewArray { len, .. } | Instr::NewArrayInline { len, .. } => out.push(*len),
            Instr::GetField { obj, .. } => out.push(*obj),
            Instr::SetField { obj, src, .. } => {
                out.push(*obj);
                out.push(*src);
            }
            Instr::ArrayGet { arr, idx, .. } => {
                out.push(*arr);
                out.push(*idx);
            }
            Instr::ArraySet { arr, idx, src } => {
                out.push(*arr);
                out.push(*idx);
                out.push(*src);
            }
            Instr::SetGlobal { src, .. } => out.push(*src),
            Instr::Send { recv, args, .. } => {
                out.push(*recv);
                out.extend(args.iter().copied());
            }
            Instr::CallStatic { recv, args, .. } => {
                out.push(*recv);
                out.extend(args.iter().copied());
            }
            Instr::CallBuiltin { args, .. } => out.extend(args.iter().copied()),
            Instr::MakeInterior { obj, .. } => out.push(*obj),
            Instr::MakeInteriorElem { arr, idx, .. } => {
                out.push(*arr);
                out.push(*idx);
            }
            Instr::Print { src } => out.push(*src),
        }
    }

    /// Rewrites every temp (defs and uses) through `f`.
    pub fn map_temps(&mut self, mut f: impl FnMut(Temp) -> Temp) {
        match self {
            Instr::Const { dst, .. } => *dst = f(*dst),
            Instr::Move { dst, src } | Instr::Unary { dst, src, .. } => {
                *dst = f(*dst);
                *src = f(*src);
            }
            Instr::Binary { dst, lhs, rhs, .. } => {
                *dst = f(*dst);
                *lhs = f(*lhs);
                *rhs = f(*rhs);
            }
            Instr::New { dst, args, .. } => {
                *dst = f(*dst);
                for a in args {
                    *a = f(*a);
                }
            }
            Instr::NewArray { dst, len, .. } | Instr::NewArrayInline { dst, len, .. } => {
                *dst = f(*dst);
                *len = f(*len);
            }
            Instr::GetField { dst, obj, .. } => {
                *dst = f(*dst);
                *obj = f(*obj);
            }
            Instr::SetField { obj, src, .. } => {
                *obj = f(*obj);
                *src = f(*src);
            }
            Instr::ArrayGet { dst, arr, idx } => {
                *dst = f(*dst);
                *arr = f(*arr);
                *idx = f(*idx);
            }
            Instr::ArraySet { arr, idx, src } => {
                *arr = f(*arr);
                *idx = f(*idx);
                *src = f(*src);
            }
            Instr::GetGlobal { dst, .. } => *dst = f(*dst),
            Instr::SetGlobal { src, .. } => *src = f(*src),
            Instr::Send {
                dst, recv, args, ..
            } => {
                *dst = f(*dst);
                *recv = f(*recv);
                for a in args {
                    *a = f(*a);
                }
            }
            Instr::CallStatic {
                dst, recv, args, ..
            } => {
                *dst = f(*dst);
                *recv = f(*recv);
                for a in args {
                    *a = f(*a);
                }
            }
            Instr::CallBuiltin { dst, args, .. } => {
                *dst = f(*dst);
                for a in args {
                    *a = f(*a);
                }
            }
            Instr::MakeInterior { dst, obj, .. } => {
                *dst = f(*dst);
                *obj = f(*obj);
            }
            Instr::MakeInteriorElem { dst, arr, idx, .. } => {
                *dst = f(*dst);
                *arr = f(*arr);
                *idx = f(*idx);
            }
            Instr::Print { src } => *src = f(*src),
        }
    }

    /// Returns `true` if removing the instruction (given its result is
    /// unused) cannot change program behavior. Calls, stores, prints and
    /// allocations (which run `init`) are not pure.
    pub fn is_pure(&self) -> bool {
        matches!(
            self,
            Instr::Const { .. }
                | Instr::Move { .. }
                | Instr::Unary { .. }
                | Instr::Binary { .. }
                | Instr::GetField { .. }
                | Instr::ArrayGet { .. }
                | Instr::GetGlobal { .. }
                | Instr::MakeInterior { .. }
                | Instr::MakeInteriorElem { .. }
                | Instr::NewArray { .. }
                | Instr::NewArrayInline { .. }
        )
    }
}

/// A block terminator.
#[derive(Clone, Debug, PartialEq, Default)]
pub enum Terminator {
    /// Unconditional jump.
    Jump(BlockId),
    /// Two-way branch on a boolean temp.
    Branch {
        /// Condition (must be boolean at runtime).
        cond: Temp,
        /// Target when true.
        then_bb: BlockId,
        /// Target when false.
        else_bb: BlockId,
    },
    /// Return a value to the caller.
    Return(Temp),
    /// Placeholder for blocks under construction; invalid in finished IR.
    #[default]
    Unterminated,
}

impl Terminator {
    /// Successor blocks.
    pub fn successors(&self) -> Vec<BlockId> {
        match *self {
            Terminator::Jump(b) => vec![b],
            Terminator::Branch {
                then_bb, else_bb, ..
            } => vec![then_bb, else_bb],
            Terminator::Return(_) | Terminator::Unterminated => vec![],
        }
    }

    /// Temps read by the terminator.
    pub fn uses(&self, out: &mut Vec<Temp>) {
        match *self {
            Terminator::Branch { cond, .. } => out.push(cond),
            Terminator::Return(t) => out.push(t),
            Terminator::Jump(_) | Terminator::Unterminated => {}
        }
    }

    /// Rewrites temps through `f`.
    pub fn map_temps(&mut self, mut f: impl FnMut(Temp) -> Temp) {
        match self {
            Terminator::Branch { cond, .. } => *cond = f(*cond),
            Terminator::Return(t) => *t = f(*t),
            Terminator::Jump(_) | Terminator::Unterminated => {}
        }
    }

    /// Rewrites block targets through `f`.
    pub fn map_blocks(&mut self, mut f: impl FnMut(BlockId) -> BlockId) {
        match self {
            Terminator::Jump(b) => *b = f(*b),
            Terminator::Branch {
                then_bb, else_bb, ..
            } => {
                *then_bb = f(*then_bb);
                *else_bb = f(*else_bb);
            }
            Terminator::Return(_) | Terminator::Unterminated => {}
        }
    }
}

impl fmt::Display for ConstValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConstValue::Int(n) => write!(f, "{n}"),
            ConstValue::Float(x) => write!(f, "{x:?}"),
            ConstValue::Bool(b) => write!(f, "{b}"),
            ConstValue::Nil => f.write_str("nil"),
            ConstValue::Str(s) => write!(f, "str#{}", s.raw()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dst_and_uses_are_consistent() {
        let t = |n| Temp::new(n);
        let i = Instr::Binary {
            dst: t(3),
            op: BinOp::Add,
            lhs: t(1),
            rhs: t(2),
        };
        assert_eq!(i.dst(), Some(t(3)));
        let mut uses = Vec::new();
        i.uses(&mut uses);
        assert_eq!(uses, vec![t(1), t(2)]);
    }

    #[test]
    fn stores_have_no_dst() {
        let t = |n| Temp::new(n);
        let sym = {
            let mut i = oi_support::Interner::new();
            i.intern("f")
        };
        let i = Instr::SetField {
            obj: t(0),
            field: sym,
            src: t(1),
        };
        assert_eq!(i.dst(), None);
        assert!(!i.is_pure());
    }

    #[test]
    fn map_temps_rewrites_everything() {
        let t = |n| Temp::new(n);
        let mut i = Instr::Send {
            dst: t(0),
            recv: t(1),
            selector: {
                let mut int = oi_support::Interner::new();
                int.intern("area")
            },
            args: vec![t(2), t(3)],
        };
        i.map_temps(|x| Temp::new(x.index() + 10));
        let mut uses = Vec::new();
        i.uses(&mut uses);
        assert_eq!(i.dst(), Some(t(10)));
        assert_eq!(uses, vec![t(11), t(12), t(13)]);
    }

    #[test]
    fn terminator_successors() {
        let b = |n| BlockId::new(n);
        assert_eq!(Terminator::Jump(b(1)).successors(), vec![b(1)]);
        assert_eq!(
            Terminator::Branch {
                cond: Temp::new(0),
                then_bb: b(1),
                else_bb: b(2)
            }
            .successors(),
            vec![b(1), b(2)]
        );
        assert!(Terminator::Return(Temp::new(0)).successors().is_empty());
    }

    #[test]
    fn purity_classification() {
        let t = |n| Temp::new(n);
        assert!(Instr::Move {
            dst: t(0),
            src: t(1)
        }
        .is_pure());
        assert!(Instr::MakeInterior {
            dst: t(0),
            obj: t(1),
            layout: LayoutId::new(0)
        }
        .is_pure());
        assert!(!Instr::Print { src: t(0) }.is_pure());
        assert!(!Instr::New {
            dst: t(0),
            class: ClassId::new(0),
            args: vec![],
            site: SiteId::new(0)
        }
        .is_pure());
    }

    #[test]
    fn builtin_lookup() {
        assert_eq!(Builtin::by_name("sqrt"), Some(Builtin::Sqrt));
        assert_eq!(Builtin::by_name("nope"), None);
        assert_eq!(Builtin::Sqrt.arity(), 1);
    }
}
