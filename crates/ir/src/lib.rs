#![warn(missing_docs)]
//! Register-based intermediate representation for the object-inlining
//! compiler.
//!
//! The IR models the paper's uniform object model directly: every object
//! lives on the heap and is accessed through references, fields are accessed
//! by name (resolved through the receiver's class layout), and calls are
//! dynamic [`Instr::Send`]s until analysis devirtualizes them into
//! [`Instr::CallStatic`]s.
//!
//! The object-inlining transformation extends the same IR with *interior
//! references* ([`Instr::MakeInterior`], [`Instr::MakeInteriorElem`]) formed
//! by address arithmetic instead of a heap load — this is precisely where the
//! paper's "one dereference fewer" comes from — and with inline-allocated
//! arrays ([`Instr::NewArrayInline`]) supporting both interleaved and
//! parallel ("Fortran style") element layouts.
//!
//! Modules:
//! - [`program`]: classes, methods, fields, globals, inline layouts,
//! - [`instr`]: instructions and terminators,
//! - [`builder`]: an imperative function builder,
//! - [`lower`]: AST → IR lowering (name resolution included),
//! - [`mod@cfg`]: control-flow utilities,
//! - [`verify`]: structural validity checking,
//! - [`printer`]: human-readable dumps,
//! - [`serial`]: deterministic binary program encoding for the persistent
//!   artifact store (panic-free decoding of untrusted bytes),
//! - [`size`]: the generated-code-size model (paper Figure 15),
//! - [`opt`]: post-devirtualization cleanups (method inlining, copy
//!   propagation, dead-code elimination, CFG simplification).
//!
//! # Examples
//!
//! ```
//! let ast = oi_lang::parse("fn main() { print 2 + 3; }")?;
//! let program = oi_ir::lower::lower_program(&ast)?;
//! oi_ir::verify::verify(&program).expect("well-formed IR");
//! # Ok::<(), oi_support::Diagnostic>(())
//! ```

pub mod builder;
pub mod cfg;
pub mod instr;
pub mod lower;
pub mod opt;
pub mod printer;
pub mod program;
pub mod serial;
pub mod size;
pub mod verify;

pub use instr::{BinOp, Builtin, ConstValue, Instr, Terminator, UnOp};
pub use program::{
    ArrayLayoutKind, Block, BlockId, Class, ClassId, Field, FieldId, Global, GlobalId,
    InlineLayout, LayoutId, Method, MethodId, Program, SiteId, Temp,
};
