//! Structural verification of IR programs.
//!
//! The verifier is run after lowering and after every transformation stage;
//! it catches malformed programs early rather than as interpreter panics.

use crate::cfg;
use crate::instr::{Instr, Terminator};
use crate::program::{ClassId, Method, MethodId, Program, Temp};
use oi_support::{Diagnostic, Span};

/// Checks the whole program for structural validity.
///
/// Verified properties:
/// - the class hierarchy is acyclic and parents are in-bounds,
/// - every method's temps are within `temp_count`, parameters fit,
/// - every reachable block is terminated and targets are in-bounds,
/// - call/new/layout references are in-bounds,
/// - the entry method exists and takes no parameters.
///
/// # Errors
///
/// Returns all problems found (never an empty `Err` vector).
pub fn verify(program: &Program) -> Result<(), Vec<Diagnostic>> {
    let mut errors = Vec::new();

    verify_classes(program, &mut errors);
    for (mid, method) in program.methods.iter_enumerated() {
        verify_method(program, mid, method, &mut errors);
    }
    if program.methods.get(program.entry).is_none() {
        errors.push(err("entry method out of bounds"));
    } else if program.methods[program.entry].param_count != 0 {
        errors.push(err("entry method must take no parameters"));
    }

    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

fn err(msg: impl Into<String>) -> Diagnostic {
    Diagnostic::error(msg, Span::dummy())
}

fn verify_classes(program: &Program, errors: &mut Vec<Diagnostic>) {
    for (cid, class) in program.classes.iter_enumerated() {
        if let Some(p) = class.parent {
            if !program.classes.contains_id(p) {
                errors.push(err(format!("{cid:?}: parent out of bounds")));
                continue;
            }
        }
        // Acyclicity via bounded walk.
        let mut cur = class.parent;
        let mut steps = 0;
        while let Some(c) = cur {
            steps += 1;
            if steps > program.classes.len() {
                errors.push(err(format!(
                    "inheritance cycle reachable from class `{}`",
                    program.interner.resolve(class.name)
                )));
                break;
            }
            cur = program.classes[c].parent;
        }
        for &f in &class.own_fields {
            if !program.fields.contains_id(f) {
                errors.push(err(format!("{cid:?}: field id out of bounds")));
            }
        }
        for (&sel, &m) in &class.methods {
            if !program.methods.contains_id(m) {
                errors.push(err(format!(
                    "class `{}` method `{}` out of bounds",
                    program.interner.resolve(class.name),
                    program.interner.resolve(sel)
                )));
            }
        }
    }
}

fn verify_method(program: &Program, mid: MethodId, method: &Method, errors: &mut Vec<Diagnostic>) {
    let name = program.method_display(mid);
    if method.temp_count < method.param_count + 1 {
        errors.push(err(format!("{name}: temp_count smaller than self+params")));
    }
    if method.blocks.is_empty() {
        errors.push(err(format!("{name}: no blocks")));
        return;
    }
    let check_temp = |t: Temp, errors: &mut Vec<Diagnostic>| {
        if t.index() >= method.temp_count as usize {
            errors.push(err(format!("{name}: temp {t:?} out of range")));
        }
    };
    let check_class = |c: ClassId, errors: &mut Vec<Diagnostic>| {
        if !program.classes.contains_id(c) {
            errors.push(err(format!("{name}: class {c:?} out of bounds")));
        }
    };
    for (bb, block) in method.blocks.iter_enumerated() {
        for instr in &block.instrs {
            if let Some(d) = instr.dst() {
                check_temp(d, errors);
            }
            let mut uses = Vec::new();
            instr.uses(&mut uses);
            for u in uses {
                check_temp(u, errors);
            }
            match instr {
                Instr::New {
                    class, args, site, ..
                } => {
                    check_class(*class, errors);
                    if site.index() >= program.site_count as usize {
                        errors.push(err(format!(
                            "{name}: allocation site {site:?} out of range"
                        )));
                    }
                    if let Some(init_sym) = program.interner.get("init") {
                        if let Some(init) = program.lookup_method(*class, init_sym) {
                            // Empty args are the "raw allocation" form used
                            // after constructor explosion: the constructor
                            // is invoked explicitly by a following call.
                            if !args.is_empty()
                                && program.methods[init].param_count as usize != args.len()
                            {
                                errors.push(err(format!("{name}: constructor arity mismatch")));
                            }
                        }
                    }
                }
                Instr::NewArray { site, .. } | Instr::NewArrayInline { site, .. } => {
                    if site.index() >= program.site_count as usize {
                        errors.push(err(format!(
                            "{name}: allocation site {site:?} out of range"
                        )));
                    }
                    if let Instr::NewArrayInline { layout, .. } = instr {
                        if !program.layouts.contains_id(*layout) {
                            errors.push(err(format!("{name}: layout {layout:?} out of bounds")));
                        }
                    }
                }
                Instr::CallStatic {
                    method: target,
                    args,
                    ..
                } => {
                    if !program.methods.contains_id(*target) {
                        errors.push(err(format!("{name}: call target out of bounds")));
                    } else if program.methods[*target].param_count as usize != args.len() {
                        errors.push(err(format!(
                            "{name}: static call arity mismatch calling {}",
                            program.method_display(*target)
                        )));
                    }
                }
                Instr::GetGlobal { global, .. } | Instr::SetGlobal { global, .. }
                    if !program.globals.contains_id(*global) =>
                {
                    errors.push(err(format!("{name}: global {global:?} out of bounds")));
                }
                Instr::MakeInterior { layout, .. } | Instr::MakeInteriorElem { layout, .. }
                    if !program.layouts.contains_id(*layout) =>
                {
                    errors.push(err(format!("{name}: layout {layout:?} out of bounds")));
                }
                _ => {}
            }
        }
        let mut term_uses = Vec::new();
        block.term.uses(&mut term_uses);
        for u in term_uses {
            check_temp(u, errors);
        }
        for succ in block.term.successors() {
            if !method.blocks.contains_id(succ) {
                errors.push(err(format!(
                    "{name}: {bb:?} jumps to out-of-bounds {succ:?}"
                )));
            }
        }
    }
    for bb in cfg::reachable_blocks(method) {
        if matches!(method.blocks[bb].term, Terminator::Unterminated) {
            errors.push(err(format!("{name}: reachable {bb:?} is unterminated")));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::compile;

    #[test]
    fn lowered_programs_verify() {
        let p = compile(
            "class Point { field x; field y;
               method init(a, b) { self.x = a; self.y = b; }
               method abs() { return sqrt(self.x * self.x + self.y * self.y); }
             }
             fn main() {
               var p = new Point(3.0, 4.0);
               print p.abs();
             }",
        )
        .unwrap();
        verify(&p).unwrap();
    }

    #[test]
    fn detects_out_of_range_temp() {
        let mut p = compile("fn main() { print 1; }").unwrap();
        let entry = p.entry;
        p.methods[entry].temp_count = 1; // too small for the consts used
        let errs = verify(&p).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("out of range")));
    }

    #[test]
    fn detects_bad_jump_target() {
        let mut p = compile("fn main() { print 1; }").unwrap();
        let entry = p.entry;
        let bb = p.methods[entry].entry();
        p.methods[entry].blocks[bb].term = Terminator::Jump(crate::program::BlockId::new(99));
        let errs = verify(&p).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("out-of-bounds")));
    }

    #[test]
    fn detects_unterminated_reachable_block() {
        let mut p = compile("fn main() { print 1; }").unwrap();
        let entry = p.entry;
        let bb = p.methods[entry].entry();
        p.methods[entry].blocks[bb].term = Terminator::Unterminated;
        let errs = verify(&p).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("unterminated")));
    }

    #[test]
    fn detects_arity_mismatch_after_mutation() {
        let mut p = compile(
            "fn callee(a) { return a; }
             fn main() { print callee(1); }",
        )
        .unwrap();
        // Break the call by dropping the argument.
        let entry = p.entry;
        for block in p.methods[entry].blocks.iter_mut() {
            for instr in &mut block.instrs {
                if let Instr::CallStatic { args, .. } = instr {
                    args.clear();
                }
            }
        }
        let errs = verify(&p).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("arity")));
    }
}
