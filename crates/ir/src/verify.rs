//! Structural verification of IR programs.
//!
//! The verifier is run after lowering and after every transformation stage;
//! it catches malformed programs early rather than as interpreter panics.

use crate::cfg;
use crate::instr::{Instr, Terminator};
use crate::program::{ClassId, Method, MethodId, Program, Temp};
use oi_support::{Diagnostic, Span};

/// Checks the whole program for structural validity.
///
/// Verified properties:
/// - the class hierarchy is acyclic and parents are in-bounds,
/// - every method's temps are within `temp_count`, parameters fit,
/// - every reachable block is terminated and targets are in-bounds,
/// - call/new/layout references are in-bounds,
/// - the inline-layout table is well-formed: object layouts map each child
///   field to a distinct, in-range container slot; array layouts carry no
///   container slots; interior references agree with their layout's kind,
/// - the entry method exists and takes no parameters.
///
/// # Errors
///
/// Returns all problems found (never an empty `Err` vector).
pub fn verify(program: &Program) -> Result<(), Vec<Diagnostic>> {
    let mut errors = Vec::new();

    verify_classes(program, &mut errors);
    verify_layouts(program, &mut errors);
    for (mid, method) in program.methods.iter_enumerated() {
        verify_method(program, mid, method, &mut errors);
    }
    if program.methods.get(program.entry).is_none() {
        errors.push(err("entry method out of bounds"));
    } else if program.methods[program.entry].param_count != 0 {
        errors.push(err("entry method must take no parameters"));
    }

    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

fn err(msg: impl Into<String>) -> Diagnostic {
    Diagnostic::error(msg, Span::dummy())
}

fn verify_classes(program: &Program, errors: &mut Vec<Diagnostic>) {
    for (cid, class) in program.classes.iter_enumerated() {
        if let Some(p) = class.parent {
            if !program.classes.contains_id(p) {
                errors.push(err(format!("{cid:?}: parent out of bounds")));
                continue;
            }
        }
        // Acyclicity via bounded walk.
        let mut cur = class.parent;
        let mut steps = 0;
        while let Some(c) = cur {
            steps += 1;
            if steps > program.classes.len() {
                errors.push(err(format!(
                    "inheritance cycle reachable from class `{}`",
                    program.interner.resolve(class.name)
                )));
                break;
            }
            cur = program.classes[c].parent;
        }
        for &f in &class.own_fields {
            if !program.fields.contains_id(f) {
                errors.push(err(format!("{cid:?}: field id out of bounds")));
            }
        }
        for (&sel, &m) in &class.methods {
            if !program.methods.contains_id(m) {
                errors.push(err(format!(
                    "class `{}` method `{}` out of bounds",
                    program.interner.resolve(class.name),
                    program.interner.resolve(sel)
                )));
            }
        }
    }
}

/// Checks the inline-layout table produced by restructuring.
///
/// The verifier cannot know which container class a layout will be applied
/// to (that is only manifest at `MakeInterior` sites whose receiver class
/// is an analysis fact, not an IR fact), so slot bounds are checked against
/// the widest class layout in the program: a slot no class can hold is
/// definitely a restructuring bug.
fn verify_layouts(program: &Program, errors: &mut Vec<Diagnostic>) {
    let max_width = program
        .classes
        .ids()
        .map(|c| program.layout_of(c).len())
        .max()
        .unwrap_or(0);
    for (lid, layout) in program.layouts.iter_enumerated() {
        if !program.classes.contains_id(layout.child_class) {
            errors.push(err(format!("{lid:?}: child class out of bounds")));
            continue;
        }
        if layout.array_kind.is_some() {
            // Array element state is addressed by (index, field) per the
            // layout kind; container slots are meaningless here.
            if !layout.slots.is_empty() {
                errors.push(err(format!(
                    "{lid:?}: array layout must not carry container slots"
                )));
            }
            continue;
        }
        if layout.slots.len() != layout.child_fields.len() {
            errors.push(err(format!(
                "{lid:?}: slot table has {} entries for {} child fields",
                layout.slots.len(),
                layout.child_fields.len()
            )));
        }
        let mut seen = std::collections::BTreeSet::new();
        for &s in &layout.slots {
            if s >= max_width {
                errors.push(err(format!(
                    "{lid:?}: slot {s} out of range (widest class layout has {max_width} slots)"
                )));
            }
            if !seen.insert(s) {
                errors.push(err(format!(
                    "{lid:?}: duplicate container slot {s} (child fields would alias)"
                )));
            }
        }
    }
}

fn verify_method(program: &Program, mid: MethodId, method: &Method, errors: &mut Vec<Diagnostic>) {
    let name = program.method_display(mid);
    if method.temp_count < method.param_count + 1 {
        errors.push(err(format!("{name}: temp_count smaller than self+params")));
    }
    if method.blocks.is_empty() {
        errors.push(err(format!("{name}: no blocks")));
        return;
    }
    let check_temp = |t: Temp, errors: &mut Vec<Diagnostic>| {
        if t.index() >= method.temp_count as usize {
            errors.push(err(format!("{name}: temp {t:?} out of range")));
        }
    };
    let check_class = |c: ClassId, errors: &mut Vec<Diagnostic>| {
        if !program.classes.contains_id(c) {
            errors.push(err(format!("{name}: class {c:?} out of bounds")));
        }
    };
    for (bb, block) in method.blocks.iter_enumerated() {
        for instr in &block.instrs {
            if let Some(d) = instr.dst() {
                check_temp(d, errors);
            }
            let mut uses = Vec::new();
            instr.uses(&mut uses);
            for u in uses {
                check_temp(u, errors);
            }
            match instr {
                Instr::New {
                    class, args, site, ..
                } => {
                    check_class(*class, errors);
                    if site.index() >= program.site_count as usize {
                        errors.push(err(format!(
                            "{name}: allocation site {site:?} out of range"
                        )));
                    }
                    if let Some(init_sym) = program.interner.get("init") {
                        if let Some(init) = program.lookup_method(*class, init_sym) {
                            // Empty args are the "raw allocation" form used
                            // after constructor explosion: the constructor
                            // is invoked explicitly by a following call.
                            if !args.is_empty()
                                && program.methods[init].param_count as usize != args.len()
                            {
                                errors.push(err(format!("{name}: constructor arity mismatch")));
                            }
                        }
                    }
                }
                Instr::NewArray { site, .. } | Instr::NewArrayInline { site, .. } => {
                    if site.index() >= program.site_count as usize {
                        errors.push(err(format!(
                            "{name}: allocation site {site:?} out of range"
                        )));
                    }
                    if let Instr::NewArrayInline { layout, .. } = instr {
                        if !program.layouts.contains_id(*layout) {
                            errors.push(err(format!("{name}: layout {layout:?} out of bounds")));
                        } else if program.layouts[*layout].array_kind.is_none() {
                            errors.push(err(format!(
                                "{name}: inline array allocated with object layout {layout:?}"
                            )));
                        }
                    }
                }
                Instr::CallStatic {
                    method: target,
                    args,
                    ..
                } => {
                    if !program.methods.contains_id(*target) {
                        errors.push(err(format!("{name}: call target out of bounds")));
                    } else if program.methods[*target].param_count as usize != args.len() {
                        errors.push(err(format!(
                            "{name}: static call arity mismatch calling {}",
                            program.method_display(*target)
                        )));
                    }
                }
                Instr::GetGlobal { global, .. } | Instr::SetGlobal { global, .. }
                    if !program.globals.contains_id(*global) =>
                {
                    errors.push(err(format!("{name}: global {global:?} out of bounds")));
                }
                Instr::MakeInterior { layout, .. } => {
                    if !program.layouts.contains_id(*layout) {
                        errors.push(err(format!("{name}: layout {layout:?} out of bounds")));
                    } else if program.layouts[*layout].array_kind.is_some() {
                        errors.push(err(format!(
                            "{name}: object interior reference built from array layout \
                             {layout:?} (type-confused)"
                        )));
                    }
                }
                Instr::MakeInteriorElem { layout, .. } => {
                    if !program.layouts.contains_id(*layout) {
                        errors.push(err(format!("{name}: layout {layout:?} out of bounds")));
                    } else if program.layouts[*layout].array_kind.is_none() {
                        errors.push(err(format!(
                            "{name}: array-element interior reference built from object \
                             layout {layout:?} (type-confused)"
                        )));
                    }
                }
                _ => {}
            }
        }
        let mut term_uses = Vec::new();
        block.term.uses(&mut term_uses);
        for u in term_uses {
            check_temp(u, errors);
        }
        for succ in block.term.successors() {
            if !method.blocks.contains_id(succ) {
                errors.push(err(format!(
                    "{name}: {bb:?} jumps to out-of-bounds {succ:?}"
                )));
            }
        }
    }
    for bb in cfg::reachable_blocks(method) {
        if matches!(method.blocks[bb].term, Terminator::Unterminated) {
            errors.push(err(format!("{name}: reachable {bb:?} is unterminated")));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::compile;

    #[test]
    fn lowered_programs_verify() {
        let p = compile(
            "class Point { field x; field y;
               method init(a, b) { self.x = a; self.y = b; }
               method abs() { return sqrt(self.x * self.x + self.y * self.y); }
             }
             fn main() {
               var p = new Point(3.0, 4.0);
               print p.abs();
             }",
        )
        .unwrap();
        verify(&p).unwrap();
    }

    #[test]
    fn detects_out_of_range_temp() {
        let mut p = compile("fn main() { print 1; }").unwrap();
        let entry = p.entry;
        p.methods[entry].temp_count = 1; // too small for the consts used
        let errs = verify(&p).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("out of range")));
    }

    #[test]
    fn detects_bad_jump_target() {
        let mut p = compile("fn main() { print 1; }").unwrap();
        let entry = p.entry;
        let bb = p.methods[entry].entry();
        p.methods[entry].blocks[bb].term = Terminator::Jump(crate::program::BlockId::new(99));
        let errs = verify(&p).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("out-of-bounds")));
    }

    #[test]
    fn detects_unterminated_reachable_block() {
        let mut p = compile("fn main() { print 1; }").unwrap();
        let entry = p.entry;
        let bb = p.methods[entry].entry();
        p.methods[entry].blocks[bb].term = Terminator::Unterminated;
        let errs = verify(&p).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("unterminated")));
    }

    /// A two-class program plus a hand-built object layout, the shape
    /// restructuring produces for `Rect { ll: Point }`.
    fn program_with_layout() -> (crate::program::Program, crate::program::LayoutId) {
        let mut p = compile(
            "class Point { field x; field y;
               method init(a, b) { self.x = a; self.y = b; }
             }
             class Rect { field ll; field ur;
               method init(a, b) { self.ll = a; self.ur = b; }
             }
             fn main() { print 1; }",
        )
        .unwrap();
        let x = p.interner.get("x").unwrap();
        let y = p.interner.get("y").unwrap();
        let point = p.class_by_name("Point").unwrap();
        let lid = p.layouts.push(crate::program::InlineLayout {
            child_class: point,
            child_fields: vec![x, y],
            slots: vec![0, 1],
            array_kind: None,
        });
        (p, lid)
    }

    #[test]
    fn well_formed_layout_verifies() {
        let (p, _) = program_with_layout();
        verify(&p).unwrap();
    }

    #[test]
    fn detects_dangling_layout_child_class() {
        let (mut p, lid) = program_with_layout();
        p.layouts[lid].child_class = ClassId::new(99);
        let errs = verify(&p).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("child class")));
    }

    #[test]
    fn detects_slot_table_width_mismatch() {
        let (mut p, lid) = program_with_layout();
        p.layouts[lid].slots.pop(); // 1 slot for 2 child fields
        let errs = verify(&p).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| e.message.contains("entries for 2 child fields")));
    }

    #[test]
    fn detects_aliasing_duplicate_slots() {
        let (mut p, lid) = program_with_layout();
        p.layouts[lid].slots = vec![1, 1]; // x and y share a word
        let errs = verify(&p).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("duplicate")));
    }

    #[test]
    fn detects_out_of_range_slot_after_restructuring() {
        let (mut p, lid) = program_with_layout();
        p.layouts[lid].slots = vec![0, 57]; // no class is 58 words wide
        let errs = verify(&p).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| e.message.contains("slot 57 out of range")));
    }

    #[test]
    fn detects_slots_on_array_layout() {
        let (mut p, lid) = program_with_layout();
        p.layouts[lid].array_kind = Some(crate::program::ArrayLayoutKind::Interleaved);
        let errs = verify(&p).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| e.message.contains("must not carry container slots")));
    }

    #[test]
    fn detects_type_confused_interior_references() {
        // An object interior reference built from an array layout, and an
        // array-element interior reference built from an object layout.
        let (mut p, object_layout) = program_with_layout();
        let x = p.interner.get("x").unwrap();
        let point = p.class_by_name("Point").unwrap();
        let array_layout = p.layouts.push(crate::program::InlineLayout {
            child_class: point,
            child_fields: vec![x],
            slots: vec![],
            array_kind: Some(crate::program::ArrayLayoutKind::Parallel),
        });
        let entry = p.entry;
        let method = &mut p.methods[entry];
        method.temp_count += 3;
        let t = |n| Temp::new(n);
        let bb = method.entry();
        method.blocks[bb].instrs.push(Instr::MakeInterior {
            dst: t(1),
            obj: t(0),
            layout: array_layout,
        });
        method.blocks[bb].instrs.push(Instr::MakeInteriorElem {
            dst: t(2),
            arr: t(0),
            idx: t(3),
            layout: object_layout,
        });
        let errs = verify(&p).unwrap_err();
        assert!(errs.iter().any(|e| e
            .message
            .contains("object interior reference built from array layout")));
        assert!(errs.iter().any(|e| e
            .message
            .contains("array-element interior reference built from object")));
    }

    #[test]
    fn detects_arity_mismatch_after_mutation() {
        let mut p = compile(
            "fn callee(a) { return a; }
             fn main() { print callee(1); }",
        )
        .unwrap();
        // Break the call by dropping the argument.
        let entry = p.entry;
        for block in p.methods[entry].blocks.iter_mut() {
            for instr in &mut block.instrs {
                if let Instr::CallStatic { args, .. } = instr {
                    args.clear();
                }
            }
        }
        let errs = verify(&p).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("arity")));
    }
}
