//! Program-level IR structures: classes, fields, methods, globals and the
//! inline-layout table produced by the object-inlining transformation.

use crate::instr::{Instr, Terminator};
use oi_support::{define_idx, IdxVec, Interner, Symbol};
use std::collections::HashMap;

define_idx!(
    /// Identifies a class in [`Program::classes`].
    pub struct ClassId, "class"
);
define_idx!(
    /// Identifies a method in [`Program::methods`].
    pub struct MethodId, "m"
);
define_idx!(
    /// Identifies a declared field in [`Program::fields`].
    pub struct FieldId, "f"
);
define_idx!(
    /// Identifies a global variable in [`Program::globals`].
    pub struct GlobalId, "g"
);
define_idx!(
    /// Identifies a basic block within a [`Method`].
    pub struct BlockId, "bb"
);
define_idx!(
    /// Identifies an allocation site, unique across the whole program.
    /// Object contours are keyed on these.
    pub struct SiteId, "site"
);
define_idx!(
    /// Identifies an [`InlineLayout`] in [`Program::layouts`].
    pub struct LayoutId, "layout"
);

define_idx!(
    /// A virtual register within a method. By convention temp 0 is `self`
    /// and temps `1..=param_count` are the declared parameters.
    pub struct Temp, "t"
);

/// A class definition.
#[derive(Clone, Debug)]
pub struct Class {
    /// Class name.
    pub name: Symbol,
    /// Superclass, if any.
    pub parent: Option<ClassId>,
    /// Fields declared directly on this class, in declaration order.
    /// The object-inlining transformation rewrites this list (replacing an
    /// inlined field with the child's first field and appending the rest).
    pub own_fields: Vec<FieldId>,
    /// Methods declared directly on this class, by selector.
    pub methods: HashMap<Symbol, MethodId>,
}

/// A declared field.
#[derive(Clone, Debug)]
pub struct Field {
    /// Field name (unique within its class hierarchy in well-formed input).
    pub name: Symbol,
    /// The class that declares the field.
    pub owner: ClassId,
    /// Source-level annotations (`@inline_ideal`, `@inline_cxx`), used for
    /// evaluation ground truth.
    pub annotations: Vec<Symbol>,
}

/// A global variable.
#[derive(Clone, Debug)]
pub struct Global {
    /// Global name.
    pub name: Symbol,
}

/// A basic block: straight-line instructions plus a terminator.
#[derive(Clone, Debug, Default)]
pub struct Block {
    /// Instructions in execution order.
    pub instrs: Vec<Instr>,
    /// Control transfer out of the block.
    pub term: Terminator,
}

/// A method (or free function, modeled as a method of the synthetic `$Main`
/// class).
#[derive(Clone, Debug)]
pub struct Method {
    /// Selector.
    pub name: Symbol,
    /// Class the method belongs to.
    pub class: ClassId,
    /// Number of declared parameters (excluding `self`).
    pub param_count: u32,
    /// Total number of temps used by the body (≥ `param_count + 1`).
    pub temp_count: u32,
    /// Basic blocks; block 0 is the entry.
    pub blocks: IdxVec<BlockId, Block>,
}

impl Method {
    /// The temp holding `self`.
    pub fn self_temp(&self) -> Temp {
        Temp::new(0)
    }

    /// The temp holding the `i`-th declared parameter (0-based).
    ///
    /// # Panics
    ///
    /// Panics if `i >= param_count`.
    pub fn param_temp(&self, i: u32) -> Temp {
        assert!(i < self.param_count, "parameter index out of range");
        Temp::new(1 + i as usize)
    }

    /// The entry block id.
    pub fn entry(&self) -> BlockId {
        BlockId::new(0)
    }

    /// Iterates over `(block, index, instr)` triples.
    pub fn instrs(&self) -> impl Iterator<Item = (BlockId, usize, &Instr)> {
        self.blocks.iter_enumerated().flat_map(|(bb, block)| {
            block
                .instrs
                .iter()
                .enumerate()
                .map(move |(i, ins)| (bb, i, ins))
        })
    }

    /// Total instruction count (terminators excluded).
    pub fn instr_count(&self) -> usize {
        self.blocks.iter().map(|b| b.instrs.len()).sum()
    }
}

/// How an inline-allocated array lays out child object state (paper §5.3 and
/// the OOPACK discussion in §6.3).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ArrayLayoutKind {
    /// Element state stored contiguously per element: `(i, j) → i*k + j`.
    Interleaved,
    /// One plane per child field ("Fortran style" parallel arrays, which the
    /// paper credits for OOPACK's cache behavior): `(i, j) → j*n + i`.
    Parallel,
}

/// Where the state of an inlined child object lives inside its container.
///
/// For object containers, `slots[j]` is the index into the container class's
/// layout where the child's `j`-th field is stored (the first child field
/// replaces the removed reference slot; the rest are appended — paper §5.2,
/// Figure 11).
///
/// For array containers, the logical child field `j` of element `i` is
/// addressed per [`ArrayLayoutKind`].
#[derive(Clone, Debug)]
pub struct InlineLayout {
    /// The class of the inlined child object.
    pub child_class: ClassId,
    /// Names of the child's fields, in the child class's layout order.
    pub child_fields: Vec<Symbol>,
    /// For object containers: container-layout slot of each child field.
    /// Empty for array containers.
    pub slots: Vec<usize>,
    /// `Some` for array containers.
    pub array_kind: Option<ArrayLayoutKind>,
}

impl InlineLayout {
    /// Number of words of child state.
    pub fn width(&self) -> usize {
        self.child_fields.len()
    }

    /// Index of `field` within the child's layout, if present.
    pub fn child_field_index(&self, field: Symbol) -> Option<usize> {
        self.child_fields.iter().position(|&f| f == field)
    }
}

/// A whole-program IR unit.
#[derive(Clone, Debug)]
pub struct Program {
    /// Shared name interner.
    pub interner: Interner,
    /// All classes. Index 0 is the synthetic `$Main` class.
    pub classes: IdxVec<ClassId, Class>,
    /// All methods.
    pub methods: IdxVec<MethodId, Method>,
    /// All declared fields.
    pub fields: IdxVec<FieldId, Field>,
    /// All globals.
    pub globals: IdxVec<GlobalId, Global>,
    /// Inline layouts introduced by the transformation.
    pub layouts: IdxVec<LayoutId, InlineLayout>,
    /// Number of allocation sites handed out so far.
    pub site_count: u32,
    /// The entry method (`fn main`).
    pub entry: MethodId,
}

impl Program {
    /// Allocates a fresh allocation-site id.
    pub fn fresh_site(&mut self) -> SiteId {
        let s = SiteId::new(self.site_count as usize);
        self.site_count += 1;
        s
    }

    /// The synthetic class that hosts free functions.
    pub fn main_class(&self) -> ClassId {
        ClassId::new(0)
    }

    /// Resolves a class by name.
    pub fn class_by_name(&self, name: &str) -> Option<ClassId> {
        let sym = self.interner.get(name)?;
        self.classes
            .iter_enumerated()
            .find(|(_, c)| c.name == sym)
            .map(|(id, _)| id)
    }

    /// Resolves a method `Class::selector` by names.
    pub fn method_by_name(&self, class: &str, selector: &str) -> Option<MethodId> {
        let class = self.class_by_name(class)?;
        let sel = self.interner.get(selector)?;
        self.classes[class].methods.get(&sel).copied()
    }

    /// Full field layout of `class`: superclass fields first, then own
    /// fields, recursively.
    pub fn layout_of(&self, class: ClassId) -> Vec<FieldId> {
        let mut out = match self.classes[class].parent {
            Some(p) => self.layout_of(p),
            None => Vec::new(),
        };
        out.extend(self.classes[class].own_fields.iter().copied());
        out
    }

    /// Slot index of the field named `field` in `class`'s layout.
    pub fn slot_of(&self, class: ClassId, field: Symbol) -> Option<usize> {
        self.layout_of(class)
            .iter()
            .position(|&f| self.fields[f].name == field)
    }

    /// The declared [`FieldId`] visible as `field` on `class` (searching up
    /// the superclass chain).
    pub fn field_of(&self, class: ClassId, field: Symbol) -> Option<FieldId> {
        let mut cur = Some(class);
        while let Some(c) = cur {
            if let Some(&fid) = self.classes[c]
                .own_fields
                .iter()
                .find(|&&f| self.fields[f].name == field)
            {
                return Some(fid);
            }
            cur = self.classes[c].parent;
        }
        None
    }

    /// Looks up the method invoked by sending `selector` to an instance of
    /// `class` (searching up the superclass chain).
    pub fn lookup_method(&self, class: ClassId, selector: Symbol) -> Option<MethodId> {
        let mut cur = Some(class);
        while let Some(c) = cur {
            if let Some(&m) = self.classes[c].methods.get(&selector) {
                return Some(m);
            }
            cur = self.classes[c].parent;
        }
        None
    }

    /// Returns `true` if `sub` is `sup` or a (transitive) subclass of it.
    pub fn is_subclass(&self, sub: ClassId, sup: ClassId) -> bool {
        let mut cur = Some(sub);
        while let Some(c) = cur {
            if c == sup {
                return true;
            }
            cur = self.classes[c].parent;
        }
        false
    }

    /// All classes that are `class` or inherit from it.
    pub fn subclasses_of(&self, class: ClassId) -> Vec<ClassId> {
        self.classes
            .ids()
            .filter(|&c| self.is_subclass(c, class))
            .collect()
    }

    /// Human-readable `Class::method` name.
    pub fn method_display(&self, m: MethodId) -> String {
        let method = &self.methods[m];
        format!(
            "{}::{}",
            self.interner.resolve(self.classes[method.class].name),
            self.interner.resolve(method.name)
        )
    }

    /// Total instruction count across all methods (a cheap size proxy).
    pub fn total_instrs(&self) -> usize {
        self.methods.iter().map(Method::instr_count).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a tiny two-class hierarchy by hand.
    fn sample() -> Program {
        let mut interner = Interner::new();
        let base = interner.intern("Base");
        let derived = interner.intern("Derived");
        let fa = interner.intern("a");
        let fb = interner.intern("b");
        let mut classes: IdxVec<ClassId, Class> = IdxVec::new();
        let mut fields: IdxVec<crate::program::FieldId, Field> = IdxVec::new();
        let main = classes.push(Class {
            name: interner.intern("$Main"),
            parent: None,
            own_fields: vec![],
            methods: HashMap::new(),
        });
        assert_eq!(main.index(), 0);
        let base_id = classes.push(Class {
            name: base,
            parent: None,
            own_fields: vec![],
            methods: HashMap::new(),
        });
        let derived_id = classes.push(Class {
            name: derived,
            parent: Some(base_id),
            own_fields: vec![],
            methods: HashMap::new(),
        });
        let fa_id = fields.push(Field {
            name: fa,
            owner: base_id,
            annotations: vec![],
        });
        let fb_id = fields.push(Field {
            name: fb,
            owner: derived_id,
            annotations: vec![],
        });
        classes[base_id].own_fields.push(fa_id);
        classes[derived_id].own_fields.push(fb_id);
        let mut methods = IdxVec::new();
        let entry = methods.push(Method {
            name: interner.intern("main"),
            class: main,
            param_count: 0,
            temp_count: 1,
            blocks: std::iter::once(Block::default()).collect(),
        });
        Program {
            interner,
            classes,
            methods,
            fields,
            globals: IdxVec::new(),
            layouts: IdxVec::new(),
            site_count: 0,
            entry,
        }
    }

    #[test]
    fn layout_concatenates_parent_prefix() {
        let p = sample();
        let base = p.class_by_name("Base").unwrap();
        let derived = p.class_by_name("Derived").unwrap();
        assert_eq!(p.layout_of(base).len(), 1);
        let dl = p.layout_of(derived);
        assert_eq!(dl.len(), 2);
        // Parent's field comes first: prefix conformance.
        assert_eq!(p.fields[dl[0]].owner, base);
    }

    #[test]
    fn slot_and_field_resolution() {
        let p = sample();
        let derived = p.class_by_name("Derived").unwrap();
        let a = p.interner.get("a").unwrap();
        let b = p.interner.get("b").unwrap();
        assert_eq!(p.slot_of(derived, a), Some(0));
        assert_eq!(p.slot_of(derived, b), Some(1));
        assert!(p.field_of(derived, a).is_some());
        let missing = p.interner.get("zzz");
        assert!(missing.is_none());
    }

    #[test]
    fn subclass_relation() {
        let p = sample();
        let base = p.class_by_name("Base").unwrap();
        let derived = p.class_by_name("Derived").unwrap();
        assert!(p.is_subclass(derived, base));
        assert!(p.is_subclass(base, base));
        assert!(!p.is_subclass(base, derived));
        assert_eq!(p.subclasses_of(base), vec![base, derived]);
    }

    #[test]
    fn fresh_sites_are_unique() {
        let mut p = sample();
        let a = p.fresh_site();
        let b = p.fresh_site();
        assert_ne!(a, b);
        assert_eq!(p.site_count, 2);
    }
}
