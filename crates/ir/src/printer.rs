//! Human-readable IR dumps, for debugging and golden tests.

use crate::instr::{Instr, Terminator};
use crate::program::{Method, MethodId, Program};
use std::fmt::Write as _;

/// Renders one method as text.
pub fn print_method(program: &Program, mid: MethodId) -> String {
    let method = &program.methods[mid];
    let mut out = String::new();
    let _ = writeln!(
        out,
        "method {} (params={}, temps={}) {{",
        program.method_display(mid),
        method.param_count,
        method.temp_count
    );
    for (bb, block) in method.blocks.iter_enumerated() {
        let _ = writeln!(out, "{bb}:");
        for instr in &block.instrs {
            let _ = writeln!(out, "    {}", print_instr(program, method, instr));
        }
        let _ = writeln!(out, "    {}", print_term(&block.term));
    }
    out.push_str("}\n");
    out
}

/// Renders the whole program as text.
pub fn print_program(program: &Program) -> String {
    let mut out = String::new();
    for (cid, class) in program.classes.iter_enumerated() {
        let _ = write!(out, "class {} ", program.interner.resolve(class.name));
        if let Some(p) = class.parent {
            let _ = write!(
                out,
                ": {} ",
                program.interner.resolve(program.classes[p].name)
            );
        }
        let fields: Vec<_> = program
            .layout_of(cid)
            .iter()
            .map(|&f| program.interner.resolve(program.fields[f].name).to_owned())
            .collect();
        let _ = writeln!(out, "[{}]", fields.join(", "));
    }
    for (lid, layout) in program.layouts.iter_enumerated() {
        let _ = writeln!(
            out,
            "{lid}: child={} slots={:?} array={:?}",
            program
                .interner
                .resolve(program.classes[layout.child_class].name),
            layout.slots,
            layout.array_kind
        );
    }
    for mid in program.methods.ids() {
        out.push_str(&print_method(program, mid));
    }
    out
}

fn print_instr(program: &Program, _method: &Method, instr: &Instr) -> String {
    let name = |s: oi_support::Symbol| program.interner.resolve(s).to_owned();
    match instr {
        Instr::Const { dst, value } => format!("{dst} = const {value}"),
        Instr::Move { dst, src } => format!("{dst} = {src}"),
        Instr::Unary { dst, op, src } => format!("{dst} = {op:?} {src}"),
        Instr::Binary { dst, op, lhs, rhs } => format!("{dst} = {op:?} {lhs}, {rhs}"),
        Instr::New {
            dst,
            class,
            args,
            site,
        } => format!(
            "{dst} = new {}({}) @{site}",
            name(program.classes[*class].name),
            temps(args)
        ),
        Instr::NewArray { dst, len, site } => format!("{dst} = array({len}) @{site}"),
        Instr::NewArrayInline {
            dst,
            len,
            layout,
            site,
        } => {
            format!("{dst} = array-inline({len}, {layout}) @{site}")
        }
        Instr::GetField { dst, obj, field } => format!("{dst} = {obj}.{}", name(*field)),
        Instr::SetField { obj, field, src } => format!("{obj}.{} = {src}", name(*field)),
        Instr::ArrayGet { dst, arr, idx } => format!("{dst} = {arr}[{idx}]"),
        Instr::ArraySet { arr, idx, src } => format!("{arr}[{idx}] = {src}"),
        Instr::GetGlobal { dst, global } => {
            format!("{dst} = global {}", name(program.globals[*global].name))
        }
        Instr::SetGlobal { global, src } => {
            format!("global {} = {src}", name(program.globals[*global].name))
        }
        Instr::Send {
            dst,
            recv,
            selector,
            args,
        } => {
            format!("{dst} = send {recv}.{}({})", name(*selector), temps(args))
        }
        Instr::CallStatic {
            dst,
            method,
            recv,
            args,
        } => format!(
            "{dst} = call {}({recv}; {})",
            program.method_display(*method),
            temps(args)
        ),
        Instr::CallBuiltin { dst, builtin, args } => {
            format!("{dst} = builtin {builtin:?}({})", temps(args))
        }
        Instr::MakeInterior { dst, obj, layout } => format!("{dst} = &{obj}.<{layout}>"),
        Instr::MakeInteriorElem {
            dst,
            arr,
            idx,
            layout,
        } => {
            format!("{dst} = &{arr}[{idx}].<{layout}>")
        }
        Instr::Print { src } => format!("print {src}"),
    }
}

fn print_term(term: &Terminator) -> String {
    match term {
        Terminator::Jump(bb) => format!("jump {bb}"),
        Terminator::Branch {
            cond,
            then_bb,
            else_bb,
        } => {
            format!("branch {cond} ? {then_bb} : {else_bb}")
        }
        Terminator::Return(t) => format!("return {t}"),
        Terminator::Unterminated => "<unterminated>".to_owned(),
    }
}

fn temps(ts: &[crate::program::Temp]) -> String {
    ts.iter()
        .map(|t| t.to_string())
        .collect::<Vec<_>>()
        .join(", ")
}

#[cfg(test)]
mod tests {
    use crate::lower::compile;

    #[test]
    fn prints_methods_and_classes() {
        let p = compile(
            "class A { field f; method get() { return self.f; } }
             fn main() { var a = new A(); a.f = 1; print a.get(); }",
        )
        .unwrap();
        let text = super::print_program(&p);
        assert!(text.contains("class A"));
        assert!(text.contains("A::get"));
        assert!(text.contains("send"));
        assert!(text.contains("return"));
    }

    #[test]
    fn print_is_stable_for_same_program() {
        let src = "fn main() { print 42; }";
        let a = super::print_program(&compile(src).unwrap());
        let b = super::print_program(&compile(src).unwrap());
        assert_eq!(a, b);
    }
}
