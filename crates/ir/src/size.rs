//! Generated-code-size model (paper Figure 15).
//!
//! The paper measures kilobytes of stripped object code emitted by G++ for
//! the Concert-generated C++. We model size as a weighted sum of IR
//! instructions over *reachable* methods — cloning that is later inlined and
//! dead code eliminated therefore does not count, matching the paper's
//! observation that object inlining does not grow (and usually shrinks)
//! generated code.

use crate::cfg::reachable_methods;
use crate::instr::{Instr, Terminator};
use crate::program::{MethodId, Program};

/// Modeled byte cost of one instruction, loosely calibrated to a RISC
/// instruction-selection of each IR operation.
pub fn instr_bytes(instr: &Instr) -> usize {
    match instr {
        Instr::Const { .. } => 4,
        Instr::Move { .. } => 4,
        Instr::Unary { .. } => 4,
        Instr::Binary { .. } => 4,
        // Allocation: call to allocator + header setup + constructor call.
        Instr::New { args, .. } => 24 + 4 * args.len(),
        Instr::NewArray { .. } => 24,
        Instr::NewArrayInline { .. } => 28,
        Instr::GetField { .. } => 8,
        Instr::SetField { .. } => 8,
        Instr::ArrayGet { .. } => 12,
        Instr::ArraySet { .. } => 12,
        Instr::GetGlobal { .. } => 8,
        Instr::SetGlobal { .. } => 8,
        // Dynamic dispatch sequence: load class, load table, indirect call.
        Instr::Send { args, .. } => 20 + 4 * args.len(),
        Instr::CallStatic { args, .. } => 8 + 4 * args.len(),
        Instr::CallBuiltin { .. } => 8,
        // Address arithmetic only.
        Instr::MakeInterior { .. } => 4,
        Instr::MakeInteriorElem { .. } => 8,
        Instr::Print { .. } => 8,
    }
}

/// Modeled byte cost of a terminator.
pub fn term_bytes(term: &Terminator) -> usize {
    match term {
        Terminator::Jump(_) => 4,
        Terminator::Branch { .. } => 8,
        Terminator::Return(_) => 8,
        Terminator::Unterminated => 0,
    }
}

/// Modeled size of one method in bytes, including prologue/epilogue.
pub fn method_bytes(program: &Program, mid: MethodId) -> usize {
    let method = &program.methods[mid];
    let mut bytes = 16; // prologue + epilogue
    for block in method.blocks.iter() {
        for instr in &block.instrs {
            bytes += instr_bytes(instr);
        }
        bytes += term_bytes(&block.term);
    }
    bytes
}

/// A program-size report.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SizeReport {
    /// Number of methods reachable from the entry point.
    pub reachable_methods: usize,
    /// Total methods in the program (including never-emitted clones).
    pub total_methods: usize,
    /// Modeled bytes of generated code over reachable methods.
    pub code_bytes: usize,
}

impl SizeReport {
    /// Code size in (fractional) kilobytes, as Figure 15 reports.
    pub fn kilobytes(&self) -> f64 {
        self.code_bytes as f64 / 1024.0
    }
}

/// Measures the program's generated-code size over reachable methods only.
pub fn measure(program: &Program) -> SizeReport {
    let reach = reachable_methods(program);
    let code_bytes = reach.iter().map(|&m| method_bytes(program, m)).sum();
    SizeReport {
        reachable_methods: reach.len(),
        total_methods: program.methods.len(),
        code_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::compile;

    #[test]
    fn bigger_programs_cost_more() {
        let small = measure(&compile("fn main() { print 1; }").unwrap());
        let large = measure(
            &compile("fn main() { print 1; print 2; print 3; print 4; print 5; }").unwrap(),
        );
        assert!(large.code_bytes > small.code_bytes);
    }

    #[test]
    fn unreachable_methods_do_not_count() {
        let with_dead = measure(
            &compile("fn dead() { print 1; print 2; print 3; } fn main() { print 1; }").unwrap(),
        );
        let without = measure(&compile("fn main() { print 1; }").unwrap());
        assert_eq!(with_dead.code_bytes, without.code_bytes);
        assert_eq!(with_dead.reachable_methods, without.reachable_methods);
        assert!(with_dead.total_methods > without.total_methods);
    }

    #[test]
    fn dynamic_send_costs_more_than_static_call() {
        use crate::instr::Instr;
        use crate::program::{MethodId, Temp};
        let mut i = oi_support::Interner::new();
        let sel = i.intern("m");
        let send = Instr::Send {
            dst: Temp::new(0),
            recv: Temp::new(1),
            selector: sel,
            args: vec![],
        };
        let call = Instr::CallStatic {
            dst: Temp::new(0),
            method: MethodId::new(0),
            recv: Temp::new(1),
            args: vec![],
        };
        assert!(instr_bytes(&send) > instr_bytes(&call));
    }

    #[test]
    fn kilobytes_converts() {
        let r = SizeReport {
            reachable_methods: 1,
            total_methods: 1,
            code_bytes: 2048,
        };
        assert!((r.kilobytes() - 2.0).abs() < 1e-9);
    }
}
