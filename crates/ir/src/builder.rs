//! Imperative construction of [`Method`] bodies.
//!
//! Used by the AST lowerer and by tests that build IR directly.

use crate::instr::{ConstValue, Instr, Terminator};
use crate::program::{Block, BlockId, ClassId, Method, Temp};
use oi_support::{IdxVec, Symbol};

/// Builds one method body block-by-block.
///
/// # Examples
///
/// ```
/// use oi_ir::builder::FunctionBuilder;
/// use oi_ir::{ConstValue, Instr, Terminator, ClassId};
/// # let mut interner = oi_support::Interner::new();
/// let mut b = FunctionBuilder::new(interner.intern("f"), ClassId::new(0), 1);
/// let t = b.new_temp();
/// b.push(Instr::Const { dst: t, value: ConstValue::Int(7) });
/// b.terminate(Terminator::Return(t));
/// let method = b.finish();
/// assert_eq!(method.param_count, 1);
/// assert_eq!(method.blocks.len(), 1);
/// ```
#[derive(Debug)]
pub struct FunctionBuilder {
    name: Symbol,
    class: ClassId,
    param_count: u32,
    next_temp: u32,
    blocks: IdxVec<BlockId, Block>,
    current: BlockId,
}

impl FunctionBuilder {
    /// Starts a new method with `param_count` declared parameters.
    ///
    /// Temps `0..=param_count` are pre-allocated for `self` and the
    /// parameters; the entry block is created and made current.
    pub fn new(name: Symbol, class: ClassId, param_count: u32) -> Self {
        let mut blocks = IdxVec::new();
        let entry = blocks.push(Block::default());
        Self {
            name,
            class,
            param_count,
            next_temp: param_count + 1,
            blocks,
            current: entry,
        }
    }

    /// Allocates a fresh temp.
    pub fn new_temp(&mut self) -> Temp {
        let t = Temp::new(self.next_temp as usize);
        self.next_temp += 1;
        t
    }

    /// The temp holding `self`.
    pub fn self_temp(&self) -> Temp {
        Temp::new(0)
    }

    /// The temp holding parameter `i` (0-based).
    pub fn param_temp(&self, i: u32) -> Temp {
        assert!(i < self.param_count, "parameter index out of range");
        Temp::new(1 + i as usize)
    }

    /// Creates a new (empty, unterminated) block without switching to it.
    pub fn new_block(&mut self) -> BlockId {
        self.blocks.push(Block::default())
    }

    /// Makes `bb` the current insertion point.
    ///
    /// # Panics
    ///
    /// Panics if `bb` was not created by this builder.
    pub fn switch_to(&mut self, bb: BlockId) {
        assert!(self.blocks.contains_id(bb), "unknown block");
        self.current = bb;
    }

    /// The current insertion block.
    pub fn current_block(&self) -> BlockId {
        self.current
    }

    /// Returns `true` if the current block already has a terminator.
    pub fn is_terminated(&self) -> bool {
        !matches!(self.blocks[self.current].term, Terminator::Unterminated)
    }

    /// Appends an instruction to the current block.
    ///
    /// Instructions after a terminator would be unreachable; pushing onto a
    /// terminated block is silently dropped (this happens with code after
    /// `return`, which the language permits).
    pub fn push(&mut self, instr: Instr) {
        if !self.is_terminated() {
            self.blocks[self.current].instrs.push(instr);
        }
    }

    /// Convenience: materialize a constant into a fresh temp.
    pub fn push_const(&mut self, value: ConstValue) -> Temp {
        let dst = self.new_temp();
        self.push(Instr::Const { dst, value });
        dst
    }

    /// Sets the current block's terminator if it does not have one yet.
    pub fn terminate(&mut self, term: Terminator) {
        if !self.is_terminated() {
            self.blocks[self.current].term = term;
        }
    }

    /// Finishes the method. Any still-unterminated block gets
    /// `return nil` appended (via a dedicated nil temp), so the result always
    /// verifies.
    pub fn finish(mut self) -> Method {
        // A single shared nil temp for implicit returns.
        let mut nil_temp = None;
        for bb in self.blocks.ids().collect::<Vec<_>>() {
            if matches!(self.blocks[bb].term, Terminator::Unterminated) {
                let t = *nil_temp.get_or_insert_with(|| {
                    let t = Temp::new(self.next_temp as usize);
                    self.next_temp += 1;
                    t
                });
                self.blocks[bb].instrs.push(Instr::Const {
                    dst: t,
                    value: ConstValue::Nil,
                });
                self.blocks[bb].term = Terminator::Return(t);
            }
        }
        Method {
            name: self.name,
            class: self.class,
            param_count: self.param_count,
            temp_count: self.next_temp,
            blocks: self.blocks,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oi_support::Interner;

    fn builder() -> (Interner, FunctionBuilder) {
        let mut i = Interner::new();
        let name = i.intern("f");
        (i, FunctionBuilder::new(name, ClassId::new(0), 2))
    }

    #[test]
    fn params_are_preallocated() {
        let (_, b) = builder();
        assert_eq!(b.self_temp().index(), 0);
        assert_eq!(b.param_temp(0).index(), 1);
        assert_eq!(b.param_temp(1).index(), 2);
    }

    #[test]
    fn fresh_temps_after_params() {
        let (_, mut b) = builder();
        assert_eq!(b.new_temp().index(), 3);
        assert_eq!(b.new_temp().index(), 4);
    }

    #[test]
    fn unterminated_blocks_get_return_nil() {
        let (_, mut b) = builder();
        let other = b.new_block();
        b.switch_to(other);
        let m = b.finish();
        for blk in m.blocks.iter() {
            assert!(matches!(blk.term, Terminator::Return(_)));
        }
        // Both blocks share the synthesized nil temp.
        assert_eq!(m.temp_count, 4);
    }

    #[test]
    fn pushes_after_terminator_are_dropped() {
        let (_, mut b) = builder();
        let t = b.push_const(ConstValue::Int(1));
        b.terminate(Terminator::Return(t));
        b.push(Instr::Move { dst: t, src: t });
        let m = b.finish();
        assert_eq!(m.blocks[m.entry()].instrs.len(), 1);
    }

    #[test]
    fn double_terminate_keeps_first() {
        let (_, mut b) = builder();
        let t = b.push_const(ConstValue::Int(1));
        b.terminate(Terminator::Return(t));
        b.terminate(Terminator::Jump(BlockId::new(0)));
        let m = b.finish();
        assert!(matches!(m.blocks[m.entry()].term, Terminator::Return(_)));
    }
}
