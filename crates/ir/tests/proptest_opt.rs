//! Property test: the IR cleanup pipeline (constructor explosion, method
//! inlining, copy propagation, store forwarding, dead object/code
//! elimination, CFG simplification) preserves observable behavior.
//!
//! These passes run on *both* sides of every paper comparison, so their
//! soundness is foundational. Random programs come from the in-repo
//! seeded PRNG, so every failure reproduces from its printed seed.

use oi_support::rng::XorShift64;

#[derive(Clone, Debug)]
enum Op {
    New(u8, i8, i8),
    Mutate(u8, i8),
    PrintField(u8),
    PrintSum(u8, u8),
    Store(u8, u8),
    Call(u8),
    Cond(u8, i8),
    Loop(u8),
    Global(u8),
    PrintGlobalField,
}

fn random_op(rng: &mut XorShift64) -> Op {
    let k = rng.below(3) as u8;
    let a = rng.range_i64(-128, 128) as i8;
    let b = rng.range_i64(-128, 128) as i8;
    match rng.below(10) {
        0 => Op::New(k, a, b),
        1 => Op::Mutate(k, a),
        2 => Op::PrintField(k),
        3 => Op::PrintSum(k, rng.below(3) as u8),
        4 => Op::Store(k, rng.below(3) as u8),
        5 => Op::Call(k),
        6 => Op::Cond(k, a),
        7 => Op::Loop(1 + rng.below(4) as u8),
        8 => Op::Global(k),
        _ => Op::PrintGlobalField,
    }
}

fn random_ops(rng: &mut XorShift64, max: usize) -> Vec<Op> {
    (0..rng.below(max)).map(|_| random_op(rng)).collect()
}

fn render(ops: &[Op]) -> String {
    use std::fmt::Write;
    let mut body = String::new();
    for op in ops {
        match op {
            Op::New(k, a, b) => {
                let _ = writeln!(body, "  o{k} = new Pair({a}, {b});");
            }
            Op::Mutate(k, v) => {
                let _ = writeln!(body, "  o{k}.a = {v};");
            }
            Op::PrintField(k) => {
                let _ = writeln!(body, "  print o{k}.a - o{k}.b;");
            }
            Op::PrintSum(a, b) => {
                let _ = writeln!(body, "  print o{a}.a + o{b}.b;");
            }
            Op::Store(a, b) => {
                let _ = writeln!(body, "  o{a}.peer = o{b};");
            }
            Op::Call(k) => {
                let _ = writeln!(body, "  print combine(o{k});");
            }
            Op::Cond(k, v) => {
                let _ = writeln!(
                    body,
                    "  if (o{k}.a < {v}) {{ o{k}.b = o{k}.b + 1; }} else {{ o{k}.b = o{k}.b - 1; }}"
                );
            }
            Op::Loop(n) => {
                let _ = writeln!(
                    body,
                    "  i = 0;\n  while (i < {n}) {{ acc = acc + o0.a; i = i + 1; }}"
                );
            }
            Op::Global(k) => {
                let _ = writeln!(body, "  G = o{k};");
            }
            Op::PrintGlobalField => {
                let _ = writeln!(body, "  if (!(G === nil)) {{ print G.a; }}");
            }
        }
    }
    format!(
        "global G;
class Pair {{ field a; field b; field peer;
  method init(x, y) {{ self.a = x; self.b = y; self.peer = nil; }}
  method sum() {{ return self.a + self.b; }}
}}
fn combine(p) {{ return p.sum() * 2 - p.a; }}
fn main() {{
  var o0 = new Pair(1, 2);
  var o1 = new Pair(3, 4);
  var o2 = new Pair(5, 6);
  var i = 0;
  var acc = 0;
  G = nil;
{body}  print acc;
  print o0.sum() + o1.sum() + o2.sum();
}}
"
    )
}

#[test]
fn optimizer_preserves_behavior() {
    for seed in 0..64u64 {
        let mut rng = XorShift64::new(seed);
        let ops = random_ops(&mut rng, 20);
        let source = render(&ops);
        let program = oi_ir::lower::compile(&source).unwrap_or_else(|e| {
            panic!(
                "seed {seed}: bad generator: {}\n{source}",
                e.render(&source)
            )
        });
        let mut optimized = program.clone();
        oi_ir::opt::optimize(&mut optimized, &oi_ir::opt::OptConfig::default());
        oi_ir::verify::verify(&optimized)
            .unwrap_or_else(|e| panic!("seed {seed}: optimizer broke the IR: {e:?}\n{source}"));

        let config = oi_vm::VmConfig::default();
        let before = oi_vm::run(&program, &config).expect("unoptimized runs");
        let after = oi_vm::run(&optimized, &config).expect("optimized runs");
        assert_eq!(
            before.output, after.output,
            "seed {seed}: optimizer changed output:\n{source}"
        );
        assert!(
            after.metrics.instructions <= before.metrics.instructions * 2,
            "seed {seed}: optimizer exploded the instruction count"
        );
    }
}

#[test]
fn optimizer_is_idempotent_enough() {
    // Running the pipeline twice must still verify and agree.
    for seed in 0..64u64 {
        let mut rng = XorShift64::new(seed);
        let ops = random_ops(&mut rng, 12);
        let source = render(&ops);
        let program = oi_ir::lower::compile(&source).unwrap();
        let mut once = program.clone();
        oi_ir::opt::optimize(&mut once, &oi_ir::opt::OptConfig::default());
        let mut twice = once.clone();
        oi_ir::opt::optimize(&mut twice, &oi_ir::opt::OptConfig::default());
        oi_ir::verify::verify(&twice).unwrap();
        let config = oi_vm::VmConfig::default();
        let a = oi_vm::run(&once, &config).unwrap();
        let b = oi_vm::run(&twice, &config).unwrap();
        assert_eq!(a.output, b.output, "seed {seed}");
    }
}
