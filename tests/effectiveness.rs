//! Pins the paper's §6.1 qualitative effectiveness findings, benchmark by
//! benchmark, against the real analysis.

use oi_benchmarks::{all_benchmarks, BenchSize};
use oi_core::pipeline::{optimize, InlineConfig};

fn report_for(name: &str) -> oi_core::EffectivenessReport {
    let bench = all_benchmarks(BenchSize::Small)
        .into_iter()
        .find(|b| b.name == name)
        .unwrap_or_else(|| panic!("unknown benchmark {name}"));
    let program = oi_ir::lower::compile(&bench.source).unwrap();
    optimize(&program, &InlineConfig::default()).report
}

fn inlined(report: &oi_core::EffectivenessReport, field: &str) -> bool {
    report.outcomes.iter().any(|o| o.name == field && o.inlined)
}

fn rejected(report: &oi_core::EffectivenessReport, field: &str) -> bool {
    report
        .outcomes
        .iter()
        .any(|o| o.name == field && !o.inlined)
}

#[test]
fn oopack_inlines_all_three_complex_arrays() {
    // "these numbers are inline allocated in C++ ... Our transformation
    // inlines these objects into their containing arrays."
    let r = report_for("oopack");
    assert_eq!(r.array_sites_inlined, 3, "{:#?}", r.outcomes);
    assert_eq!(r.fields_inlined, 0);
}

#[test]
fn richards_inlines_polymorphic_private_data() {
    // "Our transformation inlines the private data independently for each
    // subclass" — something C++ cannot declare.
    let r = report_for("richards");
    assert!(inlined(&r, "Task.rec"), "{:#?}", r.outcomes);
    assert!(inlined(&r, "Packet.dat"), "{:#?}", r.outcomes);
}

#[test]
fn richards_does_not_inline_the_polymorphic_task_table() {
    // "an array of pointers to tasks. The array is polymorphic ... and our
    // analysis does not distinguish different array elements."
    let r = report_for("richards");
    assert_eq!(r.array_sites_inlined, 0, "the task table must not inline");
}

#[test]
fn silo_inlines_wrappers_and_log_records() {
    // "Some wrapper objects for queues can be inlined into their
    // containers, and list items ... combined with their data."
    let r = report_for("silo");
    assert!(inlined(&r, "Station.queue"), "{:#?}", r.outcomes);
    assert!(inlined(&r, "Station.stats"), "{:#?}", r.outcomes);
    assert!(inlined(&r, "LogCell.rec"), "{:#?}", r.outcomes);
}

#[test]
fn silo_refuses_the_global_event_list() {
    // "our analysis cannot inline cons cells of the global event list,
    // because it cannot tell that a given event is in the list at most
    // once" — the aliasing limitation the paper reports.
    let r = report_for("silo");
    assert!(rejected(&r, "EvCell.ev"), "{:#?}", r.outcomes);
    assert!(!inlined(&r, "Event.station"));
}

#[test]
fn polyover_merges_result_cells_with_polygons() {
    // "result polygons are merged with the cons cells of their list,
    // reducing dynamic allocation."
    let r = report_for("polyover-array");
    assert!(inlined(&r, "ResCell.poly"), "{:#?}", r.outcomes);
    assert!(inlined(&r, "Poly.ll"));
    assert!(inlined(&r, "Poly.ur"));
    assert_eq!(r.array_sites_inlined, 2, "both polygon maps inline");
}

#[test]
fn polyover_list_inlines_map_cells() {
    // "a list of cons cells is inline allocated, which also tightens
    // loops."
    let r = report_for("polyover-list");
    assert!(inlined(&r, "MapCell.poly"), "{:#?}", r.outcomes);
    assert!(inlined(&r, "ResCell.poly"));
}

#[test]
fn automatic_matches_or_beats_cxx_on_every_benchmark() {
    // "Our analysis did as well or better than manual inline allocation on
    // all codes; there was no field manually declared inline in C++ that
    // our analysis did not find inlinable."
    for bench in all_benchmarks(BenchSize::Small) {
        let program = oi_ir::lower::compile(&bench.source).unwrap();
        let r = optimize(&program, &InlineConfig::default()).report;
        let auto = r.fields_inlined + r.array_sites_inlined;
        assert!(
            auto >= bench.ground_truth.cxx,
            "{}: auto {auto} < C++ {}",
            bench.name,
            bench.ground_truth.cxx
        );
        assert!(
            auto <= bench.ground_truth.ideal,
            "{}: auto {auto} exceeds the hand-determined ideal {} — the \
             analysis is inlining something aliasing-unsafe",
            bench.name,
            bench.ground_truth.ideal
        );
    }
}

#[test]
fn strictly_better_than_cxx_on_richards_silo_and_polyover() {
    // "We did better than C++ on Silo, Richards and polyover."
    for name in ["richards", "silo", "polyover-list"] {
        let bench = all_benchmarks(BenchSize::Small)
            .into_iter()
            .find(|b| b.name == name)
            .unwrap();
        let program = oi_ir::lower::compile(&bench.source).unwrap();
        let r = optimize(&program, &InlineConfig::default()).report;
        let auto = r.fields_inlined + r.array_sites_inlined;
        assert!(
            auto > bench.ground_truth.cxx,
            "{name}: auto {auto} should beat C++ {}",
            bench.ground_truth.cxx
        );
    }
}

#[test]
fn annotations_agree_with_measured_outcomes() {
    // Every field annotated @inline_cxx in our sources is found
    // automatically (the paper's "no C++-inline field we missed").
    for bench in all_benchmarks(BenchSize::Small) {
        let program = oi_ir::lower::compile(&bench.source).unwrap();
        let r = optimize(&program, &InlineConfig::default()).report;
        let cxx_sym = program.interner.get("inline_cxx");
        let Some(cxx_sym) = cxx_sym else { continue };
        for (fid, field) in program.fields.iter_enumerated() {
            let _ = fid;
            if !field.annotations.contains(&cxx_sym) {
                continue;
            }
            let name = format!(
                "{}.{}",
                program.interner.resolve(program.classes[field.owner].name),
                program.interner.resolve(field.name)
            );
            assert!(
                r.outcomes.iter().any(|o| o.name == name && o.inlined),
                "{}: C++-declared field {name} was not inlined: {:#?}",
                bench.name,
                r.outcomes
            );
        }
    }
}
