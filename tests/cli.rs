//! Integration tests of the `oic` command-line driver.

use std::io::Write as _;
use std::process::Command;

fn oic() -> Command {
    Command::new(env!("CARGO_BIN_EXE_oic"))
}

fn write_temp(name: &str, source: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("oi-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    let mut f = std::fs::File::create(&path).unwrap();
    f.write_all(source.as_bytes()).unwrap();
    path
}

const PROGRAM: &str = "
class Pt { field x; method init(a) { self.x = a; } }
class Box { field p; method init(a) { self.p = new Pt(a); } }
global KEEP;
fn main() {
  var b = new Box(21);
  KEEP = b;
  print b.p.x * 2;
}
";

#[test]
fn run_executes_and_prints() {
    let path = write_temp("run.oi", PROGRAM);
    let out = oic().args(["run", path.to_str().unwrap()]).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert_eq!(String::from_utf8_lossy(&out.stdout), "42\n");
}

#[test]
fn run_inline_matches_baseline_output() {
    let path = write_temp("run_inline.oi", PROGRAM);
    let base = oic().args(["run", path.to_str().unwrap()]).output().unwrap();
    let inl = oic().args(["run", "--inline", path.to_str().unwrap()]).output().unwrap();
    assert!(inl.status.success());
    assert_eq!(base.stdout, inl.stdout);
}

#[test]
fn compare_reports_inlined_fields() {
    let path = write_temp("compare.oi", PROGRAM);
    let out = oic().args(["compare", path.to_str().unwrap()]).output().unwrap();
    assert!(out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("outputs identical"), "{err}");
    assert!(err.contains("fields inlined: 1"), "{err}");
}

#[test]
fn report_lists_decisions() {
    let path = write_temp("report.oi", PROGRAM);
    let out = oic().args(["report", path.to_str().unwrap()]).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("INLINED  Box.p"), "{stdout}");
}

#[test]
fn dump_prints_ir() {
    let path = write_temp("dump.oi", PROGRAM);
    let out = oic().args(["dump", "--inline", path.to_str().unwrap()]).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("class Box"), "{stdout}");
    assert!(stdout.contains("layout"), "inlined dump should show layouts: {stdout}");
}

#[test]
fn parse_errors_are_reported_with_position() {
    let path = write_temp("broken.oi", "fn main() { print 1 + ; }");
    let out = oic().args(["run", path.to_str().unwrap()]).output().unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("error"), "{err}");
    assert!(err.contains(':'), "position expected: {err}");
}

#[test]
fn unknown_subcommand_shows_usage() {
    let out = oic().args(["bogus", "x.oi"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}
