//! Integration tests of the `oic` command-line driver.

use std::io::Write as _;
use std::process::Command;

fn oic() -> Command {
    Command::new(env!("CARGO_BIN_EXE_oic"))
}

fn write_temp(name: &str, source: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("oi-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    let mut f = std::fs::File::create(&path).unwrap();
    f.write_all(source.as_bytes()).unwrap();
    path
}

const PROGRAM: &str = "
class Pt { field x; method init(a) { self.x = a; } }
class Box { field p; method init(a) { self.p = new Pt(a); } }
global KEEP;
fn main() {
  var b = new Box(21);
  KEEP = b;
  print b.p.x * 2;
}
";

#[test]
fn run_executes_and_prints() {
    let path = write_temp("run.oi", PROGRAM);
    let out = oic()
        .args(["run", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(String::from_utf8_lossy(&out.stdout), "42\n");
}

#[test]
fn run_inline_matches_baseline_output() {
    let path = write_temp("run_inline.oi", PROGRAM);
    let base = oic()
        .args(["run", path.to_str().unwrap()])
        .output()
        .unwrap();
    let inl = oic()
        .args(["run", "--inline", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(inl.status.success());
    assert_eq!(base.stdout, inl.stdout);
}

#[test]
fn compare_reports_inlined_fields() {
    let path = write_temp("compare.oi", PROGRAM);
    let out = oic()
        .args(["compare", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("outputs identical"), "{err}");
    assert!(err.contains("fields inlined: 1"), "{err}");
}

#[test]
fn report_lists_decisions() {
    let path = write_temp("report.oi", PROGRAM);
    let out = oic()
        .args(["report", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("INLINED  Box.p"), "{stdout}");
}

#[test]
fn dump_prints_ir() {
    let path = write_temp("dump.oi", PROGRAM);
    let out = oic()
        .args(["dump", "--inline", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("class Box"), "{stdout}");
    assert!(
        stdout.contains("layout"),
        "inlined dump should show layouts: {stdout}"
    );
}

#[test]
fn parse_errors_are_reported_with_position() {
    let path = write_temp("broken.oi", "fn main() { print 1 + ; }");
    let out = oic()
        .args(["run", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("error"), "{err}");
    assert!(err.contains(':'), "position expected: {err}");
}

#[test]
fn unknown_subcommand_shows_usage() {
    let out = oic().args(["bogus", "x.oi"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

#[test]
fn unknown_flag_is_rejected() {
    let path = write_temp("badflag.oi", PROGRAM);
    let out = oic()
        .args(["run", "--wat", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown flag `--wat`"), "{err}");
}

#[test]
fn flag_command_mismatch_is_rejected() {
    let path = write_temp("mismatch.oi", PROGRAM);
    for (cmd, flag) in [
        ("report", "--inline"),
        ("compare", "--inline"),
        ("compare", "--profile"),
        ("dump", "--json"),
    ] {
        let out = oic()
            .args([cmd, flag, path.to_str().unwrap()])
            .output()
            .unwrap();
        assert_eq!(out.status.code(), Some(2), "{cmd} {flag} should exit 2");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains(flag), "{cmd} {flag}: {err}");
    }
}

#[test]
fn extra_positional_is_rejected() {
    let out = oic().args(["run", "a.oi", "b.oi"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
}

/// Pins the `oic.run.v1` schema: any key removal or rename here is a
/// breaking change for downstream consumers.
#[test]
fn run_json_schema_is_stable() {
    use oi_support::Json;
    let path = write_temp("run_json.oi", PROGRAM);
    let out = oic()
        .args([
            "run",
            "--inline",
            "--profile",
            "--json",
            path.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let doc = Json::parse(&String::from_utf8_lossy(&out.stdout)).expect("valid JSON");
    assert_eq!(doc.get("schema").and_then(Json::as_str), Some("oic.run.v1"));
    assert_eq!(doc.get("pipeline").and_then(Json::as_str), Some("inline"));
    assert_eq!(doc.get("output").and_then(Json::as_str), Some("42\n"));
    let metrics = doc.get("metrics").expect("metrics object");
    for key in [
        "cycles",
        "instructions",
        "heap_reads",
        "allocations",
        "cache_hit_rate",
    ] {
        assert!(metrics.get(key).is_some(), "metrics.{key} missing");
    }
    let census = doc.get("allocation_census").and_then(Json::as_arr).unwrap();
    assert!(census
        .iter()
        .any(|e| e.get("class").and_then(Json::as_str) == Some("Box")));
    let profile = doc.get("profile").expect("profile present with --profile");
    assert!(profile.get("methods").and_then(Json::as_arr).is_some());
    assert!(profile.get("sites").and_then(Json::as_arr).is_some());
    // Phase timings are present even without OIC_TRACE.
    let phases = doc.get("phases").and_then(Json::as_arr).unwrap();
    assert!(
        phases
            .iter()
            .any(|p| p.get("name").and_then(Json::as_str) == Some("vm.run")),
        "expected a vm.run phase entry"
    );
    let report = doc.get("report").expect("report present with --inline");
    assert!(report.get("decisions").and_then(Json::as_arr).is_some());
}

/// Pins the `oic.compare.v1` schema, including per-field decisions with
/// provenance reason codes and per-phase wall-clock timings.
#[test]
fn compare_json_schema_is_stable() {
    use oi_support::Json;
    let path = write_temp("compare_json.oi", PROGRAM);
    let out = oic()
        .args(["compare", "--json", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let doc = Json::parse(&String::from_utf8_lossy(&out.stdout)).expect("valid JSON");
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some("oic.compare.v1")
    );
    let base = doc.get("baseline").expect("baseline metrics");
    let inl = doc.get("inlined").expect("inlined metrics");
    assert!(base.get("cycles").and_then(Json::as_i64).unwrap() > 0);
    assert!(
        inl.get("allocations").and_then(Json::as_i64).unwrap()
            < base.get("allocations").and_then(Json::as_i64).unwrap()
    );
    assert!(doc.get("speedup").and_then(Json::as_f64).unwrap() > 1.0);
    let decisions = doc
        .get("report")
        .and_then(|r| r.get("decisions"))
        .and_then(Json::as_arr)
        .unwrap();
    let boxp = decisions
        .iter()
        .find(|d| d.get("field").and_then(Json::as_str) == Some("Box.p"))
        .expect("Box.p decision");
    assert_eq!(boxp.get("code").and_then(Json::as_str), Some("inlined"));
    let phases = doc.get("phases").and_then(Json::as_arr).unwrap();
    let analyze = phases
        .iter()
        .find(|p| p.get("name").and_then(Json::as_str) == Some("pipeline.analyze"))
        .expect("pipeline.analyze phase timing");
    assert!(analyze.get("total_us").and_then(Json::as_i64).is_some());
    assert!(analyze.get("count").and_then(Json::as_i64).unwrap() > 0);
    let counters = doc.get("counters").expect("counters object");
    assert!(
        counters
            .get("analysis.rounds")
            .and_then(Json::as_i64)
            .unwrap()
            > 0
    );
}

/// Pins `oic.report.v1` and `oic.explain.v1`.
#[test]
fn report_and_explain_json_schemas_are_stable() {
    use oi_support::Json;
    let path = write_temp("report_json.oi", PROGRAM);
    let out = oic()
        .args(["report", "--json", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let doc = Json::parse(&String::from_utf8_lossy(&out.stdout)).unwrap();
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some("oic.report.v1")
    );
    let report = doc.get("report").unwrap();
    assert!(report
        .get("total_object_fields")
        .and_then(Json::as_i64)
        .is_some());
    assert!(report.get("provenance").and_then(Json::as_arr).is_some());

    let out = oic()
        .args(["explain", "--json", path.to_str().unwrap(), "Box.p"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let doc = Json::parse(&String::from_utf8_lossy(&out.stdout)).unwrap();
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some("oic.explain.v1")
    );
    assert_eq!(doc.get("inlined"), Some(&Json::Bool(true)));
    let chain = doc.get("chain").and_then(Json::as_arr).unwrap();
    assert!(!chain.is_empty());
    assert_eq!(chain[0].get("code").and_then(Json::as_str), Some("inlined"));
}

#[test]
fn explain_unknown_field_fails_and_lists_known() {
    let path = write_temp("explain_unknown.oi", PROGRAM);
    let out = oic()
        .args(["explain", path.to_str().unwrap(), "Box.zzz"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("no decision recorded"), "{err}");
    assert!(
        err.contains("Box.p"),
        "should list fields with decisions: {err}"
    );
}

#[test]
fn explain_names_the_rejecting_rule() {
    // `===` on the stored Pt keeps Box.p out-of-line (DESIGN §4 rule 3).
    let src = "
class Pt { field x; method init(a) { self.x = a; } }
class Box { field p; method init(a) { self.p = new Pt(a); } }
global KEEP;
fn main() {
  var b = new Box(21);
  KEEP = b;
  print b.p === b.p;
  print b.p.x * 2;
}
";
    let path = write_temp("explain_reject.oi", src);
    let out = oic()
        .args(["explain", path.to_str().unwrap(), "Box.p"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("kept out-of-line"), "{stdout}");
    assert!(stdout.contains("rule 3"), "{stdout}");
}

/// `oic bench` forwards to the oi-bench CLI: same usage text, same
/// strict exit-2 discipline.
#[test]
fn bench_passthrough_shares_the_oi_bench_cli() {
    let out = oic().args(["bench"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("snapshot"), "{err}");
    assert!(err.contains("compare"), "{err}");

    let out = oic().args(["bench", "wat"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains(
        "unknown command `wat` (snapshot|compare|loadgen|tenantload|restartload|brownoutload)"
    ));

    let out = oic().args(["bench", "--help"]).output().unwrap();
    assert_eq!(out.status.code(), Some(0));
    assert!(String::from_utf8_lossy(&out.stdout).contains("oi.bench.v1"));
}

/// A one-round analysis budget exhausts on any real program; the compile
/// must still land (globally widened, flagged `degraded`) with the
/// exhaustion recorded as explainable `<pipeline>` provenance.
#[test]
fn starved_budget_degrades_with_tier_and_provenance() {
    use oi_support::Json;
    let path = write_temp("degraded.oi", PROGRAM);
    let out = oic()
        .args([
            "report",
            "--json",
            "--max-rounds",
            "1",
            path.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let doc = Json::parse(&String::from_utf8_lossy(&out.stdout)).unwrap();
    let report = doc.get("report").unwrap();
    assert_eq!(report.get("degraded"), Some(&Json::Bool(true)));
    assert_eq!(
        report.get("tier").and_then(Json::as_str),
        Some("guarded-full"),
        "budget exhaustion degrades in place; it does not descend tiers"
    );
    let prov = report.get("provenance").and_then(Json::as_arr).unwrap();
    assert!(
        prov.iter().any(|s| {
            s.get("field").and_then(Json::as_str) == Some("<pipeline>")
                && s.get("code").and_then(Json::as_str) == Some("budget-exhausted")
        }),
        "expected a budget-exhausted provenance step: {prov:?}"
    );
    // The pseudo-field is explainable like any other decision subject.
    let out = oic()
        .args([
            "explain",
            "--max-rounds",
            "1",
            path.to_str().unwrap(),
            "<pipeline>",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("budget-exhausted"), "{stdout}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("budget exhausted"), "{err}");
}

/// `oic batch` forwards to the panic-isolated batch driver and emits a
/// schema-stable `oi.batch.v1` document.
#[test]
fn batch_compiles_a_directory_and_reports_tiers() {
    use oi_support::Json;
    let dir = std::env::temp_dir().join("oi-cli-tests-batch");
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("one.oi"), PROGRAM).unwrap();
    std::fs::write(dir.join("two.oi"), PROGRAM).unwrap();
    let out = oic()
        .args(["batch", "--json", dir.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let doc = Json::parse(&String::from_utf8_lossy(&out.stdout)).unwrap();
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some("oi.batch.v1")
    );
    assert_eq!(doc.get("ok"), Some(&Json::Bool(true)));
    assert_eq!(
        doc.get("tier_counts")
            .and_then(|t| t.get("guarded-full"))
            .and_then(Json::as_i64),
        Some(2)
    );

    // A starved budget degrades jobs but fails none.
    let out = oic()
        .args([
            "batch",
            "--json",
            "--max-rounds",
            "1",
            "--keep-going",
            dir.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let doc = Json::parse(&String::from_utf8_lossy(&out.stdout)).unwrap();
    assert_eq!(doc.get("ok"), Some(&Json::Bool(true)));
    assert!(doc.get("degraded").and_then(Json::as_i64).unwrap() > 0);

    // Usage errors keep the strict exit-2 discipline.
    let out = oic().args(["batch"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let out = oic().args(["batch", "--wat"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
}

/// Unusable input arguments are usage errors (exit 2) with typed
/// diagnostics, not raw OS errors or panics.
#[test]
fn unusable_inputs_get_typed_exit_2_diagnostics() {
    // A directory where a file is expected.
    let dir = std::env::temp_dir().join("oi-cli-tests-dir");
    std::fs::create_dir_all(&dir).unwrap();
    let out = oic().args(["run", dir.to_str().unwrap()]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("is a directory"), "{err}");
    assert!(err.contains("oic batch"), "should point at batch: {err}");

    // An empty path argument.
    let out = oic().args(["run", ""]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("empty file path"), "{err}");

    // A file that is not UTF-8.
    let path = std::env::temp_dir().join("oi-cli-tests-bin.oi");
    std::fs::write(&path, b"fn main\xff\xfe() {}").unwrap();
    let out = oic()
        .args(["run", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("not valid UTF-8"), "{err}");
    assert!(err.contains("offset"), "should locate the bad byte: {err}");

    // A missing file stays a typed diagnostic too.
    let out = oic().args(["run", "no-such-file.oi"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
}

/// `oic run --checked` validates inline-heap invariants; a clean checked
/// run exits 0, reports its check count, and the `--json` document grows
/// an additive `sanitizer` field.
#[test]
fn run_checked_reports_clean_execution() {
    use oi_support::Json;
    let path = write_temp("checked.oi", PROGRAM);
    let out = oic()
        .args(["run", "--inline", "--checked", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(String::from_utf8_lossy(&out.stdout), "42\n");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("checked execution (full) clean"), "{err}");

    let out = oic()
        .args([
            "run",
            "--inline",
            "--checked=basic",
            "--json",
            path.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let doc = Json::parse(&String::from_utf8_lossy(&out.stdout)).unwrap();
    let san = doc
        .get("sanitizer")
        .expect("sanitizer field with --checked");
    assert_eq!(san.get("level").and_then(Json::as_str), Some("basic"));
    assert_eq!(san.get("total_findings").and_then(Json::as_i64), Some(0));
    assert_eq!(
        san.get("findings").and_then(Json::as_arr).map(|a| a.len()),
        Some(0)
    );

    // Unchecked runs keep the schema unchanged: no sanitizer field.
    let out = oic()
        .args(["run", "--inline", "--json", path.to_str().unwrap()])
        .output()
        .unwrap();
    let doc = Json::parse(&String::from_utf8_lossy(&out.stdout)).unwrap();
    assert!(doc.get("sanitizer").is_none());

    // Flag discipline: a bad level and a non-run command both exit 2.
    let out = oic()
        .args(["run", "--checked=bogus", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown check level"));
    let out = oic()
        .args(["compare", "--checked", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--checked"));
}

/// `oic chaos` forwards to the fault-injection driver: a single-fault
/// run detects and repairs it, emitting a schema-stable `oi.chaos.v1`
/// document, and usage errors keep the exit-2 discipline.
#[test]
fn chaos_passthrough_detects_an_injected_fault() {
    use oi_support::Json;
    let out = oic()
        .args(["chaos", "--fault", "skip-use-redirect", "--json"])
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let doc = Json::parse(&String::from_utf8_lossy(&out.stdout)).unwrap();
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some("oi.chaos.v1")
    );
    assert_eq!(doc.get("ok"), Some(&Json::Bool(true)));
    assert_eq!(doc.get("escaped").and_then(Json::as_i64), Some(0));
    let rows = doc.get("faults").and_then(Json::as_arr).unwrap();
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].get("detected"), Some(&Json::Bool(true)));

    let out = oic().args(["chaos", "--list"]).output().unwrap();
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    // 5 compiler fault classes plus the 7 storage I/O fault classes.
    assert_eq!(stdout.lines().count(), 12, "{stdout}");
    assert!(stdout.contains("wrong-devirt-target"), "{stdout}");
    assert!(stdout.contains("truncated-journal-tail"), "{stdout}");
    assert!(stdout.contains("torn-write"), "{stdout}");

    let out = oic().args(["chaos", "--fault", "wat"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown fault"));
    let out = oic().args(["chaos", "extra.oi"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
}

/// A single storage I/O fault through `oic chaos`: the corrupted store
/// must be detected, quarantined, and re-served with zero corrupt
/// responses, reported under the additive `io_faults` key.
#[test]
fn chaos_single_io_fault_is_detected_and_quarantined() {
    use oi_support::Json;
    let out = oic()
        .args(["chaos", "--fault", "bit-flip-body", "--json"])
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let doc = Json::parse(&String::from_utf8_lossy(&out.stdout)).unwrap();
    assert_eq!(doc.get("ok"), Some(&Json::Bool(true)));
    let rows = doc.get("io_faults").and_then(Json::as_arr).unwrap();
    assert_eq!(rows.len(), 1);
    assert_eq!(
        rows[0].get("fault").and_then(Json::as_str),
        Some("bit-flip-body")
    );
    assert_eq!(rows[0].get("detected"), Some(&Json::Bool(true)));
    assert_eq!(rows[0].get("quarantined"), Some(&Json::Bool(true)));
    assert_eq!(
        rows[0].get("corrupt_served").and_then(Json::as_i64),
        Some(0)
    );
}

/// `oic serve --cache-dir`: a second server process over the same
/// directory must answer the same source from the verified disk tier.
#[test]
fn serve_cache_dir_survives_a_restart() {
    use std::io::Write as _;
    use std::process::Stdio;
    let dir = std::env::temp_dir().join(format!("oic-cli-persist-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let session = |requests: &str| -> String {
        let mut child = oic()
            .args(["serve", "--cache-dir", dir.to_str().unwrap()])
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .unwrap();
        child
            .stdin
            .take()
            .unwrap()
            .write_all(requests.as_bytes())
            .unwrap();
        let out = child.wait_with_output().unwrap();
        assert_eq!(
            out.status.code(),
            Some(0),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout).into_owned()
    };
    let compile = r#"{"id": 1, "op": "compile", "source": "fn main() { print 6 * 7; }"}
{"id": 2, "op": "shutdown"}
"#;
    let first = session(compile);
    assert!(first.contains("\"cache\":\"miss\""), "{first}");
    let second = session(compile);
    assert!(second.contains("\"cache\":\"disk\""), "{second}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// `oic bench restartload`: usage errors keep the exit-2 discipline and
/// a scaled-down replay with one unclean kill meets its own gate.
#[test]
fn bench_restartload_gate_and_usage() {
    use oi_support::Json;
    let out = oic()
        .args(["bench", "restartload", "--wat"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage: oic bench restartload"));

    let out = oic()
        .args([
            "bench",
            "restartload",
            "--requests",
            "60",
            "--sources",
            "4",
            "--kills",
            "1",
            "--seed",
            "5",
            "--json",
        ])
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let doc = Json::parse(&String::from_utf8_lossy(&out.stdout)).unwrap();
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some("oi.restart.v1")
    );
    assert_eq!(doc.get("ok"), Some(&Json::Bool(true)));
    assert_eq!(doc.get("corrupt_total").and_then(Json::as_i64), Some(0));
    assert_eq!(doc.get("recovered"), Some(&Json::Bool(true)));
}

#[test]
fn trace_json_streams_events_to_stderr() {
    use oi_support::Json;
    let path = write_temp("trace.oi", PROGRAM);
    let out = oic()
        .args(["run", "--inline", "--trace=json", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    let mut saw_contour = false;
    for line in err.lines().filter(|l| l.starts_with('{')) {
        let ev = Json::parse(line).unwrap_or_else(|e| panic!("bad trace line {line}: {e}"));
        if ev.get("name").and_then(Json::as_str) == Some("contour.new") {
            saw_contour = true;
        }
    }
    assert!(saw_contour, "expected contour.new events in: {err}");
}

/// `oic prof` golden tests: the `oi.prof.v1` document (hierarchical
/// compile stages whose self times sum to the total, plus per-build VM
/// profiles), the collapsed-stack export, and the exit-2 flag discipline.
#[test]
fn prof_json_document_is_schema_stable_and_accounts_for_all_time() {
    use oi_support::Json;
    let path = write_temp("prof.oi", PROGRAM);
    let out = oic()
        .args(["prof", "--json", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let doc = Json::parse(&String::from_utf8_lossy(&out.stdout)).unwrap();
    assert_eq!(doc.get("schema").and_then(Json::as_str), Some("oi.prof.v1"));

    // Stage accounting: self_sum_us is computed over the whole tree and
    // must land within rounding distance of the measured total.
    let compile = doc.get("compile").unwrap();
    let total = compile.get("total_us").and_then(Json::as_i64).unwrap();
    let self_sum = compile.get("self_sum_us").and_then(Json::as_i64).unwrap();
    fn count_nodes(stage: &Json) -> i64 {
        1 + stage
            .get("children")
            .and_then(Json::as_arr)
            .map(|c| c.iter().map(count_nodes).sum())
            .unwrap_or(0)
    }
    let stages = compile.get("stages").and_then(Json::as_arr).unwrap();
    let root = &stages[0];
    assert_eq!(root.get("name").and_then(Json::as_str), Some("compile"));
    let tolerance = count_nodes(root);
    assert!(
        (total - self_sum).abs() <= tolerance,
        "self/total leak: total {total}us, self-sum {self_sum}us (tolerance {tolerance}us)"
    );
    for key in ["count", "total_us", "self_us", "children"] {
        assert!(root.get(key).is_some(), "stage node missing {key}");
    }

    // Both builds ship metrics and the full profile tables.
    for build in ["baseline", "inlined"] {
        let side = doc.get("vm").unwrap().get(build).unwrap();
        assert!(side.get("wall_ns").and_then(Json::as_i64).is_some());
        assert!(side.get("metrics").unwrap().get("cycles").is_some());
        let profile = side.get("profile").unwrap();
        for table in ["methods", "sites", "opcodes", "accesses"] {
            assert!(profile.get(table).is_some(), "{build} missing {table}");
        }
        assert!(!profile
            .get("opcodes")
            .and_then(Json::as_arr)
            .unwrap()
            .is_empty());
    }
    assert!(doc.get("vm").unwrap().get("speedup").is_some());
}

#[test]
fn prof_collapse_emits_flamegraph_ready_stacks() {
    let path = write_temp("prof_collapse.oi", PROGRAM);
    let out = oic()
        .args(["prof", "--collapse", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(!stdout.trim().is_empty());
    for line in stdout.lines() {
        // `frame;frame;... value` — exactly what flamegraph.pl takes.
        let (stack, value) = line.rsplit_once(' ').expect("stack + value");
        assert!(!stack.is_empty(), "empty stack in {line}");
        value
            .parse::<u64>()
            .unwrap_or_else(|_| panic!("non-numeric value in {line}"));
    }
    assert!(stdout.lines().any(|l| l.starts_with("compile")), "{stdout}");
    assert!(
        stdout.lines().any(|l| l.starts_with("vm.baseline;")),
        "{stdout}"
    );
    assert!(
        stdout.lines().any(|l| l.starts_with("vm.inlined;")),
        "{stdout}"
    );
}

/// `oic serve` golden test: pins the `oi.serve.v1` envelope and the
/// `oi.metrics.v1` stats payload over a real piped session — compile
/// (miss), run of the same bytes (hit), stats, shutdown.
#[test]
fn serve_session_pins_envelope_and_metrics_schemas() {
    use oi_support::Json;
    use std::process::Stdio;
    let path = write_temp("serve_cli.oi", PROGRAM);
    let p = path.to_str().unwrap();
    let mut child = oic()
        .args(["serve"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    {
        let mut stdin = child.stdin.take().unwrap();
        for line in [
            format!("{{\"id\": 1, \"op\": \"compile\", \"path\": \"{p}\"}}"),
            format!("{{\"id\": 2, \"op\": \"run\", \"path\": \"{p}\"}}"),
            "{\"id\": 3, \"op\": \"stats\"}".to_string(),
            "{\"id\": 4, \"op\": \"shutdown\"}".to_string(),
        ] {
            writeln!(stdin, "{line}").unwrap();
        }
    }
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    let responses: Vec<Json> = stdout
        .lines()
        .map(|l| Json::parse(l).unwrap_or_else(|e| panic!("bad response line {l}: {e}")))
        .collect();
    assert_eq!(responses.len(), 4, "{stdout}");
    for (r, (id, op, cache)) in responses.iter().zip([
        (1, "compile", "miss"),
        (2, "run", "hit"),
        (3, "stats", "none"),
        (4, "shutdown", "none"),
    ]) {
        assert_eq!(r.get("schema").and_then(Json::as_str), Some("oi.serve.v1"));
        assert_eq!(r.get("id").and_then(Json::as_i64), Some(id));
        assert_eq!(r.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(r.get("op").and_then(Json::as_str), Some(op));
        assert_eq!(r.get("cache").and_then(Json::as_str), Some(cache));
        assert_eq!(
            r.get("brownout_tier").and_then(Json::as_str),
            Some("guarded-full"),
            "an unstressed server serves every response at full tier"
        );
        assert!(r.get("wall_us").and_then(Json::as_i64).is_some());
        assert!(r.get("payload").is_some());
    }
    // The compile payload is oic.report.v1-shaped; the run payload is
    // oic.run.v1-shaped and executed the cached artifact.
    let compile = responses[0].get("payload").unwrap();
    assert_eq!(
        compile.get("schema").and_then(Json::as_str),
        Some("oic.report.v1")
    );
    assert!(compile
        .get("report")
        .and_then(|r| r.get("decisions"))
        .is_some());
    let run = responses[1].get("payload").unwrap();
    assert_eq!(run.get("schema").and_then(Json::as_str), Some("oic.run.v1"));
    assert_eq!(run.get("output").and_then(Json::as_str), Some("42\n"));
    assert!(run.get("metrics").and_then(|m| m.get("cycles")).is_some());
    // The stats payload is the oi.metrics.v1 registry export, and its
    // counters reflect the session so far: one miss, one hit.
    let metrics = responses[2].get("payload").unwrap();
    assert_eq!(
        metrics.get("schema").and_then(Json::as_str),
        Some("oi.metrics.v1")
    );
    let counters = metrics.get("counters").expect("counters object");
    assert_eq!(counters.get("cache.hits").and_then(Json::as_i64), Some(1));
    assert_eq!(counters.get("cache.misses").and_then(Json::as_i64), Some(1));
    assert_eq!(
        counters.get("serve.requests").and_then(Json::as_i64),
        Some(3)
    );
    assert!(metrics.get("gauges").is_some());
    let hists = metrics.get("histograms").expect("histograms object");
    let parse = hists.get("serve.parse_ns").expect("parse histogram");
    for key in ["count", "sum_ns", "p50_ns", "p90_ns", "p99_ns", "buckets"] {
        assert!(parse.get(key).is_some(), "histogram missing {key}");
    }
}

/// Overload-control golden test: pins the `health` op payload and the
/// typed `retry_after_ms` hint on shed responses, over a real piped
/// session that floods a one-slot admission queue with a single worker.
#[test]
fn serve_overload_pins_health_op_and_retry_hints() {
    use oi_support::Json;
    use std::process::Stdio;
    const FLOOD: i64 = 16;
    let mut child = oic()
        .args([
            "serve",
            "--jobs",
            "1",
            "--queue",
            "1",
            "--brownout-target-ms",
            "10000",
        ])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    {
        let mut stdin = child.stdin.take().unwrap();
        for i in 0..FLOOD {
            writeln!(
                stdin,
                "{{\"id\": {i}, \"op\": \"compile\", \
                 \"source\": \"fn main() {{ print {i} + 1; }}\"}}"
            )
            .unwrap();
        }
        // Let the queue drain before probing: the reader sheds *any*
        // line while the queue is full, health probes included.
        std::thread::sleep(std::time::Duration::from_millis(500));
        writeln!(stdin, "{{\"id\": 99, \"op\": \"health\"}}").unwrap();
    }
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    let responses: Vec<Json> = stdout
        .lines()
        .map(|l| Json::parse(l).unwrap_or_else(|e| panic!("bad response line {l}: {e}")))
        .collect();
    assert_eq!(responses.len(), FLOOD as usize + 1, "{stdout}");
    // The flood: every line is answered exactly once, as a compile or a
    // typed shed carrying the retry contract. With a one-slot queue and
    // sixteen requests written in one burst, at least one must shed.
    let mut served = 0;
    let mut shed = 0;
    for r in &responses[..FLOOD as usize] {
        assert_eq!(r.get("schema").and_then(Json::as_str), Some("oi.serve.v1"));
        if r.get("ok").and_then(Json::as_bool) == Some(true) {
            served += 1;
            continue;
        }
        shed += 1;
        let kind = r.get("error_kind").and_then(Json::as_str).unwrap_or("");
        assert_eq!(kind, "overloaded", "queue-full sheds are typed: {r}");
        // Reader-level sheds never reached dispatch, so they are id-less.
        assert_eq!(r.get("id"), Some(&Json::Null), "{r}");
        // The retry contract: at guarded-full, `overloaded` hints 25ms.
        assert_eq!(r.get("retry_after_ms").and_then(Json::as_i64), Some(25));
    }
    assert_eq!(served + shed, FLOOD);
    assert!(
        shed >= 1,
        "a one-slot queue must shed under a 16-line burst"
    );
    // The health probe: liveness without queueing semantics, pinned.
    let health = responses.last().unwrap();
    assert_eq!(health.get("ok"), Some(&Json::Bool(true)));
    assert_eq!(health.get("op").and_then(Json::as_str), Some("health"));
    assert_eq!(health.get("id").and_then(Json::as_i64), Some(99));
    let payload = health.get("payload").expect("health payload");
    assert_eq!(payload.get("status").and_then(Json::as_str), Some("ok"));
    assert_eq!(
        payload.get("brownout_tier").and_then(Json::as_str),
        Some("guarded-full")
    );
    assert_eq!(payload.get("breaker_open").and_then(Json::as_i64), Some(0));
    assert!(payload.get("in_flight").and_then(Json::as_i64).is_some());
}

/// `oic bench loadgen` golden test: pins the `oi.load.v1` document on a
/// small deterministic replay and checks the gate passes (exit 0).
#[test]
fn loadgen_json_document_is_schema_stable() {
    use oi_support::Json;
    let out = oic()
        .args([
            "bench",
            "loadgen",
            "--requests",
            "60",
            "--sources",
            "5",
            "--seed",
            "7",
            "--json",
        ])
        .output()
        .unwrap();
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let doc = Json::parse(&String::from_utf8_lossy(&out.stdout)).unwrap();
    assert_eq!(doc.get("schema").and_then(Json::as_str), Some("oi.load.v1"));
    for key in [
        "requests",
        "distinct_sources",
        "sampled_sources",
        "seed",
        "zipf_s",
        "cache_bytes",
        "hits",
        "misses",
        "errors",
        "hit_rate",
        "floor_hit_rate",
        "hit_ns",
        "miss_ns",
        "hit_p50_ns",
        "hit_p99_ns",
        "miss_p50_ns",
        "miss_p99_ns",
        "speedup_hit_p99_vs_miss_p50",
        "reconciled",
        "metrics",
        "ok",
    ] {
        assert!(doc.get(key).is_some(), "oi.load.v1 missing {key}");
    }
    assert_eq!(doc.get("requests").and_then(Json::as_i64), Some(60));
    assert_eq!(doc.get("errors").and_then(Json::as_i64), Some(0));
    assert_eq!(doc.get("reconciled"), Some(&Json::Bool(true)));
    assert_eq!(doc.get("ok"), Some(&Json::Bool(true)));
    // Every replayed request either hit or missed; misses equal the
    // distinct sources the trace actually touched.
    let hits = doc.get("hits").and_then(Json::as_i64).unwrap();
    let misses = doc.get("misses").and_then(Json::as_i64).unwrap();
    assert_eq!(hits + misses, 60);
    assert_eq!(
        Some(misses),
        doc.get("sampled_sources").and_then(Json::as_i64)
    );
    // The embedded registry export reconciles with the tallies.
    let metrics = doc.get("metrics").unwrap();
    assert_eq!(
        metrics.get("schema").and_then(Json::as_str),
        Some("oi.metrics.v1")
    );
    assert_eq!(
        metrics
            .get("counters")
            .and_then(|c| c.get("cache.hits"))
            .and_then(Json::as_i64),
        Some(hits)
    );

    // Flag discipline: bad values exit 2.
    let out = oic()
        .args(["bench", "loadgen", "--requests", "0"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let out = oic()
        .args(["bench", "loadgen", "--zipf-s", "-1"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn prof_rejects_bad_usage_with_exit_2() {
    let out = oic().args(["prof"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));

    let out = oic().args(["prof", "--wat", "x.oi"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));

    let path = write_temp("prof_usage.oi", PROGRAM);
    let out = oic()
        .args(["prof", "--json", "--collapse", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("mutually exclusive"));

    // Runtime failures (unreadable file) are exit 1, not usage errors.
    let out = oic().args(["prof", "/no/such/file.oi"]).output().unwrap();
    assert_eq!(out.status.code(), Some(1));
}
