//! Inline-array layout tests (§5.3, Figure 13 and the §6.3 OOPACK layout
//! discussion): interleaved and parallel layouts must agree observably,
//! and a field-wise sweep over a large array must cache better under the
//! parallel ("Fortran style") layout.

use oi_core::pipeline::{optimize, InlineConfig};
use oi_ir::ArrayLayoutKind;
use oi_vm::{run, VmConfig};

/// A field-wise (column) sweep: reads only `x` of every element, then only
/// `y` — the access pattern parallel layout is built for.
fn column_sweep_source(n: usize) -> String {
    format!(
        "class P {{ field x; field y; field z; field w;
           method init(a) {{ self.x = a; self.y = a + 1; self.z = a + 2; self.w = a + 3; }}
         }}
         fn main() {{
           var a = array({n});
           var i = 0;
           while (i < {n}) {{ a[i] = new P(i); i = i + 1; }}
           var sx = 0;
           var rounds = 0;
           while (rounds < 8) {{
             i = 0;
             while (i < {n}) {{ sx = sx + a[i].x; i = i + 1; }}
             rounds = rounds + 1;
           }}
           print sx;
         }}"
    )
}

fn run_with_layout(source: &str, kind: ArrayLayoutKind) -> (String, oi_vm::Metrics, usize) {
    let program = oi_ir::lower::compile(source).unwrap();
    let opt = optimize(
        &program,
        &InlineConfig {
            array_layout: kind,
            ..Default::default()
        },
    );
    let arrays = opt.report.array_sites_inlined;
    let result = run(&opt.program, &VmConfig::default()).unwrap();
    (result.output, result.metrics, arrays)
}

#[test]
fn layouts_agree_observably() {
    let source = column_sweep_source(64);
    let (out_i, _, a_i) = run_with_layout(&source, ArrayLayoutKind::Interleaved);
    let (out_p, _, a_p) = run_with_layout(&source, ArrayLayoutKind::Parallel);
    assert_eq!(a_i, 1);
    assert_eq!(a_p, 1);
    assert_eq!(out_i, out_p, "layout choice must be unobservable");
}

#[test]
fn parallel_layout_wins_column_sweeps_beyond_cache() {
    // 4096 elements x 4 fields x 8 bytes = 128 KiB of element state —
    // four times the 32 KiB simulated cache. The column sweep touches one
    // word per 4 under interleaved layout but is perfectly dense under
    // parallel layout.
    let source = column_sweep_source(4096);
    let (_, m_inter, _) = run_with_layout(&source, ArrayLayoutKind::Interleaved);
    let (_, m_par, _) = run_with_layout(&source, ArrayLayoutKind::Parallel);
    assert!(
        m_par.cache_misses * 2 < m_inter.cache_misses,
        "parallel layout should at least halve column-sweep misses: {} vs {}",
        m_par.cache_misses,
        m_inter.cache_misses
    );
    assert!(
        m_par.cycles < m_inter.cycles,
        "parallel layout should be faster on the sweep: {} vs {}",
        m_par.cycles,
        m_inter.cycles
    );
}

#[test]
fn mixed_field_access_agrees_between_layouts() {
    // Reads all fields per element plus mutations; exercises the
    // interleaved addressing path and whole-element copies.
    let source = "
        class P { field x; field y;
          method init(a, b) { self.x = a; self.y = b; }
        }
        fn main() {
          var a = array(16);
          var i = 0;
          while (i < 16) { a[i] = new P(i, 2 * i); i = i + 1; }
          a[3].x = 100;
          a[5].y = a[3].x + a[4].y;
          var s = 0;
          i = 0;
          while (i < 16) { s = s + a[i].x * 3 + a[i].y; i = i + 1; }
          print s;
        }";
    let program = oi_ir::lower::compile(source).unwrap();
    let plain = run(&program, &VmConfig::default()).unwrap();
    for kind in [ArrayLayoutKind::Interleaved, ArrayLayoutKind::Parallel] {
        let (out, _, arrays) = run_with_layout(source, kind);
        assert_eq!(arrays, 1);
        assert_eq!(out, plain.output, "{kind:?} diverged from the reference");
    }
}
