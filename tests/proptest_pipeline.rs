//! Property test: for randomly generated well-formed programs, the full
//! object-inlining pipeline preserves observable output.
//!
//! The generator builds programs over a fixed vocabulary — point objects,
//! a container class, a divergent task pair, global aliasing, identity
//! comparisons, loops — so that random combinations hit every decision
//! path (inline, copy, in-place, reject-for-aliasing, reject-for-identity)
//! and every rewrite shape.
//!
//! Cases are driven by the in-repo seeded PRNG (`oi_support::rng`), so a
//! failure reproduces exactly from the seed printed in its message.

use object_inlining::{baseline_default, compile, optimize_default, run_default};
use oi_support::rng::XorShift64;

/// One statement template for `main`.
#[derive(Clone, Debug)]
enum Op {
    /// `p<k> = new Pt(a, b);`
    NewPoint(u8, i8, i8),
    /// `c<k> = new Box(a);` (constructor builds the point)
    NewBox(u8, i8),
    /// `c<k> = new Wrap(p<j>);` (stores a possibly-aliased point)
    NewWrap(u8, u8),
    /// `p<k>.x = v;`
    MutatePoint(u8, i8),
    /// `c<k>.p = new Pt(a, b);` (reassignment of a candidate field)
    ReassignBox(u8, i8, i8),
    /// `c<k>.p.y = v;` (mutation through the container)
    MutateThroughBox(u8, i8),
    /// `print p<k>.x + p<k>.y;`
    PrintPoint(u8),
    /// `print c<k>.p.x * 2 + c<k>.p.y;`
    PrintBox(u8),
    /// `GLOB = p<k>;` (aliases the point globally)
    Alias(u8),
    /// `print GLOB === p<k>;` (identity)
    Identity(u8),
    /// `while (i < n) { c<k> = new Box(i); print c<k>.p.x; i = i + 1; }`
    Loop(u8, u8),
    /// `arr[<i>] = new Pt(a, b);` then print it back
    ArrayStore(u8, i8, i8),
    /// `print t<k>.go();` on one of the divergent tasks
    Task(u8),
}

fn random_op(rng: &mut XorShift64) -> Op {
    let k = rng.below(3) as u8;
    let a = rng.range_i64(-128, 128) as i8;
    let b = rng.range_i64(-128, 128) as i8;
    match rng.below(13) {
        0 => Op::NewPoint(k, a, b),
        1 => Op::NewBox(k, a),
        2 => Op::NewWrap(k, rng.below(3) as u8),
        3 => Op::MutatePoint(k, a),
        4 => Op::ReassignBox(k, a, b),
        5 => Op::MutateThroughBox(k, a),
        6 => Op::PrintPoint(k),
        7 => Op::PrintBox(k),
        8 => Op::Alias(k),
        9 => Op::Identity(k),
        10 => Op::Loop(k, 1 + rng.below(5) as u8),
        11 => Op::ArrayStore(rng.below(4) as u8, a, b),
        _ => Op::Task(rng.below(2) as u8),
    }
}

/// Renders the program for a sequence of ops.
fn render(ops: &[Op]) -> String {
    let mut body = String::new();
    for op in ops {
        use std::fmt::Write;
        match op {
            Op::NewPoint(k, a, b) => {
                let _ = writeln!(body, "  p{k} = new Pt({a}, {b});");
            }
            Op::NewBox(k, a) => {
                let _ = writeln!(body, "  c{k} = new Box({a});");
            }
            Op::NewWrap(k, j) => {
                let _ = writeln!(body, "  c{k} = new Wrap(p{j});");
            }
            Op::MutatePoint(k, v) => {
                let _ = writeln!(body, "  p{k}.x = {v};");
            }
            Op::ReassignBox(k, a, b) => {
                let _ = writeln!(body, "  c{k}.p = new Pt({a}, {b});");
            }
            Op::MutateThroughBox(k, v) => {
                let _ = writeln!(body, "  c{k}.p.y = {v};");
            }
            Op::PrintPoint(k) => {
                let _ = writeln!(body, "  print p{k}.x + p{k}.y;");
            }
            Op::PrintBox(k) => {
                let _ = writeln!(body, "  print c{k}.p.x * 2 + c{k}.p.y;");
            }
            Op::Alias(k) => {
                let _ = writeln!(body, "  GLOB = p{k};");
            }
            Op::Identity(k) => {
                let _ = writeln!(body, "  print GLOB === p{k};");
            }
            Op::Loop(k, n) => {
                let _ = writeln!(
                    body,
                    "  i = 0;\n  while (i < {n}) {{ c{k} = new Box(i); print c{k}.p.x; i = i + 1; }}"
                );
            }
            Op::ArrayStore(k, a, b) => {
                let _ = writeln!(
                    body,
                    "  arr[{k}] = new Pt({a}, {b});\n  print arr[{k}].x - arr[{k}].y;"
                );
            }
            Op::Task(k) => {
                let _ = writeln!(body, "  print t{k}.go();");
            }
        }
    }
    format!(
        "global GLOB;
class Pt {{ field x; field y;
  method init(a, b) {{ self.x = a; self.y = b; }}
}}
class Box {{ field p;
  method init(a) {{ self.p = new Pt(a, a + 1); }}
}}
class Wrap {{ field p;
  method init(q) {{ self.p = q; }}
}}
class ARec {{ field v; method init(a) {{ self.v = a; }} }}
class BRec {{ field v; field w; method init(a, b) {{ self.v = a; self.w = b; }} }}
class Task {{ field rec; }}
class ATask : Task {{
  method init() {{ self.rec = new ARec(10); }}
  method go() {{ return self.rec.v; }}
}}
class BTask : Task {{
  method init() {{ self.rec = new BRec(20, 30); }}
  method go() {{ return self.rec.v + self.rec.w; }}
}}
fn main() {{
  var p0 = new Pt(1, 2);
  var p1 = new Pt(3, 4);
  var p2 = new Pt(5, 6);
  var c0 = new Box(10);
  var c1 = new Box(20);
  var c2 = new Box(30);
  var t0 = new ATask();
  var t1 = new BTask();
  var arr = array(4);
  arr[0] = new Pt(0, 0);
  arr[1] = new Pt(1, 1);
  arr[2] = new Pt(2, 2);
  arr[3] = new Pt(3, 3);
  var i = 0;
  GLOB = p0;
{body}  print p0.x + p1.y + p2.x;
  print c0.p.y + c1.p.x + c2.p.y;
}}
"
    )
}

#[test]
fn pipeline_preserves_output() {
    for seed in 0..48u64 {
        let mut rng = XorShift64::new(seed);
        let count = 1 + rng.below(23);
        let ops: Vec<Op> = (0..count).map(|_| random_op(&mut rng)).collect();
        let source = render(&ops);
        let program = compile(&source).unwrap_or_else(|e| {
            panic!(
                "seed {seed}: generator produced invalid program: {}\n{source}",
                e.render(&source)
            )
        });
        oi_ir::verify::verify(&program).expect("lowered program verifies");

        let base = baseline_default(&program);
        let opt = optimize_default(&program);
        oi_ir::verify::verify(&opt.program).expect("optimized program verifies");

        let base_run = run_default(&base).expect("baseline runs");
        let opt_run = run_default(&opt.program).expect("optimized runs");
        assert_eq!(
            base_run.output, opt_run.output,
            "seed {seed}: output diverged for:\n{source}"
        );
        // The optimizer must never make the cost model worse by more than
        // noise (it can tie when nothing is inlinable).
        assert!(
            opt_run.metrics.cycles <= base_run.metrics.cycles + base_run.metrics.cycles / 4,
            "seed {seed}: inlined build much slower: {} vs {}\n{source}",
            opt_run.metrics.cycles,
            base_run.metrics.cycles,
        );
    }
}
