//! Language-semantics conformance battery: each program runs under the
//! plain interpreter, the baseline pipeline, and the object-inlining
//! pipeline, and all three must print the same thing. This guards the
//! optimizers against semantics drift anywhere in the language.

use object_inlining::{baseline_default, compile, optimize_default, run_default};

fn conform(source: &str, expected: &str) {
    let program = compile(source).unwrap_or_else(|e| panic!("{}", e.render(source)));
    let plain = run_default(&program).expect("plain run");
    assert_eq!(plain.output, expected, "interpreter semantics");
    let base = run_default(&baseline_default(&program)).expect("baseline run");
    assert_eq!(base.output, expected, "baseline pipeline semantics");
    let opt = run_default(&optimize_default(&program).program).expect("inlined run");
    assert_eq!(opt.output, expected, "inlining pipeline semantics");
}

#[test]
fn integer_arithmetic_and_division() {
    conform(
        "fn main() { print 7 / 2; print -7 / 2; print 7 % 3; print -7 % 3; }",
        "3\n-3\n1\n-1\n",
    );
}

#[test]
fn float_arithmetic_and_promotion() {
    conform(
        "fn main() { print 1 + 0.5; print 3.0 / 2; print 2 * 2.5; print 7.0 % 2.0; }",
        "1.5\n1.5\n5.0\n1.0\n",
    );
}

#[test]
fn comparison_semantics() {
    conform(
        "fn main() {
           print 1 < 2; print 2 <= 2; print 3 > 4; print 4 >= 4;
           print 1 == 1.0; print 1 != 2; print 0.5 < 1;
         }",
        "true\ntrue\nfalse\ntrue\ntrue\ntrue\ntrue\n",
    );
}

#[test]
fn short_circuit_evaluation_order() {
    conform(
        "global N;
         fn tick(v) { N = N + 1; return v; }
         fn main() {
           N = 0;
           if (tick(false) && tick(true)) { print 0; }
           print N;
           if (tick(true) || tick(true)) { print 1; }
           print N;
         }",
        "1\n1\n2\n",
    );
}

#[test]
fn block_scoping_and_shadowing() {
    conform(
        "fn main() {
           var x = 1;
           if (true) { var x = 2; print x; }
           print x;
           while (x < 3) { var x2 = x * 10; print x2; x = x + 1; }
           print x;
         }",
        "2\n1\n10\n20\n3\n",
    );
}

#[test]
fn nested_arrays_work() {
    conform(
        "fn main() {
           var grid = array(2);
           grid[0] = [1, 2];
           grid[1] = [3, 4];
           print grid[0][0] + grid[1][1];
           grid[1][0] = 30;
           print grid[1][0];
           print len(grid) + len(grid[0]);
         }",
        "5\n30\n4\n",
    );
}

#[test]
fn string_values_and_printing() {
    conform(
        r#"fn main() { var s = "hello world"; print s; print "a\tb"; }"#,
        "hello world\na\tb\n",
    );
}

#[test]
fn inheritance_super_method_resolution() {
    conform(
        "class A { method who() { return 1; } method describe() { return self.who() * 100; } }
         class B : A { method who() { return 2; } }
         class C : B { }
         fn main() {
           print (new A()).describe();
           print (new B()).describe();
           print (new C()).describe();
         }",
        "100\n200\n200\n",
    );
}

#[test]
fn recursion_and_mutual_recursion() {
    conform(
        "fn is_even(n) { if (n == 0) { return true; } return is_odd(n - 1); }
         fn is_odd(n) { if (n == 0) { return false; } return is_even(n - 1); }
         fn main() { print is_even(10); print is_odd(7); }",
        "true\ntrue\n",
    );
}

#[test]
fn early_return_skips_rest() {
    conform(
        "fn f(n) { if (n > 0) { return 1; } print 999; return 2; }
         fn main() { print f(5); print f(-5); }",
        "1\n999\n2\n",
    );
}

#[test]
fn implicit_nil_return() {
    conform("fn f() { } fn main() { print f(); }", "nil\n");
}

#[test]
fn negative_zero_and_float_formatting() {
    conform(
        "fn main() { print 0.1 + 0.2; print 1.0 / 3.0; print 100000000.0 * 10.0; }",
        "0.30000000000000004\n0.3333333333333333\n1000000000.0\n",
    );
}

#[test]
fn reference_equality_vs_structural() {
    conform(
        "class P { field x; method init(a) { self.x = a; } }
         fn main() {
           var a = new P(1);
           var b = new P(1);
           print a === b;
           print a === a;
           print a == b;   // == on references is identity too
           print 1 == 1;
           print nil === nil;
         }",
        "false\ntrue\nfalse\ntrue\ntrue\n",
    );
}

#[test]
fn globals_are_shared_everywhere() {
    conform(
        "global G;
         class C { method set(v) { G = v; return nil; } }
         fn read() { return G; }
         fn main() {
           G = 1;
           var c = new C();
           c.set(5);
           print read();
         }",
        "5\n",
    );
}

#[test]
fn while_loop_with_complex_exit() {
    conform(
        "fn main() {
           var i = 0;
           var total = 0;
           while (i < 10 && total < 12) {
             total = total + i;
             i = i + 1;
           }
           print i;
           print total;
         }",
        "6\n15\n",
    );
}

#[test]
fn builtin_conversions() {
    conform(
        "fn main() {
           print int(3.9); print int(-3.9); print float(2);
           print sqrt(16.0); print sqrt(2) * sqrt(2) > 1.99;
         }",
        "3\n-3\n2.0\n4.0\ntrue\n",
    );
}
