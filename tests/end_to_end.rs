//! End-to-end scenarios: every program is compiled, run through both the
//! baseline and the object-inlining pipeline, and must print identical
//! output. Each scenario targets a specific paper mechanism.

use object_inlining::{baseline_default, compile, optimize_default, run_default};

/// Runs a source through both pipelines and checks output equality.
/// Returns (baseline metrics, inlined metrics, fields inlined, arrays
/// inlined).
fn check(source: &str) -> (oi_vm::Metrics, oi_vm::Metrics, usize, usize) {
    let program = compile(source).unwrap_or_else(|e| panic!("{}", e.render(source)));
    oi_ir::verify::verify(&program).unwrap();
    let base = baseline_default(&program);
    let opt = optimize_default(&program);
    let base_run = run_default(&base).expect("baseline runs");
    let opt_run = run_default(&opt.program).expect("inlined runs");
    assert_eq!(
        base_run.output, opt_run.output,
        "object inlining changed output"
    );
    (
        base_run.metrics,
        opt_run.metrics,
        opt.report.fields_inlined,
        opt.report.array_sites_inlined,
    )
}

#[test]
fn paper_running_example() {
    let (_, _, fields, _) = check(
        "class Point { field x_pos; field y_pos;
           method init(x, y) { self.x_pos = x; self.y_pos = y; }
           method abs() { return sqrt(self.x_pos * self.x_pos + self.y_pos * self.y_pos); }
         }
         class Rectangle { field lower_left; field upper_right;
           method init(a, b, c, d) {
             self.lower_left = new Point(a, b);
             self.upper_right = new Point(c, d);
           }
         }
         class List { field head; field tail;
           method init(h, t) { self.head = h; self.tail = t; }
         }
         fn do_rectangle(a, b, c, d) {
           var r = new Rectangle(a, b, c, d);
           var l1 = new List(r.lower_left, nil);
           var l2 = new List(r.upper_right, nil);
           print l1.head.abs();
           print l2.head.abs();
         }
         fn main() {
           do_rectangle(1.0, 2.0, 3.0, 4.0);
           do_rectangle(5.0, 6.0, 7.0, 8.0);
         }",
    );
    assert_eq!(fields, 2, "both Rectangle point fields inline");
}

#[test]
fn subclass_shares_uniform_layout() {
    check(
        "class Pt { field x; method init(a) { self.x = a; } }
         class Rect { field ll; field w;
           method init(a, b) { self.ll = new Pt(a); self.w = b; }
           method left() { return self.ll.x; }
         }
         class Para : Rect { field skew;
           method skewed() { return self.left() + self.skew; }
         }
         fn main() {
           var r = new Rect(10, 3);
           var p = new Para(20, 4);
           p.skew = 5;
           print r.left();
           print p.skewed();
           print p.w;
         }",
    );
}

#[test]
fn mutation_through_container_is_visible() {
    check(
        "class Pt { field x; method init(a) { self.x = a; } }
         class Box { field p; method init(a) { self.p = new Pt(a); } }
         fn main() {
           var b = new Box(1);
           b.p.x = 99;
           var alias = b.p;
           alias.x = alias.x + 1;
           print b.p.x;
         }",
    );
}

#[test]
fn reassignment_of_inlined_field_copies() {
    check(
        "class Pt { field x; field y; method init(a, b) { self.x = a; self.y = b; } }
         class Box { field p;
           method init(a) { self.p = new Pt(a, a); }
           method reset(a, b) { self.p = new Pt(a, b); }
         }
         fn main() {
           var b = new Box(1);
           print b.p.x;
           b.reset(7, 8);
           print b.p.x + b.p.y;
         }",
    );
}

#[test]
fn interior_references_stored_in_other_objects() {
    check(
        "class Pt { field x; method init(a) { self.x = a; } }
         class Box { field p; method init(a) { self.p = new Pt(a); } }
         class Cell { field v; method init(v) { self.v = v; } }
         fn main() {
           var b = new Box(42);
           var c = new Cell(b.p);   // an interior reference escapes into Cell
           print c.v.x;
           b.p.x = 43;
           print c.v.x;             // sees the container's state
         }",
    );
}

#[test]
fn aliased_value_is_not_inlined_and_stays_correct() {
    let (_, _, fields, _) = check(
        "global KEEP;
         class Pt { field x; method init(a) { self.x = a; } }
         class Box { field p; method init(q) { self.p = q; } }
         fn main() {
           var pt = new Pt(5);
           KEEP = pt;
           var b = new Box(pt);
           KEEP.x = 6;
           print b.p.x;   // must see 6: pt is aliased
         }",
    );
    assert_eq!(fields, 0, "aliased child must not be inlined");
}

#[test]
fn identity_comparisons_stay_correct() {
    let (_, _, fields, _) = check(
        "class Pt { field x; method init(a) { self.x = a; } }
         class Box { field p; method init(a) { self.p = new Pt(a); } }
         fn main() {
           var b = new Box(1);
           var first = b.p;
           var second = b.p;
           print first === second;  // true either way, but blocks inlining
           print first === nil;
         }",
    );
    assert_eq!(fields, 0, "identity-compared children must not be inlined");
}

#[test]
fn array_of_objects_roundtrip() {
    let (base, inl, _, arrays) = check(
        "class Pt { field x; field y; method init(a, b) { self.x = a; self.y = b; } }
         fn main() {
           var a = array(32);
           var i = 0;
           while (i < 32) { a[i] = new Pt(i, i * 2); i = i + 1; }
           var s = 0;
           i = 0;
           while (i < 32) { s = s + a[i].x * a[i].y; i = i + 1; }
           print s;
           a[3].x = 1000;
           print a[3].x + a[3].y;
         }",
    );
    assert_eq!(arrays, 1);
    assert!(inl.allocations < base.allocations);
}

#[test]
fn polymorphic_divergent_private_data() {
    let (_, _, fields, _) = check(
        "class ARec { field v; method init(a) { self.v = a; } }
         class BRec { field v; field w; method init(a, b) { self.v = a; self.w = b; } }
         class Task { field rec; }
         class ATask : Task {
           method init() { self.rec = new ARec(10); }
           method go() { return self.rec.v; }
         }
         class BTask : Task {
           method init() { self.rec = new BRec(20, 30); }
           method go() { return self.rec.v + self.rec.w; }
         }
         fn main() {
           var a = new ATask();
           var b = new BTask();
           print a.go() + b.go();
         }",
    );
    assert_eq!(fields, 1, "Task.rec inlines divergently per subclass");
}

#[test]
fn cons_cells_merge_with_data() {
    let (base, inl, fields, _) = check(
        "class Rec { field a; field b; method init(x, y) { self.a = x; self.b = y; } }
         class Cell { field rec; field next;
           method init(x, y, next) { self.rec = new Rec(x, y); self.next = next; }
         }
         fn main() {
           var l = nil;
           var i = 0;
           while (i < 50) { l = new Cell(i, i * 3, l); i = i + 1; }
           var s = 0;
           var c = l;
           while (!(c === nil)) { s = s + c.rec.a + c.rec.b; c = c.next; }
           print s;
         }",
    );
    assert_eq!(fields, 1);
    assert!(
        inl.allocations * 2 <= base.allocations + 2,
        "merging must halve allocations: {} vs {}",
        inl.allocations,
        base.allocations
    );
}

#[test]
fn nil_initialized_field_is_not_inlined() {
    let (_, _, fields, _) = check(
        "class Pt { field x; method init(a) { self.x = a; } }
         class Box { field p;
           method init() { self.p = nil; }
           method fill(a) { self.p = new Pt(a); }
         }
         fn main() {
           var b = new Box();
           b.fill(3);
           print b.p.x;
         }",
    );
    assert_eq!(fields, 0);
}

#[test]
fn deep_nesting_three_levels() {
    check(
        "global KEEP;
         class A { field v; method init(x) { self.v = x; } }
         class B { field a; method init(x) { self.a = new A(x); } }
         class C { field b; method init(x) { self.b = new B(x); } }
         fn main() {
           var c = new C(11);
           KEEP = c;
           print c.b.a.v;
           c.b.a.v = 12;
           print KEEP.b.a.v;
         }",
    );
}

#[test]
fn error_behavior_matches_on_nil_dereference() {
    let source = "class Pt { field x; method init(a) { self.x = a; } }
         class Box { field p; method init(q) { self.p = q; } }
         fn main() {
           var b = new Box(nil);
           print b.p.x;
         }";
    let program = compile(source).unwrap();
    let base = baseline_default(&program);
    let opt = optimize_default(&program);
    let e1 = run_default(&base).unwrap_err();
    let e2 = run_default(&opt.program).unwrap_err();
    assert!(matches!(e1, oi_vm::VmError::NilDereference { .. }));
    assert!(matches!(e2, oi_vm::VmError::NilDereference { .. }));
}

#[test]
fn recursion_with_containers() {
    check(
        "class Pt { field x; method init(a) { self.x = a; } }
         class Box { field p; method init(a) { self.p = new Pt(a); } }
         fn sum(n) {
           if (n == 0) { return 0; }
           var b = new Box(n);
           return b.p.x + sum(n - 1);
         }
         fn main() { print sum(30); }",
    );
}

#[test]
fn floats_and_builtins_survive() {
    check(
        "class V { field x; field y; method init(a, b) { self.x = a; self.y = b; }
           method norm() { return sqrt(self.x * self.x + self.y * self.y); }
         }
         class Seg { field a; field b;
           method init(x1, y1, x2, y2) { self.a = new V(x1, y1); self.b = new V(x2, y2); }
           method len() {
             var dx = self.b.x - self.a.x;
             var dy = self.b.y - self.a.y;
             return sqrt(dx * dx + dy * dy);
           }
         }
         fn main() {
           var s = new Seg(0.0, 0.0, 3.0, 4.0);
           print s.len();
           print s.a.norm();
           print int(s.len()) + len([1, 2, 3]);
           print float(7) / 2.0;
         }",
    );
}

#[test]
fn census_shows_which_allocations_disappear() {
    // Cons cells merged with data: the Data class must vanish from the
    // inlined build's allocation census while Cell stays.
    let source = "
        class Data { field v; method init(a) { self.v = a; } }
        class Cell { field d; field next;
          method init(a, n) { self.d = new Data(a); self.next = n; }
        }
        fn main() {
          var l = nil;
          var i = 0;
          while (i < 20) { l = new Cell(i, l); i = i + 1; }
          var s = 0;
          var c = l;
          while (!(c === nil)) { s = s + c.d.v; c = c.next; }
          print s;
        }";
    let program = compile(source).unwrap();
    let base = run_default(&baseline_default(&program)).unwrap();
    let opt = run_default(&optimize_default(&program).program).unwrap();
    assert_eq!(base.allocations_of("Data"), 20);
    assert_eq!(base.allocations_of("Cell"), 20);
    assert_eq!(opt.allocations_of("Data"), 0, "{:?}", opt.allocation_census);
    assert_eq!(opt.allocations_of("Cell"), 20);
}
