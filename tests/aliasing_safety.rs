//! Demonstrates that assignment specialization (§4.2) is *load-bearing*:
//! with the safety check disabled (ablation-only configuration), the
//! transformation copies aliased objects and observably changes program
//! behavior; with it enabled, the offending fields are rejected and
//! behavior is preserved.

use oi_core::pipeline::{optimize, InlineConfig};
use oi_vm::{run, VmConfig};

/// The canonical aliasing hazard: the stored child stays reachable through
/// another name and is mutated after the store. Copying it into the
/// container breaks the alias.
const HAZARD: &str = "
    class Pt { field x; method init(a) { self.x = a; } }
    class Box { field p; method init(q) { self.p = q; } }
    fn main() {
      var pt = new Pt(1);
      var b = new Box(pt);
      pt.x = 2;          // must be visible through b.p
      print b.p.x;
    }";

#[test]
fn safety_check_rejects_the_hazard() {
    let program = oi_ir::lower::compile(HAZARD).unwrap();
    let opt = optimize(&program, &InlineConfig::default());
    assert_eq!(opt.report.fields_inlined, 0, "{:#?}", opt.report.outcomes);
    let out = run(&opt.program, &VmConfig::default()).unwrap();
    assert_eq!(out.output, "2\n");
}

#[test]
fn disabling_the_check_is_observably_unsound() {
    let program = oi_ir::lower::compile(HAZARD).unwrap();
    let baseline = run(&program, &VmConfig::default()).unwrap();
    assert_eq!(baseline.output, "2\n");

    let unsound = optimize(
        &program,
        &InlineConfig {
            check_assignments: false,
            ..Default::default()
        },
    );
    // The unsound configuration inlines the aliased field...
    assert_eq!(
        unsound.report.fields_inlined, 1,
        "{:#?}",
        unsound.report.outcomes
    );
    // ...and the copy hides the mutation: the program now prints 1.
    let out = run(&unsound.program, &VmConfig::default()).unwrap();
    assert_eq!(
        out.output, "1\n",
        "without assignment specialization the alias is broken — this is \
         exactly the behavior change the paper's analysis exists to prevent"
    );
}

#[test]
fn safe_program_unaffected_by_the_toggle() {
    // When the store really is by-value, both configurations agree.
    let source = "
        class Pt { field x; method init(a) { self.x = a; } }
        class Box { field p; method init(a) { self.p = new Pt(a); } }
        fn main() {
          var b = new Box(7);
          print b.p.x;
        }";
    let program = oi_ir::lower::compile(source).unwrap();
    let safe = optimize(&program, &InlineConfig::default());
    let unchecked = optimize(
        &program,
        &InlineConfig {
            check_assignments: false,
            ..Default::default()
        },
    );
    let a = run(&safe.program, &VmConfig::default()).unwrap();
    let b = run(&unchecked.program, &VmConfig::default()).unwrap();
    assert_eq!(a.output, b.output);
    assert_eq!(a.output, "7\n");
}
