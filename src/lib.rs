#![warn(missing_docs)]
//! # object-inlining
//!
//! A from-scratch reproduction of **"Automatic Inline Allocation of
//! Objects"** (Julian Dolby, PLDI 1997): a compiler optimization that
//! automatically allocates child objects *inside* their containers while
//! preserving a uniform object model.
//!
//! The workspace contains the whole system the paper describes or depends
//! on:
//!
//! | crate | role |
//! |---|---|
//! | [`lang`] (`oi-lang`) | front end for Izzy, a uniform-object-model language |
//! | [`ir`] (`oi-ir`) | register IR, verifier, optimizer (incl. scalar replacement) |
//! | [`analysis`] (`oi-analysis`) | Concert-style contour analysis + field tags |
//! | [`core`] (`oi-core`) | **object inlining**: use/assignment specialization + transformation |
//! | [`vm`] (`oi-vm`) | instrumented interpreter with cache & cycle cost model |
//! | [`benchmarks`] (`oi-benchmarks`) | OOPACK, Richards, Silo, polyover + manual variants |
//!
//! # Quickstart
//!
//! ```
//! use object_inlining::{compile, optimize_default, run_default};
//!
//! let source = "
//!     class Point { field x; field y;
//!       method init(a, b) { self.x = a; self.y = b; }
//!     }
//!     class Rect { field ll; field ur;
//!       method init(a, b) { self.ll = new Point(a, a); self.ur = new Point(b, b); }
//!     }
//!     fn main() {
//!       var r = new Rect(1.0, 4.0);
//!       print r.ur.x - r.ll.y;
//!     }";
//! let program = compile(source)?;
//! let optimized = optimize_default(&program);
//! assert!(optimized.report.fields_inlined >= 2);
//!
//! let before = run_default(&program)?;
//! let after = run_default(&optimized.program)?;
//! assert_eq!(before.output, after.output);
//! assert!(after.metrics.cycles <= before.metrics.cycles);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub use oi_analysis as analysis;
pub use oi_benchmarks as benchmarks;
pub use oi_core as core;
pub use oi_ir as ir;
pub use oi_lang as lang;
pub use oi_support as support;
pub use oi_vm as vm;

use oi_core::ladder::{optimize_with_ladder, LadderConfig, LadderOutcome};
use oi_core::pipeline::{InlineConfig, Optimized};
use oi_ir::Program;
use oi_support::{Budget, Diagnostic};
use oi_vm::{RunResult, VmConfig, VmError};

/// Parses and lowers Izzy source to IR.
///
/// # Errors
///
/// Returns the first parse or resolution diagnostic.
pub fn compile(source: &str) -> Result<Program, Diagnostic> {
    oi_ir::lower::compile(source)
}

/// Runs the full object-inlining pipeline with default settings.
///
/// Panics if the analysis diverges; resource-constrained or untrusted
/// inputs should go through [`optimize_resilient`], which degrades
/// instead of failing.
pub fn optimize_default(program: &Program) -> Optimized {
    oi_core::pipeline::optimize(program, &InlineConfig::default())
}

/// Runs the pipeline through the graceful-degradation ladder under a
/// resource [`Budget`]: never panics, never diverges. An exhausted budget
/// completes the analysis with globally widened (sound, coarser)
/// contours and flags the report `degraded`; a tier that panics, errors,
/// or fails its differential oracle descends one rung
/// (`guarded-full` → `reduced-precision` → `inlining-off`), recorded as
/// rule-6 provenance on the report.
pub fn optimize_resilient(program: &Program, budget: &Budget) -> LadderOutcome {
    optimize_with_ladder(program, &LadderConfig::default(), budget)
}

/// The comparison pipeline: devirtualization and cleanups, no inlining.
pub fn baseline_default(program: &Program) -> Program {
    oi_core::pipeline::baseline(program, &Default::default())
}

/// Executes a program under the default cost model.
///
/// # Errors
///
/// Propagates runtime failures ([`VmError`]).
pub fn run_default(program: &Program) -> Result<RunResult, VmError> {
    oi_vm::run(program, &VmConfig::default())
}
