//! `oic` — the object-inlining compiler driver.
//!
//! ```text
//! oic run <file.oi>                 run under the baseline pipeline
//! oic run --inline <file.oi>        run under the object-inlining pipeline
//! oic compare <file.oi>             run both, report metrics side by side
//! oic report <file.oi>              print inlining decisions and reasons
//! oic dump [--inline] <file.oi>     print the (optimized) IR
//! ```

use object_inlining::{baseline_default, compile, optimize_default, run_default};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: oic <run|compare|report|dump> [--inline] <file.oi>\n\
         \n\
         run      execute the program (baseline pipeline; --inline for the\n\
         \x20        object-inlining pipeline) and print metrics\n\
         compare  run both pipelines, check outputs match, show the delta\n\
         report   print per-field inlining decisions with reasons\n\
         dump     print the IR (after --inline: the transformed program)"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut command = None;
    let mut inline = false;
    let mut path = None;
    for a in &args {
        match a.as_str() {
            "--inline" => inline = true,
            "run" | "compare" | "report" | "dump" if command.is_none() => {
                command = Some(a.clone());
            }
            other if path.is_none() && !other.starts_with('-') => path = Some(other.to_owned()),
            _ => return usage(),
        }
    }
    let (Some(command), Some(path)) = (command, path) else { return usage() };

    let source = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("oic: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let program = match compile(&source) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("oic: {path}: {}", e.render(&source));
            return ExitCode::FAILURE;
        }
    };

    match command.as_str() {
        "run" => {
            let built = if inline {
                optimize_default(&program).program
            } else {
                baseline_default(&program)
            };
            match run_default(&built) {
                Ok(result) => {
                    print!("{}", result.output);
                    eprintln!("--- metrics ---\n{}", result.metrics);
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("oic: runtime error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "compare" => {
            let base = baseline_default(&program);
            let opt = optimize_default(&program);
            let base_run = match run_default(&base) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("oic: baseline runtime error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let opt_run = match run_default(&opt.program) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("oic: inlined runtime error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            if base_run.output != opt_run.output {
                eprintln!("oic: OUTPUT MISMATCH — this is a compiler bug");
                return ExitCode::FAILURE;
            }
            print!("{}", base_run.output);
            eprintln!("--- outputs identical ---");
            eprintln!(
                "cycles      {:>12} -> {:>12}  ({:.2}x)",
                base_run.metrics.cycles,
                opt_run.metrics.cycles,
                opt_run.metrics.speedup_over(&base_run.metrics)
            );
            eprintln!(
                "allocations {:>12} -> {:>12}",
                base_run.metrics.allocations, opt_run.metrics.allocations
            );
            eprintln!(
                "heap reads  {:>12} -> {:>12}",
                base_run.metrics.heap_reads, opt_run.metrics.heap_reads
            );
            eprintln!(
                "cache miss  {:>12} -> {:>12}",
                base_run.metrics.cache_misses, opt_run.metrics.cache_misses
            );
            eprintln!(
                "fields inlined: {} (+{} array sites)",
                opt.report.fields_inlined, opt.report.array_sites_inlined
            );
            ExitCode::SUCCESS
        }
        "report" => {
            let opt = optimize_default(&program);
            println!(
                "{} field(s) inlined, {} array site(s) inlined",
                opt.report.fields_inlined, opt.report.array_sites_inlined
            );
            for o in &opt.report.outcomes {
                if o.inlined {
                    println!("  INLINED  {}", o.name);
                } else {
                    println!("  kept     {} — {}", o.name, o.reason);
                }
            }
            ExitCode::SUCCESS
        }
        "dump" => {
            let built = if inline {
                optimize_default(&program).program
            } else {
                baseline_default(&program)
            };
            print!("{}", oi_ir::printer::print_program(&built));
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
