//! `oic` — the object-inlining compiler driver.
//!
//! ```text
//! oic run [--inline] [--profile] [--json] <file.oi>   execute and print metrics
//! oic compare [--json] <file.oi>                      run both pipelines, show the delta
//! oic report [--json] <file.oi>                       per-field inlining decisions
//! oic explain [--json] <file.oi> <Class.field>        decision provenance for one field
//! oic dump [--inline] <file.oi>                       print the (optimized) IR
//! oic prof [--json|--collapse] <file.oi>              hierarchical performance profile
//! ```
//!
//! All commands accept `--trace[=text|json]`; the `OIC_TRACE` environment
//! variable (`text`, `json`, `off`) does the same without a flag. `--json`
//! output is schema-stable (`oic.run.v1`, `oic.compare.v1`, `oic.report.v1`,
//! `oic.explain.v1`) and includes per-phase wall-clock timings.
//!
//! Every optimizing command compiles through the graceful-degradation
//! ladder: panics, pipeline errors, and oracle rejections descend a tier
//! instead of crashing, and `--max-rounds N` / `--deadline-ms N` arm an
//! analysis budget whose exhaustion soundly widens the analysis (the
//! report says `degraded`) rather than failing the compile. `oic batch`
//! applies the same machinery to whole directories with per-job panic
//! isolation.

use object_inlining::{baseline_default, compile, optimize_resilient};
use oi_core::ladder::LadderOutcome;
use oi_support::cli::{Arg, ArgScanner};
use oi_support::trace::{self, TraceMode, Tracer};
use oi_support::{Budget, Json};
use oi_vm::{run, CheckLevel, RunResult, VmConfig};
use std::process::ExitCode;
use std::rc::Rc;
use std::time::Duration;

const USAGE: &str =
    "usage: oic <run|compare|report|explain|dump|bench|prof|fuzz|batch|chaos|serve|client> [flags] <file.oi> [Class.field]\n\
    \n\
    run      execute the program (baseline pipeline; --inline for the\n\
    \x20        object-inlining pipeline) and print metrics\n\
    \x20        --profile  collect a per-method / per-site execution profile\n\
    \x20        --checked[=basic|full]\n\
    \x20                   checked execution: validate inline-heap invariants\n\
    \x20                   (findings go to stderr; any finding exits 1)\n\
    \x20        --max-heap-words N / --max-instructions N / --max-depth N\n\
    \x20                   override the VM's resource limits\n\
    compare  run both pipelines, check outputs match, show the delta\n\
    report   print per-field inlining decisions with reasons\n\
    explain  print the decision provenance chain for one Class.field\n\
    dump     print the IR (after --inline: the transformed program)\n\
    bench    benchmark observatory passthrough\n\
    \x20        (oic bench snapshot|compare|loadgen|tenantload|restartload|\n\
    \x20         brownoutload)\n\
    prof     hierarchical profiler: compile-stage self/total times plus\n\
    \x20        baseline-vs-inlined VM profiles (--json | --collapse)\n\
    fuzz     adversarial differential fuzzing (oic fuzz --runs N --seed S)\n\
    batch    panic-isolated fleet compilation (oic batch <dir> --deadline-ms N)\n\
    chaos    systematic fault injection against the detection lattice\n\
    \x20        (compiler faults, the service-layer matrix, and the\n\
    \x20         storage I/O fault matrix)\n\
    serve    long-lived compile server over a stdin/stdout JSON-lines\n\
    \x20        protocol with a content-addressed artifact cache and\n\
    \x20        fuel-sliced, quota-metered multi-tenant execution\n\
    \x20        (oic serve --jobs N --queue N --fuel-slice N\n\
    \x20         --max-instructions N --tenant-concurrent N\n\
    \x20         --cache-dir DIR --disk-bytes N ...; --cache-dir adds a\n\
    \x20         crash-safe persistent artifact tier with warm-restart\n\
    \x20         recovery; --brownout-target-ms / --watchdog-ms enable\n\
    \x20         adaptive overload control and wedge self-healing)\n\
    client   retrying JSON-lines client for a spawned serve child\n\
    \x20        (oic client --retries N --budget-ms N --serve-args \"...\";\n\
    \x20         request lines on stdin, honors typed retry_after_ms\n\
    \x20         hints with jittered exponential backoff)\n\
    \n\
    --json          machine-readable output (run, compare, report, explain)\n\
    --max-rounds N / --deadline-ms N\n\
    \x20              analysis resource budget; exhaustion degrades the\n\
    \x20              analysis (sound, coarser result) instead of failing\n\
    --trace[=MODE]  stream trace events to stderr (text or json);\n\
    \x20              the OIC_TRACE environment variable does the same";

struct Cli {
    command: String,
    path: String,
    field: Option<String>,
    inline: bool,
    json: bool,
    profile: bool,
    checked: Option<CheckLevel>,
    trace: Option<TraceMode>,
    max_heap_words: Option<u64>,
    max_instructions: Option<u64>,
    max_depth: Option<usize>,
    max_rounds: Option<u64>,
    deadline_ms: Option<u64>,
}

impl Cli {
    /// A fresh analysis budget from the `--max-rounds` / `--deadline-ms`
    /// flags (budgets are single-use: exhaustion is sticky).
    fn budget(&self) -> Budget {
        let mut b = Budget::unlimited();
        if let Some(rounds) = self.max_rounds {
            b = b.with_rounds(rounds);
        }
        if let Some(ms) = self.deadline_ms {
            b = b.with_deadline(Duration::from_millis(ms));
        }
        b
    }
}

fn parse_cli(args: &[String]) -> Result<Cli, String> {
    let mut command: Option<String> = None;
    let mut positionals: Vec<String> = Vec::new();
    let mut inline = false;
    let mut json = false;
    let mut profile = false;
    let mut checked: Option<CheckLevel> = None;
    let mut trace_flag: Option<TraceMode> = None;
    let mut max_heap_words: Option<u64> = None;
    let mut max_instructions: Option<u64> = None;
    let mut max_depth: Option<usize> = None;
    let mut max_rounds: Option<u64> = None;
    let mut deadline_ms: Option<u64> = None;
    let mut scanner = ArgScanner::new(args.to_vec());
    while let Some(arg) = scanner.next() {
        match arg? {
            Arg::Flag { name, value: None } => match name.as_str() {
                "inline" => inline = true,
                "json" => json = true,
                "profile" => profile = true,
                "checked" => checked = Some(CheckLevel::Full),
                "trace" => trace_flag = Some(TraceMode::Text),
                "max-heap-words" => {
                    max_heap_words = Some(parse_limit(&mut scanner, "--max-heap-words")?);
                }
                "max-instructions" => {
                    max_instructions = Some(parse_limit(&mut scanner, "--max-instructions")?);
                }
                "max-depth" => {
                    max_depth = Some(parse_limit(&mut scanner, "--max-depth")? as usize);
                }
                "max-rounds" => {
                    max_rounds = Some(parse_limit(&mut scanner, "--max-rounds")?);
                }
                "deadline-ms" => {
                    deadline_ms = Some(parse_limit(&mut scanner, "--deadline-ms")?);
                }
                _ => return Err(format!("unknown flag `--{name}`")),
            },
            Arg::Flag {
                name,
                value: Some(level),
            } if name == "checked" => {
                checked = Some(CheckLevel::parse(&level).ok_or_else(|| {
                    format!("unknown check level `{level}` (expected basic or full)")
                })?);
            }
            Arg::Flag {
                name,
                value: Some(mode),
            } if name == "trace" => {
                trace_flag = Some(TraceMode::parse(&mode).ok_or_else(|| {
                    format!("unknown trace mode `{mode}` (expected text, json, or off)")
                })?);
            }
            Arg::Flag {
                name,
                value: Some(value),
            } => return Err(format!("unknown flag `--{name}={value}`")),
            Arg::Positional(a) => {
                if command.is_none() {
                    command = Some(a);
                } else {
                    positionals.push(a);
                }
            }
        }
    }
    let command = command.ok_or("missing command")?;
    if !matches!(
        command.as_str(),
        "run" | "compare" | "report" | "explain" | "dump"
    ) {
        return Err(format!("unknown command `{command}`"));
    }
    if (max_heap_words.is_some() || max_instructions.is_some() || max_depth.is_some())
        && command != "run"
    {
        return Err("VM limit flags (`--max-heap-words`, `--max-instructions`, `--max-depth`) only apply to `run`".to_owned());
    }
    if inline && !matches!(command.as_str(), "run" | "dump") {
        return Err(format!(
            "`--inline` does not apply to `{command}` (it always runs the inlining pipeline)"
        ));
    }
    if json && command == "dump" {
        return Err("`--json` does not apply to `dump`".to_owned());
    }
    if profile && command != "run" {
        return Err("`--profile` only applies to `run`".to_owned());
    }
    if checked.is_some() && command != "run" {
        return Err(
            "`--checked` only applies to `run` (the oracle's probes are always checked)".to_owned(),
        );
    }
    let (path, field) = match command.as_str() {
        "explain" => {
            if positionals.len() != 2 {
                return Err("`explain` needs <file.oi> and <Class.field>".to_owned());
            }
            (positionals[0].clone(), Some(positionals[1].clone()))
        }
        _ => {
            if positionals.len() != 1 {
                return Err(format!("`{command}` needs exactly one <file.oi>"));
            }
            (positionals[0].clone(), None)
        }
    };
    Ok(Cli {
        command,
        path,
        field,
        inline,
        json,
        profile,
        checked,
        trace: trace_flag,
        max_heap_words,
        max_instructions,
        max_depth,
        max_rounds,
        deadline_ms,
    })
}

/// Parses the value of a `--max-*` resource-limit flag as a positive
/// integer.
fn parse_limit(scanner: &mut ArgScanner, flag: &str) -> Result<u64, String> {
    let v = scanner.value_for(flag).unwrap_or_default();
    match v.parse::<u64>() {
        Ok(n) if n > 0 => Ok(n),
        _ => Err(format!("`{flag}` needs a positive integer, got `{v}`")),
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("oic: {msg}\n\n{USAGE}");
    ExitCode::from(2)
}

/// Reads a source file defensively, classifying the ways an argument can
/// be unusable before the compiler ever sees it: an empty path, a
/// directory, an unreadable file, or bytes that are not UTF-8. Each gets
/// a distinct diagnostic (the caller exits 2 — these are argument
/// problems, not compile or runtime failures).
fn load_source(path: &str) -> Result<String, String> {
    if path.is_empty() {
        return Err("empty file path (expected a .oi source file)".to_owned());
    }
    match std::fs::metadata(path) {
        Ok(meta) if meta.is_dir() => {
            return Err(format!(
                "{path}: is a directory (expected a .oi source file; \
                 directories are for `oic batch`)"
            ));
        }
        Ok(_) => {}
        Err(e) => return Err(format!("cannot read {path}: {e}")),
    }
    let bytes = std::fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    String::from_utf8(bytes).map_err(|e| {
        format!(
            "{path}: not valid UTF-8 (invalid byte at offset {}); \
             is this a binary file?",
            e.utf8_error().valid_up_to()
        )
    })
}

/// Tells the user (on stderr, so pipelines stay clean) when a compile did
/// not land on the top tier at full precision.
fn note_tier(out: &LadderOutcome) {
    for d in &out.descents {
        eprintln!("oic: tier descent {} -> {}: {}", d.from, d.to, d.reason);
    }
    if out.optimized.report.degraded {
        eprintln!(
            "oic: analysis budget exhausted; completed with widened contours on tier `{}`",
            out.tier_name()
        );
    }
}

/// The tracer's aggregated per-phase wall-clock table as JSON.
fn phases_json(tracer: &Tracer) -> Json {
    Json::Arr(
        tracer
            .phase_profile()
            .into_iter()
            .map(|(name, st)| {
                Json::obj(vec![
                    ("name", name.into()),
                    ("count", st.count.into()),
                    ("total_us", st.total_us.into()),
                ])
            })
            .collect(),
    )
}

/// The tracer's counter totals as a JSON object.
fn counters_json(tracer: &Tracer) -> Json {
    Json::Obj(
        tracer
            .counters()
            .into_iter()
            .map(|(k, v)| (k, Json::Int(v)))
            .collect(),
    )
}

fn census_json(result: &RunResult) -> Json {
    Json::Arr(
        result
            .allocation_census
            .iter()
            .map(|(class, n)| {
                Json::obj(vec![
                    ("class", class.clone().into()),
                    ("count", (*n).into()),
                ])
            })
            .collect(),
    )
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // `oic bench ...` forwards to the benchmark observatory (the `oi-bench`
    // binary's snapshot/compare machinery) without re-parsing its flags.
    if args.first().map(String::as_str) == Some("bench") {
        return ExitCode::from(oi_bench::cli::main(&args[1..]));
    }
    // `oic fuzz ...` likewise forwards to the adversarial fuzzing driver.
    if args.first().map(String::as_str) == Some("fuzz") {
        return ExitCode::from(oi_bench::fuzz::cli_main(&args[1..]));
    }
    // `oic batch ...` forwards to the panic-isolated batch driver.
    if args.first().map(String::as_str) == Some("batch") {
        return ExitCode::from(oi_bench::batch::cli_main(&args[1..]));
    }
    // `oic chaos ...` forwards to the fault-injection matrix driver.
    if args.first().map(String::as_str) == Some("chaos") {
        return ExitCode::from(oi_bench::chaos::cli_main(&args[1..]));
    }
    // `oic prof ...` forwards to the performance observatory profiler.
    if args.first().map(String::as_str) == Some("prof") {
        return ExitCode::from(oi_bench::prof::cli_main(&args[1..]));
    }
    // `oic serve ...` forwards to the long-lived compile server.
    if args.first().map(String::as_str) == Some("serve") {
        return ExitCode::from(oi_bench::serve::cli_main(&args[1..]));
    }
    // `oic client ...` forwards to the retrying serve client.
    if args.first().map(String::as_str) == Some("client") {
        return ExitCode::from(oi_bench::client::cli_main(&args[1..]));
    }
    let cli = match parse_cli(&args) {
        Ok(c) => c,
        Err(msg) => return usage_error(&msg),
    };
    let mode = cli.trace.unwrap_or_else(TraceMode::from_env);
    // Install a tracer even when the mode is Off: span aggregation feeds
    // the per-phase timing tables that `--json` output carries.
    let tracer = Rc::new(Tracer::for_mode(mode));
    let _guard = trace::install(tracer.clone());

    let source = match load_source(&cli.path) {
        Ok(s) => s,
        Err(msg) => {
            // Unusable inputs are *usage* errors (exit 2), with a typed
            // diagnostic naming what was wrong rather than a raw OS error.
            eprintln!("oic: {msg}");
            return ExitCode::from(2);
        }
    };
    let program = {
        let _s = trace::span("frontend.compile");
        match compile(&source) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("oic: {}: {}", cli.path, e.render(&source));
                return ExitCode::FAILURE;
            }
        }
    };

    match cli.command.as_str() {
        "run" => {
            let (built, report) = if cli.inline {
                let o = optimize_resilient(&program, &cli.budget());
                note_tier(&o);
                (o.optimized.program, Some(o.optimized.report))
            } else {
                (baseline_default(&program), None)
            };
            let defaults = VmConfig::default();
            let vm_config = VmConfig {
                profile: cli.profile,
                checked: cli.checked.unwrap_or(defaults.checked),
                max_heap_words: cli.max_heap_words.unwrap_or(defaults.max_heap_words),
                max_instructions: cli.max_instructions.unwrap_or(defaults.max_instructions),
                max_depth: cli.max_depth.unwrap_or(defaults.max_depth),
                ..defaults
            };
            let result = {
                let _s = trace::span("vm.run");
                run(&built, &vm_config)
            };
            match result {
                Ok(r) => {
                    if cli.json {
                        let mut fields = vec![
                            ("schema", "oic.run.v1".into()),
                            ("file", cli.path.clone().into()),
                            (
                                "pipeline",
                                if cli.inline { "inline" } else { "baseline" }.into(),
                            ),
                            ("output", r.output.clone().into()),
                            ("metrics", r.metrics.to_json()),
                            ("allocation_census", census_json(&r)),
                            ("heap_census", r.heap_census.to_json()),
                        ];
                        if let Some(rep) = &report {
                            fields.push(("report", rep.to_json()));
                        }
                        if let Some(p) = &r.profile {
                            fields.push(("profile", p.to_json()));
                        }
                        if let Some(san) = &r.sanitizer {
                            fields.push(("sanitizer", san.to_json()));
                        }
                        fields.push(("phases", phases_json(&tracer)));
                        fields.push(("counters", counters_json(&tracer)));
                        println!("{}", Json::obj(fields));
                    } else {
                        print!("{}", r.output);
                        eprintln!("--- metrics ---\n{}", r.metrics);
                        if let Some(p) = &r.profile {
                            eprint!("{p}");
                        }
                    }
                    // Checked execution: findings are a failed run even
                    // though execution completed — corrupted inline state
                    // must not exit 0.
                    if let Some(san) = &r.sanitizer {
                        if !san.is_clean() {
                            for f in &san.findings {
                                eprintln!("oic: sanitizer: {f}");
                            }
                            eprintln!(
                                "oic: checked execution ({}) reported {} finding(s)",
                                san.level.name(),
                                san.total_findings
                            );
                            return ExitCode::FAILURE;
                        }
                        if !cli.json {
                            eprintln!(
                                "--- checked execution ({}) clean: {} check(s) ---",
                                san.level.name(),
                                san.checks
                            );
                        }
                    }
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("oic: runtime error: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        "compare" => {
            let base = baseline_default(&program);
            let opt = {
                let o = optimize_resilient(&program, &cli.budget());
                note_tier(&o);
                o.optimized
            };
            let base_res = {
                let _s = trace::span("vm.run.baseline");
                run(&base, &VmConfig::default())
            };
            let base_run = match base_res {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("oic: baseline runtime error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let opt_res = {
                let _s = trace::span("vm.run.inlined");
                run(&opt.program, &VmConfig::default())
            };
            let opt_run = match opt_res {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("oic: inlined runtime error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            if base_run.output != opt_run.output {
                eprintln!("oic: OUTPUT MISMATCH — this is a compiler bug");
                return ExitCode::FAILURE;
            }
            if cli.json {
                let j = Json::obj(vec![
                    ("schema", "oic.compare.v1".into()),
                    ("file", cli.path.clone().into()),
                    ("output", base_run.output.clone().into()),
                    ("baseline", base_run.metrics.to_json()),
                    ("inlined", opt_run.metrics.to_json()),
                    (
                        "speedup",
                        opt_run.metrics.speedup_over(&base_run.metrics).into(),
                    ),
                    ("report", opt.report.to_json()),
                    ("phases", phases_json(&tracer)),
                    ("counters", counters_json(&tracer)),
                ]);
                println!("{j}");
            } else {
                print!("{}", base_run.output);
                eprintln!("--- outputs identical ---");
                eprintln!(
                    "cycles      {:>12} -> {:>12}  ({:.2}x)",
                    base_run.metrics.cycles,
                    opt_run.metrics.cycles,
                    opt_run.metrics.speedup_over(&base_run.metrics)
                );
                eprintln!(
                    "allocations {:>12} -> {:>12}",
                    base_run.metrics.allocations, opt_run.metrics.allocations
                );
                eprintln!(
                    "heap reads  {:>12} -> {:>12}",
                    base_run.metrics.heap_reads, opt_run.metrics.heap_reads
                );
                eprintln!(
                    "cache miss  {:>12} -> {:>12}",
                    base_run.metrics.cache_misses, opt_run.metrics.cache_misses
                );
                eprintln!(
                    "fields inlined: {} (+{} array sites)",
                    opt.report.fields_inlined, opt.report.array_sites_inlined
                );
            }
            ExitCode::SUCCESS
        }
        "report" => {
            let opt = {
                let o = optimize_resilient(&program, &cli.budget());
                note_tier(&o);
                o.optimized
            };
            if cli.json {
                let j = Json::obj(vec![
                    ("schema", "oic.report.v1".into()),
                    ("file", cli.path.clone().into()),
                    ("report", opt.report.to_json()),
                    ("phases", phases_json(&tracer)),
                ]);
                println!("{j}");
            } else {
                println!(
                    "{} field(s) inlined, {} array site(s) inlined [tier: {}{}]",
                    opt.report.fields_inlined,
                    opt.report.array_sites_inlined,
                    opt.report.tier,
                    if opt.report.degraded {
                        ", degraded"
                    } else {
                        ""
                    }
                );
                for o in &opt.report.outcomes {
                    if o.inlined {
                        println!("  INLINED  {}", o.name);
                    } else if let Some(rule) = o.rule {
                        println!(
                            "  kept     {} — rule {rule} ({}): {}",
                            o.name, o.code, o.reason
                        );
                    } else {
                        println!("  kept     {} — {}", o.name, o.reason);
                    }
                }
            }
            ExitCode::SUCCESS
        }
        "explain" => {
            let field = cli
                .field
                .clone()
                .expect("parser guarantees a field for explain");
            let opt = {
                let o = optimize_resilient(&program, &cli.budget());
                note_tier(&o);
                o.optimized
            };
            let chain: Vec<_> = opt
                .report
                .provenance
                .iter()
                .filter(|s| s.field == field)
                .collect();
            let outcome = opt.report.outcomes.iter().find(|o| o.name == field);
            if chain.is_empty() && outcome.is_none() {
                eprintln!("oic: no decision recorded for `{field}` (not an object-holding field?)");
                let mut known: Vec<&str> = opt
                    .report
                    .outcomes
                    .iter()
                    .map(|o| o.name.as_str())
                    .collect();
                known.sort_unstable();
                known.dedup();
                if !known.is_empty() {
                    eprintln!("fields with decisions: {}", known.join(", "));
                }
                return ExitCode::FAILURE;
            }
            let inlined = outcome.map(|o| o.inlined).unwrap_or(false);
            if cli.json {
                let j = Json::obj(vec![
                    ("schema", "oic.explain.v1".into()),
                    ("file", cli.path.clone().into()),
                    ("field", field.clone().into()),
                    ("inlined", inlined.into()),
                    (
                        "chain",
                        Json::Arr(chain.iter().map(|s| s.to_json()).collect()),
                    ),
                ]);
                println!("{j}");
            } else {
                println!(
                    "{field}: {}",
                    if inlined {
                        "INLINED"
                    } else {
                        "kept out-of-line"
                    }
                );
                for s in &chain {
                    if s.inlined {
                        println!("  pass {}: inlined — {}", s.pass, s.detail);
                    } else {
                        println!(
                            "  pass {}: rejected by rule {} ({})",
                            s.pass,
                            s.rule.map(|r| r.to_string()).unwrap_or_else(|| "?".into()),
                            s.code
                        );
                        if !s.detail.is_empty() {
                            println!("          {}", s.detail);
                        }
                    }
                }
                if let Some(o) = outcome {
                    if !o.inlined && !o.reason.is_empty() {
                        println!("  summary: {}", o.reason);
                    }
                }
            }
            ExitCode::SUCCESS
        }
        "dump" => {
            let built = if cli.inline {
                let o = optimize_resilient(&program, &cli.budget());
                note_tier(&o);
                o.optimized.program
            } else {
                baseline_default(&program)
            };
            print!("{}", oi_ir::printer::print_program(&built));
            ExitCode::SUCCESS
        }
        _ => unreachable!("parser rejects unknown commands"),
    }
}
